"""Hierarchical inconsistency bounds: the paper's Figure 1 bank.

A bank estimates its overall holdings while tellers keep posting
transactions.  The query tolerates a bounded error overall (TIL), but
also caps how much of that error may come from each account category —
company, preferred, personal — and from individual subsidiaries, exactly
the hierarchy of the paper's banking example:

    TIL 10,000
      company   4,000
        com1    200
        com2    (unbounded within company)
      preferred 3,000
      personal  3,000

Control is bottom-up: each inconsistent read is checked against the
object's OIL, then every group on its path, then the TIL; a violation at
any level aborts the query.

Run with:  python examples/banking_hierarchy.py
"""

from __future__ import annotations

from repro import (
    Database,
    GroupCatalog,
    HIGH_EPSILON,
    LocalClient,
    TransactionAborted,
    TransactionBounds,
)


def build_bank() -> Database:
    catalog = GroupCatalog()
    catalog.add_group("company")
    catalog.add_group("preferred")
    catalog.add_group("personal")
    catalog.add_group("com1", parent="company")
    catalog.add_group("com2", parent="company")

    db = Database(catalog=catalog)
    accounts = {
        "com1": range(100, 104),
        "com2": range(200, 204),
        "preferred": range(300, 306),
        "personal": range(400, 410),
    }
    for group, ids in accounts.items():
        for account in ids:
            db.create_object(account, 5_000.0, group=group)
    return db


def main() -> None:
    db = build_bank()
    client = LocalClient(db)
    all_accounts = sorted(db.object_ids())

    # Tellers post uncommitted updates the query will read through.
    teller_a = client.begin("update", HIGH_EPSILON)
    teller_a.write(101, teller_a.read(101) + 150.0)  # com1: +150
    teller_b = client.begin("update", HIGH_EPSILON)
    teller_b.write(301, teller_b.read(301) + 2_500.0)  # preferred: +2,500

    audit = client.begin(
        "query",
        TransactionBounds(import_limit=10_000.0),
        group_limits={
            "company": 4_000.0,
            "com1": 200.0,
            "preferred": 3_000.0,
            "personal": 3_000.0,
        },
    )
    total = sum(audit.read(account) for account in all_accounts)
    print(f"overall estimate: {total:,.0f}")
    for level, (usage, limit) in sorted(audit.txn.account.level_snapshot().items()):
        print(f"  {level:<14} inconsistency {usage:>8,.0f} of limit {limit:,.0f}")
    audit.commit()

    # Now violate a *group* limit while the TIL still has headroom.  The
    # second audit starts first; a teller then posts and COMMITS a +500
    # change on a com1 account, so the audit's read of it arrives late
    # (case 1 of Figure 3) carrying 500 of inconsistency through com1 —
    # past the com1 group limit of 200.
    picky = client.begin(
        "query",
        TransactionBounds(import_limit=10_000.0),
        group_limits={"company": 4_000.0, "com1": 200.0},
    )
    teller_c = client.begin("update", HIGH_EPSILON)
    teller_c.write(102, teller_c.read(102) + 500.0)
    teller_c.commit()
    try:
        for account in all_accounts:
            picky.read(account)
    except TransactionAborted as aborted:
        print(
            "\nsecond audit aborted by the hierarchy "
            f"(reason: {aborted.reason}) — the +500 on account 102 "
            "exceeds the com1 group limit of 200, even though the TIL "
            "had 10,000 of headroom"
        )

    for teller in (teller_a, teller_b):
        teller.commit()
    print(f"\nfinal committed holdings: {db.total_committed_value():,.0f}")


if __name__ == "__main__":
    main()
