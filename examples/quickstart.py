"""Quickstart: epsilon transactions over an in-memory database.

Demonstrates the core idea of epsilon serializability in a dozen lines:
a long-running query is allowed to read data a concurrent update has not
yet committed — as long as the total inconsistency it views stays inside
its transaction import limit (TIL) — while a zero-bound query behaves
exactly like classic serializability.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    Database,
    HIGH_EPSILON,
    LocalClient,
    TransactionAborted,
    TransactionBounds,
    WouldBlock,
)


def main() -> None:
    # A tiny bank: 100 accounts of $5,000 each.
    db = Database()
    db.create_many((account, 5_000.0) for account in range(100))
    client = LocalClient(db)

    # --- an ordinary serializable update -------------------------------
    with client.begin("update", HIGH_EPSILON) as deposit:
        balance = deposit.read(7)
        deposit.write(7, balance + 250.0)
    print(f"account 7 balance is now {db.get(7).committed_value:,.0f}")

    # --- ESR in action ---------------------------------------------------
    # An update stages a withdrawal but has NOT committed yet.
    withdrawal = client.begin("update", HIGH_EPSILON)
    balance = withdrawal.read(12)
    withdrawal.write(12, balance - 400.0)

    # A query with a generous TIL may read right through it (case 2 of
    # the paper's Figure 3), importing |staged - committed| = $400.
    audit = client.begin("query", TransactionBounds(import_limit=100_000.0))
    total = sum(audit.read(account) for account in range(100))
    print(
        f"audit total = {total:,.0f} "
        f"(imported inconsistency = {audit.inconsistency:,.0f}, "
        f"guaranteed within 100,000 of a serializable result)"
    )
    audit.commit()

    # A zero-bound query is plain SR: it must wait for the withdrawal.
    strict = client.begin("query", TransactionBounds(import_limit=0.0))
    try:
        strict.read(12)
    except WouldBlock as blocked:
        print(
            "strict query blocked by uncommitted transaction "
            f"{blocked.blocking_transaction} (classic SR behaviour)"
        )
        strict.abort()

    withdrawal.commit()
    print(f"account 12 balance is now {db.get(12).committed_value:,.0f}")

    # --- bounds are enforced, not advisory -------------------------------
    staged = client.begin("update", HIGH_EPSILON)
    value = staged.read(30)
    staged.write(30, value + 3_000.0)  # uncommitted change of $3,000
    tight = client.begin("query", TransactionBounds(import_limit=1_000.0))
    try:
        tight.read(30)  # would import $3,000 > TIL $1,000
    except (TransactionAborted, WouldBlock):
        print("tight query refused: importing $3,000 would exceed TIL $1,000")
        if tight.txn.is_active:
            tight.abort()
    staged.abort()


if __name__ == "__main__":
    main()
