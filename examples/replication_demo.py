"""Replicated ESR: bounded staleness across a primary and its replicas.

The paper's closing line proposes evaluating ESR "in the case of a
distributed system with data replication" — this demo runs that system:
updates commit at a primary and propagate asynchronously; the divergence
of each replica is the inconsistency ESR meters.  Two knobs, two
trade-offs:

* the *replica epsilon* (export side) — how far a replica may lag before
  an update must write through synchronously;
* the query's *OIL* (import side) — how stale a local read may be before
  the query must fetch from the primary instead.

Run with:  python examples/replication_demo.py   (~10 seconds)
"""

from __future__ import annotations

import math

from repro.experiments.report import format_table
from repro.replication import ReplicationConfig, run_replication

W = 2_000.0  # the workload's mean write change


def sweep(name: str, key: str, values_w) -> None:
    rows = []
    for value_w in values_w:
        value = math.inf if math.isinf(value_w) else value_w * W
        kwargs = {
            "duration_ms": 10_000.0,
            "propagation_delay": 200.0,
            "seed": 7,
            key: value,
        }
        if key == "oil":
            kwargs["til"] = math.inf
        result = run_replication(ReplicationConfig(**kwargs))
        rows.append(
            (
                f"{value_w:g}w",
                f"{result.update_throughput:.1f}",
                f"{result.query_throughput:.1f}",
                result.forced_syncs,
                f"{result.local_read_fraction:.0%}",
                f"{result.mean_staleness_per_query:.0f}",
            )
        )
    print(f"\n--- {name}")
    print(
        format_table(
            [
                key,
                "updates/s",
                "queries/s",
                "forced syncs",
                "local reads",
                "staleness/query",
            ],
            rows,
        )
    )


def main() -> None:
    print(
        "3 replicas, 100 objects, async propagation 200 ms, "
        f"w = {W:g} per update"
    )
    sweep(
        "export side: replica divergence bound (epsilon)",
        "replica_epsilon",
        (0.0, 1.0, 2.0, 4.0, math.inf),
    )
    print(
        "  -> epsilon 0 is eager replication: exact but slow updates;"
        "\n     epsilon inf is fully asynchronous: fast updates, stale reads"
    )
    sweep(
        "import side: per-read staleness cap (OIL)",
        "oil",
        (0.0, 1.0, 2.0, 4.0, math.inf),
    )
    print(
        "  -> OIL 0 forces fresh primary reads: exact but slow queries;"
        "\n     OIL inf serves everything locally: fast queries, stale results"
    )


if __name__ == "__main__":
    main()
