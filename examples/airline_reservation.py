"""Airline reservations: object-level limits and aggregate queries.

The paper's other motivating domain.  Each flight's seat count is an
object; load monitors run continuously while reservation agents book
seats.  Two features beyond the quickstart:

* **object import limits (OIL)** — a per-flight cap on how stale any
  single reading may be, independent of the query's overall budget;
* **non-sum aggregates (paper section 5.3.2)** — an *average* load query
  cannot charge per-read divergences linearly; instead the min/max
  values viewed per object bracket the result, and the result
  inconsistency (half the envelope) is checked against the TIL.

Run with:  python examples/airline_reservation.py
"""

from __future__ import annotations

from repro import Database, HIGH_EPSILON, LocalClient, ObjectBounds, TransactionBounds
from repro.core.aggregates import aggregate_bounds

FLIGHTS = {
    900: 210.0,  # flight id -> seats currently sold
    901: 180.0,
    902: 240.0,
    903: 150.0,
}


def main() -> None:
    db = Database()
    # Every flight tolerates at most 12 seats of staleness per reading.
    per_flight = ObjectBounds(import_limit=12.0, export_limit=25.0)
    for flight, sold in FLIGHTS.items():
        db.create_object(flight, sold, per_flight)
    client = LocalClient(db)

    # Agents book seats; one booking is still uncommitted.
    with client.begin("update", HIGH_EPSILON) as agent:
        agent.write(901, agent.read(901) + 4.0)
    in_flight = client.begin("update", HIGH_EPSILON)
    in_flight.write(902, in_flight.read(902) + 9.0)  # staged, uncommitted

    # The load monitor reads all flights with a 30-seat total budget; the
    # 9-seat staleness on flight 902 passes both OIL (12) and TIL (30).
    monitor = client.begin("query", TransactionBounds(import_limit=30.0))
    readings = {flight: monitor.read(flight) for flight in FLIGHTS}
    total = sum(readings.values())
    print(f"seats sold across the fleet: {total:.0f}")
    print(f"  imported staleness: {monitor.inconsistency:.0f} seats (<= 30)")

    # --- the section 5.3.2 mechanism for an AVERAGE query -----------------
    # The account tracked min/max per flight; the average's inconsistency
    # is half the spread between the all-min and all-max results.
    ranges = {
        flight: monitor.txn.account.value_range(flight) for flight in FLIGHTS
    }
    envelope = aggregate_bounds("avg", ranges)
    print(
        f"average load: {envelope.midpoint:.1f} seats "
        f"(result inconsistency {envelope.inconsistency:.2f})"
    )
    til = monitor.txn.bounds.import_limit
    if envelope.within(til):
        print(f"  average accepted: {envelope.inconsistency:.2f} <= TIL {til:.0f}")
    monitor.commit()

    # --- OIL as a hard per-object filter -----------------------------------
    # A big uncommitted group booking (+40) exceeds the 12-seat OIL, so
    # even a query with a huge TIL cannot read through it.
    group_booking = client.begin("update", HIGH_EPSILON)
    group_booking.write(903, group_booking.read(903) + 40.0)
    eager = client.begin("query", TransactionBounds(import_limit=1_000.0))
    from repro import TransactionAborted, WouldBlock

    try:
        eager.read(903)
    except (TransactionAborted, WouldBlock):
        print(
            "\nreading flight 903 refused: the +40 staged booking exceeds "
            "the flight's OIL of 12 seats, regardless of the query's TIL"
        )
        if eager.txn.is_active:
            eager.abort()
    group_booking.commit()
    in_flight.commit()
    print(f"\nfinal committed seat counts: {db.committed_snapshot()}")


if __name__ == "__main__":
    main()
