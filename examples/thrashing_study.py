"""A miniature of the paper's headline experiment (Figure 7).

Sweeps the multiprogramming level for the zero- and high-epsilon bound
settings on the deterministic simulator and renders the two throughput
curves as an ASCII chart, showing the paper's two key effects: ESR's
throughput advantage and the thrashing point moving right as the bounds
loosen.  (The full four-level, CI-estimated version is
``python -m repro figure fig7``.)

Run with:  python examples/thrashing_study.py   (~15 seconds)
"""

from __future__ import annotations

import time

from repro.core.bounds import HIGH_EPSILON, ZERO_EPSILON
from repro.experiments.analysis import thrashing_point
from repro.experiments.config import MeasurementPlan
from repro.experiments.figures import fig7, mpl_study
from repro.experiments.report import ascii_chart, figure_table

PLAN = MeasurementPlan(duration_ms=20_000.0, warmup_ms=2_000.0, repetitions=1)


def main() -> None:
    started = time.time()
    levels = (ZERO_EPSILON, HIGH_EPSILON)
    study = mpl_study(PLAN, levels=levels)
    figure = fig7(PLAN, study=study)

    print(ascii_chart(figure))
    print()
    print(figure_table(figure))
    print()
    for series in figure.series:
        knee = thrashing_point(series)
        peak = max(series.means())
        where = (
            f"thrashing point at MPL {knee:g}"
            if knee is not None
            else f"no thrashing within MPL {series.x[-1]:g}"
        )
        print(f"{series.label:<14} peak throughput {peak:5.1f} tx/s, {where}")
    zero = figure.series_by_label("zero-epsilon")
    high = figure.series_by_label("high-epsilon")
    gain = max(high.means()) / max(zero.means())
    print(
        f"\nESR at high bounds delivers {gain:.2f}x the peak throughput of "
        f"SR on this workload ({time.time() - started:.1f}s wall)"
    )


if __name__ == "__main__":
    main()
