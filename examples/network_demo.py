"""The networked prototype end-to-end: server, clients, trace replay.

Recreates the paper's deployment in miniature: a multithreaded
transaction server (the engine behind a TCP socket), several client
sites with skew-corrected virtual clocks, and transaction loads written
in the paper's mini-language, replayed with resubmit-until-commit.

Run with:  python examples/network_demo.py
"""

from __future__ import annotations

import threading
import time

from repro.net.client import RemoteConnection
from repro.net.server import serve_forever
from repro.workload.generator import (
    WorkloadGenerator,
    build_database,
    partition_for_site,
)
from repro.workload.spec import WorkloadSpec

WORKLOAD = WorkloadSpec(n_objects=200, hot_set_size=12, n_partitions=4)
CLIENTS = 4
TRANSACTIONS_PER_CLIENT = 15


def client_site(port: int, site: int, stats: dict) -> None:
    generator = WorkloadGenerator(
        WORKLOAD, seed=100 + site, partition=partition_for_site(WORKLOAD, site)
    )
    programs = generator.generate_mix(
        TRANSACTIONS_PER_CLIENT, til=100_000.0, tel=10_000.0
    )
    committed = restarts = 0
    with RemoteConnection("127.0.0.1", port, site=site) as connection:
        for program in programs:
            _, attempts = connection.run_program(program)
            committed += 1
            restarts += attempts
    stats[site] = (committed, restarts)


def main() -> None:
    database = build_database(WORKLOAD, seed=0)
    server = serve_forever(database)
    print(f"server listening on 127.0.0.1:{server.port} "
          f"({len(database)} objects)")

    stats: dict[int, tuple[int, int]] = {}
    started = time.time()
    threads = [
        threading.Thread(target=client_site, args=(server.port, site, stats))
        for site in range(1, CLIENTS + 1)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.time() - started

    total_committed = sum(c for c, _ in stats.values())
    total_restarts = sum(r for _, r in stats.values())
    print(f"\n{CLIENTS} client sites finished in {elapsed:.2f}s")
    for site in sorted(stats):
        committed, restarts = stats[site]
        print(f"  site {site}: {committed} committed, {restarts} restarts")
    print(
        f"throughput: {total_committed / elapsed:.1f} tx/s, "
        f"{total_restarts} total restarts"
    )

    metrics = server.manager.metrics.snapshot()
    print(
        f"server counters: {metrics.commits} commits, {metrics.aborts} "
        f"aborts, {metrics.inconsistent_operations} inconsistent ops "
        f"admitted {dict(metrics.inconsistent_by_case)}"
    )
    server.shutdown()
    server.server_close()


if __name__ == "__main__":
    main()
