"""Epsilon serializability with hierarchical inconsistency bounds.

A reproduction of Kamath & Ramamritham, *Performance Characteristics of
Epsilon Serializability with Hierarchical Inconsistency Bounds* (ICDE
1993): a timestamp-ordered transaction processing system whose query
transactions may view — and whose update transactions may export —
bounded amounts of inconsistency, with the bounds arranged hierarchically
(transaction → groups → objects), plus the paper's complete performance
study.

Quick start::

    from repro import Database, LocalClient, HIGH_EPSILON

    db = Database()
    db.create_many((i, 5000) for i in range(100))
    client = LocalClient(db)
    with client.begin("query", HIGH_EPSILON) as q:
        total = sum(q.read(i) for i in range(100))

Package map:

* :mod:`repro.core` — bounds, hierarchies, accounting, divergence, metrics;
* :mod:`repro.engine` — database, timestamp ordering (SR + ESR), manager;
* :mod:`repro.lang` — the paper's transaction mini-language;
* :mod:`repro.workload` — synthetic workloads and trace files;
* :mod:`repro.sim` — the deterministic client/server simulator;
* :mod:`repro.net` — the real threaded TCP prototype;
* :mod:`repro.experiments` — the figures and tables of the evaluation;
* :mod:`repro.runtime` — in-process client (this module re-exports it).
"""

from repro.core.bounds import (
    HIGH_EPSILON,
    LOW_EPSILON,
    MEDIUM_EPSILON,
    STANDARD_LEVELS,
    UNBOUNDED,
    ZERO_EPSILON,
    EpsilonLevel,
    ObjectBounds,
    TransactionBounds,
    level_by_name,
)
from repro.core.hierarchy import GroupCatalog
from repro.engine.database import Database
from repro.engine.manager import TransactionManager
from repro.errors import (
    BoundViolation,
    ReproError,
    TransactionAborted,
    TransactionError,
)
from repro.lang.parser import parse_program, parse_script
from repro.runtime import LocalClient, LocalSession, WouldBlock

__version__ = "0.1.0"

__all__ = [
    "HIGH_EPSILON",
    "LOW_EPSILON",
    "MEDIUM_EPSILON",
    "STANDARD_LEVELS",
    "UNBOUNDED",
    "ZERO_EPSILON",
    "EpsilonLevel",
    "ObjectBounds",
    "TransactionBounds",
    "level_by_name",
    "GroupCatalog",
    "Database",
    "TransactionManager",
    "BoundViolation",
    "ReproError",
    "TransactionAborted",
    "TransactionError",
    "parse_program",
    "parse_script",
    "LocalClient",
    "LocalSession",
    "WouldBlock",
    "__version__",
]
