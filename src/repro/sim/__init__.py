"""Discrete-event simulation of the client–server prototype."""

from repro.sim.client import SimClient
from repro.sim.des import Engine, Event, Process, Resource, Timeout
from repro.sim.latency import PAPER_LATENCY, ZERO_LATENCY, LatencyModel
from repro.sim.server import (
    DEFAULT_SERVER_THREADS,
    DEFAULT_SERVICE_TIME_MS,
    SimServer,
)
from repro.sim.system import (
    RunResult,
    SimulationConfig,
    build_simulation,
    run_simulation,
)

__all__ = [
    "SimClient",
    "Engine",
    "Event",
    "Process",
    "Resource",
    "Timeout",
    "PAPER_LATENCY",
    "ZERO_LATENCY",
    "LatencyModel",
    "DEFAULT_SERVER_THREADS",
    "DEFAULT_SERVICE_TIME_MS",
    "SimServer",
    "RunResult",
    "SimulationConfig",
    "build_simulation",
    "run_simulation",
]
