"""A small process-based discrete-event simulation kernel.

The performance study replaces the paper's LAN of DECstations with a
deterministic simulator: client and server activities are generator-based
*processes* that advance simulated time by yielding either a
:class:`Timeout` (elapse simulated milliseconds) or an :class:`Event`
(block until something triggers it).  The kernel is deliberately tiny —
an event heap, processes, and one-shot events — because that is all the
client/server model needs, and determinism matters more than features:
given the same seeds, a simulation run is bit-for-bit reproducible, which
a real threaded prototype under the GIL is not.

Scheduling internals (the hot path)
-----------------------------------

Most scheduled work is *zero-delay*: every event trigger, resource grant
and process spawn resumes "now".  Those bypass the ``heapq`` entirely and
go through ``_ready``, a plain FIFO deque of callbacks due at the current
instant; only positive delays pay for a heap push/pop.  Dispatch order is
identical to a single ``(time, seq)`` heap because of an invariant the
two-queue split maintains: a heap entry due *now* was necessarily pushed
before the clock reached ``now`` (a zero delay never enters the heap), so
it precedes every ready-queue entry, and the ready queue itself preserves
FIFO order.  The clock never advances while ready callbacks are pending.
``RunResult`` metrics are bit-identical to the single-heap kernel for
identical configs and seeds — the golden determinism tests pin this.

Usage sketch::

    engine = Engine()

    def client():
        yield Timeout(17.5)            # an RPC round trip
        done = Event()
        engine.call_later(5.0, done.trigger)
        yield done                     # block on a wake-up

    engine.spawn(client())
    engine.run(until=1000.0)
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Callable, Generator, Iterable

from repro.perf import counters as _perf

__all__ = ["Event", "Timeout", "Process", "Engine", "Resource"]


class Event:
    """A one-shot signal processes can wait on.

    Triggering wakes every waiter (via the engine, at the current
    simulated time).  Waiting on an already-triggered event resumes
    immediately.  Events never un-trigger.
    """

    __slots__ = ("triggered", "_waiters")

    def __init__(self) -> None:
        self.triggered = False
        self._waiters: list[Process] = []

    def trigger(self) -> None:
        if self.triggered:
            return
        self.triggered = True
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            process._engine._ready.append(process._step)

    def _add_waiter(self, process: "Process") -> bool:
        """Register a waiter; returns False if already triggered."""
        if self.triggered:
            return False
        self._waiters.append(process)
        return True

    def __repr__(self) -> str:
        state = "triggered" if self.triggered else f"waiters={len(self._waiters)}"
        return f"Event({state})"


class Timeout:
    """Yield value: elapse ``delay`` simulated milliseconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise ValueError(f"timeout delay must be >= 0, got {delay}")
        self.delay = delay

    def __repr__(self) -> str:
        return f"Timeout({self.delay:g})"


class Process:
    """A running generator; yields Timeout/Event, finishes on return.

    ``completed`` is an :class:`Event` triggered when the generator
    returns, letting other processes join on it.
    """

    __slots__ = ("_engine", "_generator", "completed", "name")

    def __init__(
        self,
        engine: "Engine",
        generator: Generator[object, None, None],
        name: str = "",
    ):
        self._engine = engine
        self._generator = generator
        self.completed = Event()
        self.name = name

    def _step(self) -> None:
        try:
            yielded = next(self._generator)
        except StopIteration:
            self.completed.trigger()
            return
        engine = self._engine
        if isinstance(yielded, Timeout):
            # Inlined call_later: Timeout already validated delay >= 0.
            delay = yielded.delay
            if delay == 0.0:
                engine._ready.append(self._step)
            else:
                engine._seq = seq = engine._seq + 1
                heappush(engine._heap, (engine.now + delay, seq, self._step))
        elif isinstance(yielded, Event):
            if yielded.triggered:
                engine._ready.append(self._step)
            else:
                yielded._waiters.append(self)
        else:
            raise TypeError(
                f"process {self.name or self._generator!r} yielded "
                f"{yielded!r}; expected Timeout or Event"
            )

    def __repr__(self) -> str:
        return f"Process({self.name or self._generator!r})"


class Engine:
    """The event loop: a FIFO ready queue plus a time-ordered heap.

    ``events_dispatched`` / ``fastpath_dispatched`` count, cumulatively,
    the callbacks this engine has run and how many of them skipped the
    heap; both also feed :data:`repro.perf.counters`.
    """

    __slots__ = ("now", "_heap", "_seq", "_ready", "events_dispatched",
                 "fastpath_dispatched")

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        #: Callbacks due at the current instant, in FIFO order.
        self._ready: deque[Callable[[], None]] = deque()
        self.events_dispatched = 0
        self.fastpath_dispatched = 0

    # -- scheduling -------------------------------------------------------------

    def call_later(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` simulated milliseconds."""
        if delay == 0.0:
            self._ready.append(callback)
        elif delay > 0:
            self._seq = seq = self._seq + 1
            heappush(self._heap, (self.now + delay, seq, callback))
        else:
            raise ValueError(f"delay must be >= 0, got {delay}")

    def _resume_soon(self, process: Process) -> None:
        self._ready.append(process._step)

    def spawn(
        self, generator: Generator[object, None, None], name: str = ""
    ) -> Process:
        """Create a process and schedule its first step at the current time."""
        process = Process(self, generator, name)
        self._ready.append(process._step)
        return process

    def spawn_all(
        self, generators: Iterable[Generator[object, None, None]]
    ) -> list[Process]:
        return [self.spawn(gen) for gen in generators]

    # -- execution ----------------------------------------------------------------

    def run(self, until: float | None = None) -> float:
        """Drain the event queues; returns the final simulated time.

        With ``until`` set, execution stops once the next event lies past
        that time (and ``now`` is advanced exactly to ``until``).  Without
        it, runs until no events remain.  The clock never moves backwards:
        an ``until`` earlier than ``now`` leaves the clock where it is.
        """
        heap = self._heap
        ready = self._ready
        popleft = ready.popleft
        now = self.now
        dispatched = 0
        fast = 0
        try:
            while True:
                # Heap entries due now predate (and so precede) every
                # ready entry; otherwise ready work runs before the clock
                # may advance.
                if heap and (not ready or heap[0][0] <= now):
                    when = heap[0][0]
                    if until is not None and when > until:
                        break
                    _, _, callback = heappop(heap)
                    if when != now:
                        now = when
                        self.now = when
                elif ready:
                    if until is not None and now > until:
                        break
                    callback = popleft()
                    fast += 1
                else:
                    break
                dispatched += 1
                callback()
        finally:
            self.events_dispatched += dispatched
            self.fastpath_dispatched += fast
            _perf.events_dispatched += dispatched
            _perf.heap_pushes += dispatched - fast
            _perf.heap_pushes_avoided += fast
        if until is not None and until > now:
            now = until
            self.now = until
        return now

    def run_until_complete(self, processes: Iterable[Process]) -> float:
        """Run until every listed process has finished."""
        pending = list(processes)
        heap = self._heap
        ready = self._ready
        while any(not p.completed.triggered for p in pending):
            if heap and (not ready or heap[0][0] <= self.now):
                when, _, callback = heappop(heap)
                self.now = when
                _perf.heap_pushes += 1
            elif ready:
                callback = ready.popleft()
                self.fastpath_dispatched += 1
                _perf.heap_pushes_avoided += 1
            else:
                unfinished = [p for p in pending if not p.completed.triggered]
                raise RuntimeError(
                    f"simulation deadlock: {len(unfinished)} process(es) "
                    f"blocked with no pending events: {unfinished[:5]}"
                )
            self.events_dispatched += 1
            _perf.events_dispatched += 1
            callback()
        return self.now

    def pending_events(self) -> int:
        return len(self._heap) + len(self._ready)

    def __repr__(self) -> str:
        return f"Engine(now={self.now:g}, pending={self.pending_events()})"


class Resource:
    """A counted resource with a FIFO queue (e.g. server CPU threads).

    Models the paper's multithreaded server as ``capacity`` parallel
    service units: a process acquires a unit, holds it for the service
    time, and releases it; excess requests queue first-come first-served
    (a :class:`collections.deque`, so handing a unit to the next waiter
    is O(1) no matter how deep the queue gets).  Usage::

        grant = resource.acquire()
        yield grant              # resumes once a unit is free
        yield Timeout(service_time)
        resource.release()

    The resource also tracks busy time for utilisation reporting.
    """

    __slots__ = ("_engine", "capacity", "_in_use", "_queue", "_busy_since", "busy_time")

    def __init__(self, engine: Engine, capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._engine = engine
        self.capacity = capacity
        self._in_use = 0
        self._queue: deque[Event] = deque()
        self._busy_since: float | None = None
        self.busy_time = 0.0

    def acquire(self) -> Event:
        """Return an event that triggers once a unit is granted.

        The unit is considered held from the moment the returned event
        triggers; the caller must eventually :meth:`release` it.
        """
        grant = Event()
        if self._in_use < self.capacity:
            self._take()
            grant.trigger()
        else:
            self._queue.append(grant)
        return grant

    def release(self) -> None:
        """Return a unit; hands it straight to the next queued waiter."""
        if self._in_use <= 0:
            raise RuntimeError("release() without a matching acquire()")
        if self._queue:
            # The unit passes directly to the next waiter: _in_use stays
            # unchanged, so utilisation accounting keeps running.
            grant = self._queue.popleft()
            grant.trigger()
            return
        self._in_use -= 1
        if self._in_use == 0 and self._busy_since is not None:
            self.busy_time += self._engine.now - self._busy_since
            self._busy_since = None

    def _take(self) -> None:
        if self._in_use == 0:
            self._busy_since = self._engine.now
        self._in_use += 1

    @property
    def queued(self) -> int:
        return len(self._queue)

    def busy_snapshot(self) -> float:
        """Cumulative busy time up to the current simulated instant."""
        busy = self.busy_time
        if self._busy_since is not None:
            busy += self._engine.now - self._busy_since
        return busy

    def utilisation(self, elapsed: float, since_busy: float = 0.0) -> float:
        """Fraction of ``elapsed`` time at least one unit was busy.

        ``since_busy`` subtracts a :meth:`busy_snapshot` taken at the start
        of the measurement window (e.g. the end of a warm-up phase).
        """
        busy = self.busy_snapshot() - since_busy
        return busy / elapsed if elapsed > 0 else 0.0

    def __repr__(self) -> str:
        return (
            f"Resource(capacity={self.capacity}, in_use={self._in_use}, "
            f"queued={len(self._queue)})"
        )
