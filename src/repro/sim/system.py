"""Whole-system simulation: build, run, measure.

:func:`run_simulation` assembles the full prototype — database, transaction
manager, simulated server, MPL clients — runs it for a simulated duration
(with a warm-up that is excluded from measurement), and returns a
:class:`RunResult` with the paper's metrics: throughput, aborts,
successful inconsistent operations, total operations, and operations per
committed transaction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.core.bounds import ObjectBounds
from repro.core.metric import distance_by_name
from repro.engine.api import create_engine, validate_protocol_options
from repro.engine.database import Database
from repro.engine.history import HistoryLog
from repro.engine.metrics import MetricsSnapshot
from repro.engine.objects import DEFAULT_VERSION_WINDOW
from repro.errors import ExperimentError, SpecificationError
from repro.sim.des import Engine
from repro.sim.client import SimClient
from repro.sim.latency import LatencyModel, PAPER_LATENCY
from repro.sim.server import (
    DEFAULT_SERVER_THREADS,
    DEFAULT_SERVICE_TIME_MS,
    SimServer,
)
from repro.workload.generator import (
    WorkloadGenerator,
    build_database,
    partition_for_site,
)
from repro.workload.spec import PAPER_WORKLOAD, WorkloadSpec

__all__ = ["SimulationConfig", "RunResult", "run_simulation"]


@dataclass(frozen=True)
class SimulationConfig:
    """Everything that defines one simulation run.

    The config is pure data — strings, numbers and frozen dataclasses,
    never callables or closures — so it pickles cleanly into the worker
    processes of the parallel experiment runner.  Anything behavioural
    (the distance function, the protocol, the wait policy) is named by a
    spec string and resolved inside :func:`build_simulation`, i.e. in
    whichever process actually runs the cell.
    """

    #: Multiprogramming level — the number of concurrent clients.
    mpl: int = 4
    #: Transaction-level inconsistency bounds (TIL for queries, TEL for
    #: updates).  Zero bounds are the paper's zero-epsilon / SR setting.
    til: float = 0.0
    tel: float = 0.0
    #: Object-level bounds applied uniformly to every object.
    oil: float = math.inf
    oel: float = math.inf
    #: Concurrency control: the paper's timestamp-ordering engines
    #: (``"esr"``, or the plain-SR baseline ``"sr"``), the Wu et al.
    #: lock-based engines (``"2pl"`` divergence control, ``"2pl-sr"``
    #: plain strict 2PL), or multi-version timestamp ordering
    #: (``"mvto"``, the serializable baseline section 5.1 contrasts).
    protocol: str = "esr"
    export_policy: str = "max"
    #: Distance-function spec string (see
    #: :func:`repro.core.metric.distance_by_name`), resolved in the
    #: worker so the config itself stays picklable.
    distance: str = "absolute"
    #: Strict-ordering conflicts: ``"wait"`` (the paper's choice) or
    #: ``"abort"`` (abort-with-restart instead).  TSO engines only.
    wait_policy: str = "wait"
    #: Serve bounded-staleness query reads from the epsilon snapshot
    #: cache (zero service time, no service unit).  ESR only — the cache
    #: meters staleness through the inconsistency ledger, which no other
    #: protocol carries.
    snapshot_cache: bool = False
    #: Partition the database by object key across this many per-shard
    #: engines (see :class:`repro.engine.sharded.ShardedEngine`).  The
    #: simulator is single-threaded, so this exercises the sharded code
    #: paths deterministically rather than adding parallelism.
    shards: int = 1
    #: Run each shard's engine in a worker process (``shards > 1`` only).
    #: The DES drives the engine synchronously, so in simulation this
    #: exercises the cross-process commit protocol deterministically —
    #: the parallel payoff belongs to the networked servers.
    processes: bool | str = False
    workload: WorkloadSpec = PAPER_WORKLOAD
    latency: LatencyModel = PAPER_LATENCY
    service_time_ms: float = DEFAULT_SERVICE_TIME_MS
    server_threads: int = DEFAULT_SERVER_THREADS
    version_window: int = DEFAULT_VERSION_WINDOW
    #: Simulated duration and warm-up, in milliseconds.
    duration_ms: float = 60_000.0
    warmup_ms: float = 5_000.0
    #: Run until each client commits this many transactions instead of for
    #: a fixed duration (used by tests and examples; disables warm-up).
    transactions_per_client: int | None = None
    #: Group limits every query declares (LIMIT lines), as a tuple of
    #: (group, limit) pairs over the hot-set hierarchy ("hot", "partN").
    #: Setting this builds the database with the three-level catalog and
    #: exercises the paper's hierarchical control path on every query.
    query_group_limits: tuple[tuple[str, float], ...] | None = None
    #: Record a full event history (:mod:`repro.engine.history`) during
    #: the measured phase; the result then carries a ``history`` the
    #: offline checker (:mod:`repro.check`) can replay.  Event wall
    #: clocks are the simulated clock.
    record_history: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mpl < 1:
            raise ExperimentError(f"mpl must be >= 1, got {self.mpl}")
        if self.duration_ms <= 0:
            raise ExperimentError("duration_ms must be positive")
        if not 0 <= self.warmup_ms < self.duration_ms:
            raise ExperimentError("warmup_ms must be in [0, duration_ms)")
        try:
            # The one shared validation every entry point uses (registry
            # in repro.engine.api), wrapped into the experiment error.
            validate_protocol_options(
                self.protocol,
                snapshot_cache=self.snapshot_cache,
                wait_policy=self.wait_policy,
                shards=self.shards,
                processes=bool(self.processes),
            )
        except SpecificationError as exc:
            raise ExperimentError(str(exc)) from None
        distance_by_name(self.distance)  # fail fast on a bad spec

    def with_level(self, til: float, tel: float) -> "SimulationConfig":
        return replace(self, til=til, tel=tel)


@dataclass(frozen=True)
class RunResult:
    """Measurements from one simulation run (post-warm-up only)."""

    config: SimulationConfig
    measured_ms: float
    commits: int
    aborts: int
    metrics: MetricsSnapshot
    client_commits: tuple[int, ...]
    server_utilisation: float
    #: Snapshot-cache tallies as ``(name, value)`` pairs — hits, misses,
    #: fallbacks, divergence_charged — or None when the cache is off.
    cache: tuple[tuple[str, float], ...] | None = None
    #: The recorded history (post-warm-up) when the config asked for one.
    history: "HistoryLog | None" = None

    @property
    def cache_stats(self) -> dict[str, float] | None:
        return dict(self.cache) if self.cache is not None else None

    @property
    def throughput(self) -> float:
        """Committed transactions per (simulated) second."""
        if self.measured_ms <= 0:
            return 0.0
        return self.commits * 1000.0 / self.measured_ms

    @property
    def inconsistent_operations(self) -> int:
        return self.metrics.inconsistent_operations

    @property
    def total_operations(self) -> int:
        return self.metrics.total_operations

    @property
    def operations_per_commit(self) -> float:
        return self.metrics.operations_per_commit

    def __repr__(self) -> str:
        return (
            f"RunResult(mpl={self.config.mpl}, til={self.config.til:g}, "
            f"throughput={self.throughput:.2f} tps, commits={self.commits}, "
            f"aborts={self.aborts})"
        )


def build_simulation(
    config: SimulationConfig,
) -> tuple[Engine, SimServer, list[SimClient], Database]:
    """Assemble (but do not run) a full simulated system."""
    object_bounds = ObjectBounds(
        import_limit=config.oil, export_limit=config.oel
    )
    group_limits = (
        dict(config.query_group_limits)
        if config.query_group_limits is not None
        else None
    )
    database = build_database(
        config.workload,
        seed=config.seed,
        object_bounds=object_bounds,
        version_window=config.version_window,
        with_groups=group_limits is not None,
    )
    engine = Engine()
    distance = distance_by_name(config.distance)
    manager = create_engine(
        database,
        config.protocol,
        distance=distance,
        export_policy=config.export_policy,
        wait_policy=config.wait_policy,
        snapshot_cache=config.snapshot_cache,
        shards=config.shards,
        processes=config.processes,
        record_history=config.record_history,
    )
    if config.record_history:
        # History events carry the simulated clock, not the host's.
        manager.recorder.clock = lambda: engine.now
    server = SimServer(
        manager,
        engine,
        service_time=config.service_time_ms,
        threads=config.server_threads,
    )
    clients: list[SimClient] = []
    for site in range(1, config.mpl + 1):
        generator = WorkloadGenerator(
            config.workload,
            seed=config.seed * 1_000_003 + site,
            partition=partition_for_site(config.workload, site),
            query_group_limits=group_limits,
        )
        if config.transactions_per_client is not None:
            programs = generator.generate_mix(
                config.transactions_per_client, config.til, config.tel
            )
        else:
            programs = generator.stream(config.til, config.tel)
        clients.append(
            SimClient(
                site=site,
                server=server,
                programs=programs,
                latency=config.latency,
                seed=config.seed * 7_000_003 + site,
            )
        )
    return engine, server, clients, database


def run_simulation(config: SimulationConfig) -> RunResult:
    """Run one configuration to completion and collect its measurements."""
    engine, server, clients, _ = build_simulation(config)
    processes = [
        engine.spawn(client.process(), name=f"client-{client.site}")
        for client in clients
    ]
    manager = server.manager
    busy_at_start = 0.0
    if config.transactions_per_client is not None:
        engine.run_until_complete(processes)
        measured_ms = engine.now
    else:
        if config.warmup_ms > 0:
            engine.run(until=config.warmup_ms)
            # Reset through the recorder so warm-up events are dropped
            # together with the counters they derived.
            manager.recorder.reset()
            busy_at_start = server.cpu.busy_snapshot()
            for client in clients:
                client.committed = 0
                client.restarts = 0
        engine.run(until=config.duration_ms)
        measured_ms = config.duration_ms - config.warmup_ms
    snapshot = manager.metrics.snapshot()
    store = getattr(manager, "snapshot", None)
    return RunResult(
        config=config,
        measured_ms=measured_ms,
        commits=snapshot.commits,
        aborts=snapshot.aborts,
        metrics=snapshot,
        client_commits=tuple(client.committed for client in clients),
        server_utilisation=server.cpu.utilisation(measured_ms, busy_at_start),
        cache=(
            tuple(store.stats().items()) if store is not None else None
        ),
        history=(
            HistoryLog.from_engine(manager)
            if config.record_history
            else None
        ),
    )
