"""The simulated server: the engine wrapped for generator-based clients.

Two concerns meet here:

* the :class:`~repro.engine.manager.TransactionManager` never blocks — it
  returns :class:`~repro.engine.results.MustWait` and expects the runtime
  to retry.  A blocked operation subscribes an
  :class:`~repro.sim.des.Event` to the wait registry; the client process
  suspends on it, waking when the blocking transaction completes, then
  retries — the paper's wait-based strict ordering;
* the server machine has finite processing capacity.  Every operation
  (including commit/abort processing) occupies one of the server's
  service units for ``service_time`` simulated milliseconds, queueing
  FIFO when all units are busy.  This is what makes wasted work — the
  operations of transactions that later abort — degrade throughput, and
  with it the thrashing behaviour of the paper's Figures 7–10.  While a
  transaction *waits* for strict ordering it holds no service unit.
"""

from __future__ import annotations

from typing import Generator

from repro.engine.manager import TransactionManager
from repro.engine.results import MustWait, Outcome
from repro.engine.transactions import TransactionState
from repro.sim.des import Engine, Event, Resource, Timeout

__all__ = ["SimServer", "DEFAULT_SERVICE_TIME_MS", "DEFAULT_SERVER_THREADS"]

#: Per-operation server processing time.  Calibrated so the server
#: saturates around MPL 4–6 under the paper workload, which is what puts
#: the thrashing knee inside the studied MPL range of 1–10 (the paper
#: raised its conflict ratio for the same reason, accepting "reduced
#: overall throughputs").
DEFAULT_SERVICE_TIME_MS = 6.0
#: Parallel service units (the prototype server is multithreaded but the
#: protocol-critical sections serialise on one machine).
DEFAULT_SERVER_THREADS = 1


class SimServer:
    """Generator-friendly facade over a transaction manager."""

    def __init__(
        self,
        manager: TransactionManager,
        engine: Engine,
        service_time: float = DEFAULT_SERVICE_TIME_MS,
        threads: int = DEFAULT_SERVER_THREADS,
    ):
        self.manager = manager
        self.engine = engine
        self.service_time = service_time
        self.cpu = Resource(engine, threads)

    # -- service-station plumbing ---------------------------------------------

    def _serve(self) -> Generator[object, None, None]:
        """Occupy one service unit for one operation's processing."""
        yield self.cpu.acquire()
        if self.service_time > 0:
            yield Timeout(self.service_time)

    # -- operations --------------------------------------------------------------

    def perform_read(
        self, txn: TransactionState, object_id: int
    ) -> Generator[object, None, Outcome]:
        """Submit a read, waiting out strict-ordering blocks.

        Use as ``outcome = yield from server.perform_read(txn, oid)``;
        the final outcome is always Granted or Rejected.
        """
        if getattr(self.manager, "snapshot", None) is not None:
            # Snapshot-cache fast path: a bounded-staleness read skips
            # the service station entirely — it occupies no service unit
            # and costs zero simulated time, the DES analogue of
            # answering outside the engine critical section.
            cached = self.manager.read_cached(txn, object_id)
            if cached is not None:
                return cached
        while True:
            yield from self._serve()
            outcome = self.manager.read(txn, object_id)
            self.cpu.release()
            if isinstance(outcome, MustWait):
                yield self._block_on(outcome, txn)
                continue
            return outcome

    def perform_write(
        self, txn: TransactionState, object_id: int, value: float
    ) -> Generator[object, None, Outcome]:
        """Submit a write, waiting out strict-ordering blocks."""
        while True:
            yield from self._serve()
            outcome = self.manager.write(txn, object_id, value)
            self.cpu.release()
            if isinstance(outcome, MustWait):
                yield self._block_on(outcome, txn)
                continue
            return outcome

    def perform_commit(
        self, txn: TransactionState
    ) -> Generator[object, None, None]:
        """Commit processing, under the service station."""
        yield from self._serve()
        self.manager.commit(txn)
        self.cpu.release()

    def perform_abort(
        self, txn: TransactionState, reason: str = "client-abort"
    ) -> Generator[object, None, None]:
        """Abort processing, under the service station."""
        yield from self._serve()
        self.manager.abort(txn, reason)
        self.cpu.release()

    def _block_on(self, outcome: MustWait, txn: TransactionState) -> Event:
        event = Event()
        self.manager.waits.subscribe(
            outcome.blocking_transaction,
            event.trigger,
            waiter_transaction=txn.transaction_id,
        )
        return event
