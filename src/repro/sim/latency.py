"""RPC latency models matching the paper's measured prototype timings.

Paper section 6: "A null RPC call takes about 11 milliseconds to return
while the average RPC call takes somewhere between 17 and 20 milliseconds."
The default model therefore draws each operation's round trip uniformly
from [17, 20] ms; BEGIN is client-local (timestamps are generated at the
client sites), and COMMIT/ABORT notifications are modelled as a null call.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import SpecificationError

__all__ = ["LatencyModel", "PAPER_LATENCY", "ZERO_LATENCY"]


@dataclass(frozen=True)
class LatencyModel:
    """Round-trip times, in simulated milliseconds."""

    #: Bounds of a data-carrying RPC (Read / Write).
    rpc_min: float = 17.0
    rpc_max: float = 20.0
    #: A null RPC (Commit / Abort notification).
    null_rpc: float = 11.0
    #: Client-side pause before resubmitting an aborted transaction.
    #: The paper does "aborts with immediate restarts", hence zero.
    restart_delay: float = 0.0

    def __post_init__(self) -> None:
        if self.rpc_min < 0 or self.rpc_max < self.rpc_min:
            raise SpecificationError(
                f"invalid RPC range [{self.rpc_min}, {self.rpc_max}]"
            )
        if self.null_rpc < 0 or self.restart_delay < 0:
            raise SpecificationError("latencies must be >= 0")

    def operation_delay(self, rng: random.Random) -> float:
        """One Read/Write round trip."""
        if self.rpc_min == self.rpc_max:
            return self.rpc_min
        return rng.uniform(self.rpc_min, self.rpc_max)

    def commit_delay(self, rng: random.Random) -> float:
        """One Commit/Abort round trip."""
        return self.null_rpc


#: The paper's measured environment.
PAPER_LATENCY = LatencyModel()

#: Zero-cost transport, for unit tests that only care about ordering.
ZERO_LATENCY = LatencyModel(rpc_min=0.0, rpc_max=0.0, null_rpc=0.0)
