"""Simulated clients: synchronous submitters that resubmit until commit.

Each client mirrors the paper's prototype clients (section 6): it works
through its transaction load one at a time, submitting operations
synchronously over the (simulated) RPC transport; if the server aborts a
transaction, the client immediately resubmits it with a fresh timestamp,
repeating until it commits.  BEGIN is client-local (timestamps are
generated at the client sites); Read/Write are full RPCs; COMMIT is a
null RPC.
"""

from __future__ import annotations

import random
from typing import Generator, Iterable, Iterator

from repro.engine.results import Granted, Rejected
from repro.engine.timestamps import TimestampGenerator
from repro.errors import EvaluationError
from repro.lang.ast import OutputStmt, Program, ReadStmt, WriteStmt
from repro.lang.compiler import compile_program
from repro.lang.eval import evaluate_expr
from repro.sim.des import Timeout
from repro.sim.latency import LatencyModel, PAPER_LATENCY
from repro.sim.server import SimServer

__all__ = ["SimClient"]


class SimClient:
    """One client site: a trace of programs and a timestamp generator."""

    def __init__(
        self,
        site: int,
        server: SimServer,
        programs: Iterable[Program],
        latency: LatencyModel = PAPER_LATENCY,
        seed: int = 0,
        clock_skew: float = 0.0,
    ):
        self.site = site
        self.server = server
        self._programs: Iterator[Program] = iter(programs)
        self.latency = latency
        self._rng = random.Random(seed)
        #: Constant offset of this site's local clock from simulated time.
        #: The paper's client sites had up to two minutes of skew, which it
        #: corrected to a virtual synchronized clock; the simulator's
        #: default is zero skew (perfectly corrected).  A non-zero value
        #: here models an *uncorrected* site, which demonstrably distorts
        #: timestamp-ordering fairness (see tests).
        self.clock_skew = clock_skew
        self._timestamps = TimestampGenerator(
            site=site, clock=lambda: server.engine.now + self.clock_skew
        )
        #: Transactions committed by this client.
        self.committed = 0
        #: Abort-and-resubmit cycles this client went through.
        self.restarts = 0
        #: output(...) lines produced by committed transactions.
        self.outputs: list[str] = []

    # -- the client process ------------------------------------------------------

    def process(self) -> Generator[object, None, None]:
        """The client's top-level simulation process."""
        for program in self._programs:
            yield from self.run_to_commit(program)

    def run_to_commit(self, program: Program) -> Generator[object, None, None]:
        """Submit ``program`` repeatedly until it commits."""
        compiled = compile_program(program)
        while True:
            committed, outputs = yield from self._attempt(compiled)
            if committed:
                self.committed += 1
                self.outputs.extend(outputs)
                return
            self.restarts += 1
            if self.latency.restart_delay > 0:
                yield Timeout(self.latency.restart_delay)

    def _attempt(self, compiled) -> Generator[object, None, tuple[bool, list[str]]]:
        """One incarnation: begin, run the body, commit. False on abort."""
        manager = self.server.manager
        txn = manager.begin(
            compiled.kind,
            compiled.bounds,
            timestamp=self._timestamps.next(),
            group_limits=compiled.group_limits,
            object_limits=compiled.object_limits,
        )
        environment: dict[str, float] = {}
        outputs: list[str] = []
        for stmt in compiled.program.body:
            if isinstance(stmt, ReadStmt):
                yield Timeout(self.latency.operation_delay(self._rng))
                outcome = yield from self.server.perform_read(
                    txn, stmt.object_id
                )
                if isinstance(outcome, Rejected):
                    return False, outputs
                assert isinstance(outcome, Granted)
                if stmt.target is not None and outcome.value is not None:
                    environment[stmt.target] = outcome.value
            elif isinstance(stmt, WriteStmt):
                try:
                    value = evaluate_expr(stmt.value, environment)
                except EvaluationError:
                    # A malformed program cannot succeed on retry either;
                    # abort it and surface the failure to the caller.
                    yield from self.server.perform_abort(txn, "program-error")
                    raise
                yield Timeout(self.latency.operation_delay(self._rng))
                outcome = yield from self.server.perform_write(
                    txn, stmt.object_id, value
                )
                if isinstance(outcome, Rejected):
                    return False, outputs
            elif isinstance(stmt, OutputStmt):
                # output() is client-local: no RPC, no simulated delay.
                text = "".join(
                    part
                    if isinstance(part, str)
                    else _render(evaluate_expr(part, environment))
                    for part in stmt.parts
                )
                outputs.append(text)
        if compiled.program.terminator == "abort":
            yield Timeout(self.latency.commit_delay(self._rng))
            yield from self.server.perform_abort(txn, "client-abort")
            return True, []
        yield Timeout(self.latency.commit_delay(self._rng))
        yield from self.server.perform_commit(txn)
        return True, outputs


def _render(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return f"{value:g}"
