"""Program ↔ source conversion and engine-facing compilation.

Two jobs live here:

* :func:`format_program` — serialise an AST back to source text in the
  paper's style, used by the workload generator to write client trace
  files;
* :func:`compile_program` — turn an AST into a
  :class:`CompiledTransaction`, the bundle the runtimes hand to a
  transaction manager: the kind, the :class:`TransactionBounds`, the group
  limits, the per-object overrides, and the executable body.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bounds import TransactionBounds
from repro.lang.ast import (
    AggregateCall,
    BinaryOp,
    Expr,
    Number,
    OutputStmt,
    Program,
    ReadStmt,
    Variable,
    WriteStmt,
)

__all__ = ["CompiledTransaction", "compile_program", "format_program", "format_expr"]


@dataclass(frozen=True)
class CompiledTransaction:
    """A program plus everything a runtime needs to BEGIN it."""

    program: Program
    kind: str
    bounds: TransactionBounds
    group_limits: dict[str, float]
    object_limits: dict[int, float]

    @property
    def is_query(self) -> bool:
        return self.kind == "query"


def compile_program(program: Program) -> CompiledTransaction:
    """Resolve a program's header into engine-level bound objects.

    A query's declared limit becomes the TIL (TEL 0 — it never writes);
    an update's becomes the TEL (TIL 0 — its reads must be consistent,
    paper section 3.2.1).
    """
    if program.is_query:
        bounds = TransactionBounds(import_limit=program.transaction_limit)
    else:
        bounds = TransactionBounds(export_limit=program.transaction_limit)
    return CompiledTransaction(
        program=program,
        kind=program.kind,
        bounds=bounds,
        group_limits=program.group_limits,
        object_limits=program.object_limits,
    )


# -- serialisation back to source ------------------------------------------------


def _format_number(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return f"{value:g}"


def format_expr(expr: Expr) -> str:
    """Render an expression as source text (fully parenthesised nesting)."""
    if isinstance(expr, Number):
        return _format_number(expr.value)
    if isinstance(expr, Variable):
        return expr.name
    if isinstance(expr, BinaryOp):
        left = format_expr(expr.left)
        right = format_expr(expr.right)
        if isinstance(expr.right, BinaryOp):
            right = f"({right})"
        if isinstance(expr.left, BinaryOp) and expr.op in ("*", "/"):
            left = f"({left})"
        return f"{left}{expr.op}{right}"
    if isinstance(expr, AggregateCall):
        args = ", ".join(format_expr(arg) for arg in expr.args)
        return f"{expr.name}({args})"
    raise TypeError(f"unknown expression node {expr!r}")


def format_program(program: Program) -> str:
    """Render a program as source text in the paper's style."""
    kind = "Query" if program.is_query else "Update"
    limit_kw = "TIL" if program.is_query else "TEL"
    lines = [
        f"BEGIN {kind} {limit_kw} = {_format_number(program.transaction_limit)}"
    ]
    for decl in program.limits:
        if decl.is_object_limit:
            lines.append(
                f"LIMIT object {decl.object_id} {_format_number(decl.value)}"
            )
        else:
            lines.append(f"LIMIT {decl.name} {_format_number(decl.value)}")
    for stmt in program.body:
        if isinstance(stmt, ReadStmt):
            if stmt.target is not None:
                lines.append(f"{stmt.target} = Read {stmt.object_id}")
            else:
                lines.append(f"Read {stmt.object_id}")
        elif isinstance(stmt, WriteStmt):
            lines.append(f"Write {stmt.object_id} , {format_expr(stmt.value)}")
        elif isinstance(stmt, OutputStmt):
            parts = ", ".join(
                f'"{part}"' if isinstance(part, str) else format_expr(part)
                for part in stmt.parts
            )
            lines.append(f"output({parts})")
    lines.append("ABORT" if program.terminator == "abort" else "COMMIT")
    return "\n".join(lines) + "\n"
