"""Token definitions for the transaction mini-language.

The language is the one the paper writes its epsilon transactions in::

    BEGIN Query TIL = 100000
    LIMIT company 4000
    t1 = Read 1863
    t2 = Read 1427
    output("Sum is: ", t1+t2)
    COMMIT

Statements are line-oriented, so newlines are significant tokens.
Keywords are recognised case-insensitively (the paper mixes ``BEGIN`` and
``Read``).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TokenType", "Token", "KEYWORDS"]


class TokenType:
    """Token kinds, as plain string constants."""

    NUMBER = "NUMBER"
    STRING = "STRING"
    IDENT = "IDENT"
    KEYWORD = "KEYWORD"
    PLUS = "PLUS"
    MINUS = "MINUS"
    STAR = "STAR"
    SLASH = "SLASH"
    LPAREN = "LPAREN"
    RPAREN = "RPAREN"
    COMMA = "COMMA"
    EQUALS = "EQUALS"
    NEWLINE = "NEWLINE"
    EOF = "EOF"


#: Keywords, stored lowercase; the lexer lowercases candidate identifiers
#: before checking membership.
KEYWORDS = frozenset(
    {
        "begin",
        "commit",
        "abort",
        "end",
        "query",
        "update",
        "til",
        "tel",
        "limit",
        "read",
        "write",
        "output",
    }
)


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based)."""

    type: str
    value: str
    line: int
    column: int

    @property
    def keyword(self) -> str:
        """The lowercase keyword text (only meaningful for KEYWORD tokens)."""
        return self.value.lower()

    def __repr__(self) -> str:
        return f"Token({self.type}, {self.value!r}, {self.line}:{self.column})"
