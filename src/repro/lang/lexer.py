"""Hand-rolled tokenizer for the transaction mini-language."""

from __future__ import annotations

from repro.errors import LexError
from repro.lang.tokens import KEYWORDS, Token, TokenType

__all__ = ["tokenize"]

_SINGLE_CHAR = {
    "+": TokenType.PLUS,
    "-": TokenType.MINUS,
    "*": TokenType.STAR,
    "/": TokenType.SLASH,
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    ",": TokenType.COMMA,
    "=": TokenType.EQUALS,
}


def tokenize(source: str) -> list[Token]:
    """Convert source text into a token list ending with EOF.

    Consecutive newlines collapse into a single NEWLINE token; ``#``
    comments run to end of line; string literals use double quotes with no
    escapes (the language never needs them).
    """
    tokens: list[Token] = []
    line = 1
    column = 1
    i = 0
    n = len(source)

    def emit(token_type: str, value: str, start_col: int) -> None:
        tokens.append(Token(token_type, value, line, start_col))

    while i < n:
        ch = source[i]
        if ch == "\n":
            if tokens and tokens[-1].type != TokenType.NEWLINE:
                emit(TokenType.NEWLINE, "\n", column)
            i += 1
            line += 1
            column = 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        if ch == "#":
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch in _SINGLE_CHAR:
            emit(_SINGLE_CHAR[ch], ch, column)
            i += 1
            column += 1
            continue
        if ch == '"':
            start_col = column
            i += 1
            column += 1
            start = i
            while i < n and source[i] not in '"\n':
                i += 1
                column += 1
            if i >= n or source[i] != '"':
                raise LexError("unterminated string literal", line, start_col)
            emit(TokenType.STRING, source[start:i], start_col)
            i += 1
            column += 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            start = i
            start_col = column
            seen_dot = False
            while i < n and (source[i].isdigit() or (source[i] == "." and not seen_dot)):
                if source[i] == ".":
                    seen_dot = True
                i += 1
                column += 1
            emit(TokenType.NUMBER, source[start:i], start_col)
            continue
        if ch.isalpha() or ch == "_":
            start = i
            start_col = column
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
                column += 1
            word = source[start:i]
            if word.lower() in KEYWORDS:
                emit(TokenType.KEYWORD, word, start_col)
            else:
                emit(TokenType.IDENT, word, start_col)
            continue
        raise LexError(f"unexpected character {ch!r}", line, column)

    if tokens and tokens[-1].type != TokenType.NEWLINE:
        tokens.append(Token(TokenType.NEWLINE, "\n", line, column))
    tokens.append(Token(TokenType.EOF, "", line, column))
    return tokens
