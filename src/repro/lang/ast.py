"""Abstract syntax for the transaction mini-language.

A *program* is one epsilon transaction: a BEGIN header naming the kind and
the transaction-level limit, optional LIMIT lines (group limits, or
per-object overrides written ``LIMIT OBJECT <id> <value>``), a body of
Read / Write / output statements, and a terminator (COMMIT, END, or
ABORT).

Expression nodes cover what update transactions need — arithmetic over
read results — plus aggregate calls (``sum``, ``avg``, ``min``, ``max``)
for section 5.3.2 query programs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

__all__ = [
    "Expr",
    "Number",
    "Variable",
    "BinaryOp",
    "AggregateCall",
    "Statement",
    "ReadStmt",
    "WriteStmt",
    "OutputStmt",
    "LimitDecl",
    "Program",
]


@dataclass(frozen=True)
class Number:
    value: float


@dataclass(frozen=True)
class Variable:
    name: str


@dataclass(frozen=True)
class BinaryOp:
    op: str  # one of + - * /
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class AggregateCall:
    """``avg(t1, t2, ...)`` — an aggregate over previously read values."""

    name: str  # sum | avg | min | max
    args: tuple["Expr", ...]


Expr = Union[Number, Variable, BinaryOp, AggregateCall]


@dataclass(frozen=True)
class ReadStmt:
    """``t1 = Read 1863`` (or bare ``Read 1863`` discarding the value)."""

    object_id: int
    target: str | None = None


@dataclass(frozen=True)
class WriteStmt:
    """``Write 1078 , t2+3000``."""

    object_id: int
    value: Expr


@dataclass(frozen=True)
class OutputStmt:
    """``output("Sum is: ", t1+t2)`` — strings and expressions mixed."""

    parts: tuple[Union[str, Expr], ...]


Statement = Union[ReadStmt, WriteStmt, OutputStmt]


@dataclass(frozen=True)
class LimitDecl:
    """``LIMIT company 4000`` or ``LIMIT OBJECT 1863 250``."""

    name: str
    value: float
    object_id: int | None = None

    @property
    def is_object_limit(self) -> bool:
        return self.object_id is not None


@dataclass(frozen=True)
class Program:
    """One complete epsilon transaction."""

    kind: str  # "query" | "update"
    transaction_limit: float
    limits: tuple[LimitDecl, ...] = ()
    body: tuple[Statement, ...] = ()
    terminator: str = "commit"  # "commit" | "abort"

    @property
    def is_query(self) -> bool:
        return self.kind == "query"

    @property
    def group_limits(self) -> dict[str, float]:
        return {
            decl.name: decl.value
            for decl in self.limits
            if not decl.is_object_limit
        }

    @property
    def object_limits(self) -> dict[int, float]:
        return {
            decl.object_id: decl.value
            for decl in self.limits
            if decl.is_object_limit
        }

    def read_count(self) -> int:
        return sum(1 for stmt in self.body if isinstance(stmt, ReadStmt))

    def write_count(self) -> int:
        return sum(1 for stmt in self.body if isinstance(stmt, WriteStmt))

    def objects_touched(self) -> tuple[int, ...]:
        """Object ids referenced, in program order, with duplicates."""
        ids: list[int] = []
        for stmt in self.body:
            if isinstance(stmt, (ReadStmt, WriteStmt)):
                ids.append(stmt.object_id)
        return tuple(ids)
