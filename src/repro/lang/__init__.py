"""The paper's transaction mini-language.

Lexer, parser, AST, interpreter, and compiler for programs like::

    BEGIN Update TEL = 10000
    t1 = Read 1923
    t2 = Read 1644
    Write 1078 , t2+3000
    COMMIT

Round-trip guarantee: ``parse_program(format_program(p)) == p`` for every
program ``p`` the parser can produce (property-tested).
"""

from repro.lang.ast import (
    AggregateCall,
    BinaryOp,
    Expr,
    LimitDecl,
    Number,
    OutputStmt,
    Program,
    ReadStmt,
    Statement,
    Variable,
    WriteStmt,
)
from repro.lang.compiler import (
    CompiledTransaction,
    compile_program,
    format_expr,
    format_program,
)
from repro.lang.eval import ExecutionResult, Session, evaluate_expr, execute
from repro.lang.lexer import tokenize
from repro.lang.parser import parse_program, parse_script

__all__ = [
    "AggregateCall",
    "BinaryOp",
    "Expr",
    "LimitDecl",
    "Number",
    "OutputStmt",
    "Program",
    "ReadStmt",
    "Statement",
    "Variable",
    "WriteStmt",
    "CompiledTransaction",
    "compile_program",
    "format_expr",
    "format_program",
    "ExecutionResult",
    "Session",
    "evaluate_expr",
    "execute",
    "tokenize",
    "parse_program",
    "parse_script",
]
