"""Recursive-descent parser for the transaction mini-language.

Grammar (statements are newline-separated)::

    script      := program (NEWLINE* program)* NEWLINE*
    program     := begin NEWLINE (limit NEWLINE)* (stmt NEWLINE)* terminator
    begin       := BEGIN kind limitkw ["="] NUMBER
    kind        := QUERY | UPDATE
    limitkw     := TIL | TEL
    limit       := LIMIT IDENT NUMBER
                 | LIMIT "object" NUMBER NUMBER
    stmt        := [IDENT "="] READ NUMBER
                 | WRITE NUMBER "," expr
                 | OUTPUT "(" outargs ")"
    outargs     := outarg ("," outarg)*
    outarg      := STRING | expr
    terminator  := COMMIT | END | ABORT
    expr        := term (("+"|"-") term)*
    term        := factor (("*"|"/") factor)*
    factor      := NUMBER | IDENT | agg "(" expr ("," expr)* ")"
                 | "(" expr ")" | "-" factor
    agg         := "sum" | "avg" | "min" | "max" (as IDENTs)

The header's kind and limit keyword must agree: ``Query`` declares a TIL,
``Update`` declares a TEL (paper section 3.2.1).
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.lang.ast import (
    AggregateCall,
    BinaryOp,
    Expr,
    LimitDecl,
    Number,
    OutputStmt,
    Program,
    ReadStmt,
    Statement,
    Variable,
    WriteStmt,
)
from repro.lang.lexer import tokenize
from repro.lang.tokens import Token, TokenType

__all__ = ["parse_program", "parse_script"]

_AGGREGATE_NAMES = frozenset({"sum", "avg", "min", "max"})


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing -----------------------------------------------------

    @property
    def current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type != TokenType.EOF:
            self._pos += 1
        return token

    def _check(self, token_type: str, value: str | None = None) -> bool:
        token = self.current
        if token.type != token_type:
            return False
        if value is not None and token.value.lower() != value:
            return False
        return True

    def _accept(self, token_type: str, value: str | None = None) -> Token | None:
        if self._check(token_type, value):
            return self._advance()
        return None

    def _expect(self, token_type: str, value: str | None = None) -> Token:
        token = self.current
        if not self._check(token_type, value):
            wanted = value if value is not None else token_type
            raise ParseError(
                f"expected {wanted}, found {token.value!r}", token.line
            )
        return self._advance()

    def _skip_newlines(self) -> None:
        while self._accept(TokenType.NEWLINE):
            pass

    def _end_statement(self) -> None:
        if self.current.type == TokenType.EOF:
            return
        self._expect(TokenType.NEWLINE)
        self._skip_newlines()

    def at_eof(self) -> bool:
        return self.current.type == TokenType.EOF

    # -- grammar --------------------------------------------------------------

    def parse_program(self) -> Program:
        self._skip_newlines()
        kind, transaction_limit = self._parse_begin()
        self._end_statement()
        limits: list[LimitDecl] = []
        while self._check(TokenType.KEYWORD, "limit"):
            limits.append(self._parse_limit())
            self._end_statement()
        body: list[Statement] = []
        while True:
            token = self.current
            if token.type == TokenType.KEYWORD and token.keyword in (
                "commit",
                "end",
                "abort",
            ):
                terminator = "abort" if token.keyword == "abort" else "commit"
                self._advance()
                self._skip_newlines()
                break
            if token.type == TokenType.EOF:
                raise ParseError("transaction is missing COMMIT/END/ABORT")
            body.append(self._parse_statement())
            self._end_statement()
        return Program(
            kind=kind,
            transaction_limit=transaction_limit,
            limits=tuple(limits),
            body=tuple(body),
            terminator=terminator,
        )

    def _parse_begin(self) -> tuple[str, float]:
        self._expect(TokenType.KEYWORD, "begin")
        kind_token = self.current
        kind = kind_token.value.lower()
        if kind_token.type not in (TokenType.KEYWORD, TokenType.IDENT) or kind not in (
            "query",
            "update",
        ):
            raise ParseError(
                f"expected Query or Update, found {kind_token.value!r}",
                kind_token.line,
            )
        self._advance()
        limit_token = self._expect(TokenType.KEYWORD)
        limit_kw = limit_token.keyword
        if limit_kw not in ("til", "tel"):
            raise ParseError(
                f"expected TIL or TEL, found {limit_token.value!r}",
                limit_token.line,
            )
        expected = "til" if kind == "query" else "tel"
        if limit_kw != expected:
            raise ParseError(
                f"a {kind} transaction declares {expected.upper()}, "
                f"not {limit_kw.upper()}",
                limit_token.line,
            )
        self._accept(TokenType.EQUALS)
        number = self._expect(TokenType.NUMBER)
        return kind, float(number.value)

    def _parse_limit(self) -> LimitDecl:
        self._expect(TokenType.KEYWORD, "limit")
        if self._check(TokenType.IDENT) and self.current.value.lower() == "object":
            self._advance()
            object_token = self._expect(TokenType.NUMBER)
            value_token = self._expect(TokenType.NUMBER)
            return LimitDecl(
                name="object",
                value=float(value_token.value),
                object_id=int(float(object_token.value)),
            )
        name_token = self._expect(TokenType.IDENT)
        value_token = self._expect(TokenType.NUMBER)
        return LimitDecl(name=name_token.value, value=float(value_token.value))

    def _parse_statement(self) -> Statement:
        token = self.current
        if token.type == TokenType.IDENT and token.value.lower() != "output":
            # `t1 = Read 1863`
            target = self._advance().value
            self._expect(TokenType.EQUALS)
            self._expect(TokenType.KEYWORD, "read")
            object_token = self._expect(TokenType.NUMBER)
            return ReadStmt(object_id=int(float(object_token.value)), target=target)
        if self._check(TokenType.KEYWORD, "read"):
            self._advance()
            object_token = self._expect(TokenType.NUMBER)
            return ReadStmt(object_id=int(float(object_token.value)))
        if self._check(TokenType.KEYWORD, "write"):
            self._advance()
            object_token = self._expect(TokenType.NUMBER)
            self._expect(TokenType.COMMA)
            value = self._parse_expr()
            return WriteStmt(
                object_id=int(float(object_token.value)), value=value
            )
        if self._check(TokenType.KEYWORD, "output"):
            self._advance()
            self._expect(TokenType.LPAREN)
            parts: list[object] = []
            while True:
                if self._check(TokenType.STRING):
                    parts.append(self._advance().value)
                else:
                    parts.append(self._parse_expr())
                if not self._accept(TokenType.COMMA):
                    break
            self._expect(TokenType.RPAREN)
            return OutputStmt(parts=tuple(parts))
        raise ParseError(
            f"unexpected token {token.value!r} at statement start", token.line
        )

    # -- expressions -------------------------------------------------------------

    def _parse_expr(self) -> Expr:
        node = self._parse_term()
        while self.current.type in (TokenType.PLUS, TokenType.MINUS):
            op = self._advance().value
            node = BinaryOp(op=op, left=node, right=self._parse_term())
        return node

    def _parse_term(self) -> Expr:
        node = self._parse_factor()
        while self.current.type in (TokenType.STAR, TokenType.SLASH):
            op = self._advance().value
            node = BinaryOp(op=op, left=node, right=self._parse_factor())
        return node

    def _parse_factor(self) -> Expr:
        token = self.current
        if token.type == TokenType.MINUS:
            self._advance()
            return BinaryOp(op="-", left=Number(0.0), right=self._parse_factor())
        if token.type == TokenType.NUMBER:
            self._advance()
            return Number(float(token.value))
        if token.type == TokenType.IDENT:
            name = self._advance().value
            if name.lower() in _AGGREGATE_NAMES and self._check(TokenType.LPAREN):
                self._advance()
                args = [self._parse_expr()]
                while self._accept(TokenType.COMMA):
                    args.append(self._parse_expr())
                self._expect(TokenType.RPAREN)
                return AggregateCall(name=name.lower(), args=tuple(args))
            return Variable(name=name)
        if token.type == TokenType.LPAREN:
            self._advance()
            node = self._parse_expr()
            self._expect(TokenType.RPAREN)
            return node
        raise ParseError(
            f"unexpected token {token.value!r} in expression", token.line
        )


def parse_program(source: str) -> Program:
    """Parse exactly one transaction program from ``source``."""
    parser = _Parser(tokenize(source))
    program = parser.parse_program()
    parser._skip_newlines()
    if not parser.at_eof():
        token = parser.current
        raise ParseError(
            f"trailing input after program: {token.value!r}", token.line
        )
    return program


def parse_script(source: str) -> list[Program]:
    """Parse a file containing any number of transaction programs."""
    parser = _Parser(tokenize(source))
    programs: list[Program] = []
    parser._skip_newlines()
    while not parser.at_eof():
        programs.append(parser.parse_program())
        parser._skip_newlines()
    return programs
