"""Interpreter for transaction programs.

A parsed :class:`~repro.lang.ast.Program` executes against a *session* —
any object providing blocking ``read(object_id) -> value`` and
``write(object_id, value)`` methods (plus optional hooks below).  Sessions
are supplied by the runtimes: the in-process runtime wraps a
:class:`~repro.engine.manager.TransactionManager` transaction, the
simulator wraps a simulated client, the networked client wraps an RPC
connection.  The interpreter itself is runtime-blind.

Optional session hooks:

``aggregate_guard(name, object_ids)``
    Called before producing a non-sum aggregate whose arguments are plain
    read variables.  Gives the runtime the chance to apply the paper's
    section 5.3.2 check: compute the result inconsistency from the
    min/max values viewed per object and reject if it exceeds the TIL.
    The hook should raise to reject; its return value is ignored.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol, runtime_checkable

from repro.errors import EvaluationError
from repro.lang.ast import (
    AggregateCall,
    BinaryOp,
    Expr,
    Number,
    OutputStmt,
    Program,
    ReadStmt,
    Variable,
    WriteStmt,
)

__all__ = ["Session", "ExecutionResult", "evaluate_expr", "execute"]


@runtime_checkable
class Session(Protocol):
    """The operations a program needs from its hosting runtime."""

    def read(self, object_id: int) -> float:  # pragma: no cover
        ...

    def write(self, object_id: int, value: float) -> None:  # pragma: no cover
        ...


@dataclass
class ExecutionResult:
    """Everything a finished program produced."""

    outputs: list[str] = field(default_factory=list)
    environment: dict[str, float] = field(default_factory=dict)
    reads: int = 0
    writes: int = 0
    aborted_by_program: bool = False


def evaluate_expr(expr: Expr, environment: dict[str, float]) -> float:
    """Evaluate an expression over the current variable bindings."""
    if isinstance(expr, Number):
        return expr.value
    if isinstance(expr, Variable):
        try:
            return environment[expr.name]
        except KeyError:
            raise EvaluationError(
                f"variable {expr.name!r} used before being read"
            ) from None
    if isinstance(expr, BinaryOp):
        left = evaluate_expr(expr.left, environment)
        right = evaluate_expr(expr.right, environment)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/":
            if right == 0:
                raise EvaluationError("division by zero")
            return left / right
        raise EvaluationError(f"unknown operator {expr.op!r}")
    if isinstance(expr, AggregateCall):
        values = [evaluate_expr(arg, environment) for arg in expr.args]
        if expr.name == "sum":
            return sum(values)
        if expr.name == "avg":
            return sum(values) / len(values)
        if expr.name == "min":
            return min(values)
        if expr.name == "max":
            return max(values)
        raise EvaluationError(f"unknown aggregate {expr.name!r}")
    raise EvaluationError(f"unknown expression node {expr!r}")


def _aggregate_objects(
    call: AggregateCall, var_objects: dict[str, int]
) -> list[int] | None:
    """Object ids behind an aggregate's arguments, if all are plain reads."""
    object_ids: list[int] = []
    for arg in call.args:
        if not isinstance(arg, Variable):
            return None
        object_id = var_objects.get(arg.name)
        if object_id is None:
            return None
        object_ids.append(object_id)
    return object_ids


def _format_output(part: object, environment: dict[str, float]) -> str:
    if isinstance(part, str):
        return part
    value = evaluate_expr(part, environment)
    if value == int(value):
        return str(int(value))
    return f"{value:g}"


def execute(
    program: Program,
    session: Session,
    on_output: Callable[[str], None] | None = None,
) -> ExecutionResult:
    """Run ``program`` against ``session``.

    The session's ``read``/``write`` may raise (e.g.
    :class:`~repro.errors.TransactionAborted`); the exception propagates to
    the caller, which owns retry policy.  A program terminated by ABORT
    sets ``aborted_by_program`` — the caller should abort the session's
    transaction rather than commit it.
    """
    result = ExecutionResult()
    var_objects: dict[str, int] = {}
    guard = getattr(session, "aggregate_guard", None)
    for stmt in program.body:
        if isinstance(stmt, ReadStmt):
            value = session.read(stmt.object_id)
            result.reads += 1
            if stmt.target is not None:
                result.environment[stmt.target] = value
                var_objects[stmt.target] = stmt.object_id
        elif isinstance(stmt, WriteStmt):
            value = evaluate_expr(stmt.value, result.environment)
            session.write(stmt.object_id, value)
            result.writes += 1
        elif isinstance(stmt, OutputStmt):
            for part in stmt.parts:
                if (
                    guard is not None
                    and isinstance(part, AggregateCall)
                    and part.name != "sum"
                ):
                    object_ids = _aggregate_objects(part, var_objects)
                    if object_ids is not None:
                        guard(part.name, object_ids)
            text = "".join(
                _format_output(part, result.environment)
                for part in stmt.parts
            )
            result.outputs.append(text)
            if on_output is not None:
                on_output(text)
        else:  # pragma: no cover - parser only produces the above
            raise EvaluationError(f"unknown statement {stmt!r}")
    result.aborted_by_program = program.terminator == "abort"
    return result
