"""Inconsistency-bound specifications (TIL, TEL, OIL, OEL).

The paper specifies inconsistency limits at two mandatory levels:

* **transaction level** — a query epsilon-transaction (ET) carries a
  *transaction import limit* (TIL); an update ET carries a *transaction
  export limit* (TEL);
* **object level** — each object carries an *object import limit* (OIL)
  bounding what any single read may view, and an *object export limit*
  (OEL) bounding what any single write may export.

Intermediate *group* limits are handled by :mod:`repro.core.hierarchy`; this
module holds the flat pieces and the named epsilon presets from the paper's
section 7 table (high / medium / low / zero).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import SpecificationError

__all__ = [
    "UNBOUNDED",
    "TransactionBounds",
    "ObjectBounds",
    "EpsilonLevel",
    "ZERO_EPSILON",
    "LOW_EPSILON",
    "MEDIUM_EPSILON",
    "HIGH_EPSILON",
    "STANDARD_LEVELS",
    "level_by_name",
]

#: Sentinel limit meaning "no bound at this level".  Using ``inf`` keeps all
#: comparison code uniform: a charge is admitted iff ``usage + d <= limit``.
UNBOUNDED = math.inf


def _validate_limit(name: str, value: float) -> float:
    value = float(value)
    if math.isnan(value) or value < 0:
        raise SpecificationError(f"{name} must be >= 0, got {value!r}")
    return value


@dataclass(frozen=True)
class TransactionBounds:
    """Per-transaction inconsistency limits.

    ``import_limit`` (TIL) applies to query ETs and bounds the total
    inconsistency all their reads may view.  ``export_limit`` (TEL) applies
    to update ETs and bounds the total inconsistency all their writes may
    export to concurrent queries.  Zero limits reduce ESR to classic
    serializability.
    """

    import_limit: float = 0.0
    export_limit: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "import_limit", _validate_limit("TIL", self.import_limit)
        )
        object.__setattr__(
            self, "export_limit", _validate_limit("TEL", self.export_limit)
        )

    @property
    def is_serializable(self) -> bool:
        """True when both limits are zero, i.e. ESR degenerates to SR."""
        return self.import_limit == 0.0 and self.export_limit == 0.0

    def scaled(self, factor: float) -> "TransactionBounds":
        """Return bounds multiplied by ``factor`` (used by sweeps)."""
        if factor < 0:
            raise SpecificationError(f"scale factor must be >= 0, got {factor}")
        return TransactionBounds(
            import_limit=self.import_limit * factor,
            export_limit=self.export_limit * factor,
        )


@dataclass(frozen=True)
class ObjectBounds:
    """Per-object inconsistency limits (OIL and OEL).

    In the prototype these live on the server side with each object and
    apply uniformly to all transactions (the paper assumes OIL/OEL are the
    same for every transaction touching the object).
    """

    import_limit: float = UNBOUNDED
    export_limit: float = UNBOUNDED

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "import_limit", _validate_limit("OIL", self.import_limit)
        )
        object.__setattr__(
            self, "export_limit", _validate_limit("OEL", self.export_limit)
        )


@dataclass(frozen=True)
class EpsilonLevel:
    """A named (TIL, TEL) setting from the paper's section 7 table."""

    name: str
    transaction: TransactionBounds

    @property
    def til(self) -> float:
        return self.transaction.import_limit

    @property
    def tel(self) -> float:
        return self.transaction.export_limit


ZERO_EPSILON = EpsilonLevel("zero-epsilon", TransactionBounds(0, 0))
LOW_EPSILON = EpsilonLevel("low-epsilon", TransactionBounds(10_000, 1_000))
MEDIUM_EPSILON = EpsilonLevel("medium-epsilon", TransactionBounds(50_000, 5_000))
HIGH_EPSILON = EpsilonLevel("high-epsilon", TransactionBounds(100_000, 10_000))

#: The paper's table, ordered from SR to the loosest bounds.
STANDARD_LEVELS = (ZERO_EPSILON, LOW_EPSILON, MEDIUM_EPSILON, HIGH_EPSILON)

_LEVELS_BY_NAME = {level.name: level for level in STANDARD_LEVELS}
# Accept the bare adjectives as well ("high" for "high-epsilon").
_LEVELS_BY_NAME.update(
    {level.name.removesuffix("-epsilon"): level for level in STANDARD_LEVELS}
)


def level_by_name(name: str) -> EpsilonLevel:
    """Look up a standard epsilon level by name.

    Accepts both the full names from the paper ("high-epsilon") and the
    short forms used on its graphs ("high").
    """
    try:
        return _LEVELS_BY_NAME[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_LEVELS_BY_NAME))
        raise SpecificationError(
            f"unknown epsilon level {name!r}; known levels: {known}"
        ) from None
