"""Hierarchical inconsistency bounds (paper sections 3.1 and 5.3.1).

Data objects are organised into a tree of *groups* — e.g. a bank's accounts
split into company / preferred / personal categories, each subdivided
further — and a transaction may place an inconsistency limit on any node of
that tree in addition to its overall transaction-level limit:

* specification flows **top-down**: the root carries the transaction limit
  (TIL or TEL), interior nodes carry group limits (GIL), leaves carry
  object limits (OIL or OEL);
* control flows **bottom-up**: when an operation on object ``x`` would view
  (or export) inconsistency ``d``, the system checks ``d`` against the
  object limit, then ``usage + d`` against every group on the path from
  ``x`` to the root, ending with the transaction limit.  A violation at any
  level rejects the operation and aborts the transaction; on success every
  level on the path is charged ``d``.

Two classes implement this:

:class:`GroupCatalog`
    The *shared, static* shape of the tree — group names, parent links, and
    the assignment of object ids to groups.  Owned by the database schema.

:class:`HierarchyLedger`
    The *per-transaction, dynamic* state — limits chosen by one transaction
    plus the inconsistency accumulated so far at every level.  This is the
    object the concurrency control consults on every read (import side) or
    write (export side).

The ledger walk is the per-operation hot path of the whole simulator, so
admission runs over a *limited path* — the object's root path filtered
down to the levels that actually carry a limit.  Every transaction in a
run typically declares the same set of bounded levels (the workload's
``LIMIT`` lines come from one config), so the filtered paths are cached
on the *catalog*, keyed by that level set, and shared by every ledger
that bounds those levels: the first transaction to touch an object pays
the filter, all later transactions walk a precomputed tuple.  The
catalog invalidates an object's entries when it is re-assigned.  Both
:meth:`HierarchyLedger.try_charge` and :meth:`HierarchyLedger.
would_admit` evaluate the same :meth:`~HierarchyLedger._first_violation`
predicate over that path, so the admission decision and the charging
logic can never drift apart.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.core.bounds import UNBOUNDED
from repro.errors import SpecificationError
from repro.perf import counters as _perf

__all__ = [
    "ROOT_GROUP",
    "GroupCatalog",
    "ChargeOutcome",
    "HierarchyLedger",
]

#: Name of the implicit root node; its limit is the transaction limit.
ROOT_GROUP = "<transaction>"


class GroupCatalog:
    """The group tree and the object-to-group assignment.

    The catalog is pure structure: it carries no limits and no usage.  A
    freshly constructed catalog contains only the implicit root; objects
    that are never assigned to a group are treated as *independent* (paper
    Figure 2) and sit directly under the root.
    """

    def __init__(self) -> None:
        self._parent: dict[str, str] = {}
        self._children: dict[str, list[str]] = {ROOT_GROUP: []}
        self._membership: dict[int, str] = {}
        # Reverse index: group -> ordered set of directly assigned objects
        # (insertion-ordered dict used as a set), so members() is O(group)
        # instead of a scan over every assigned object.
        self._members: dict[str, dict[int, None]] = {ROOT_GROUP: {}}
        # Paths are derived data; cache them because the concurrency control
        # asks for a path on every single operation.
        self._path_cache: dict[int, tuple[str, ...]] = {}
        # Limited-path caches shared by every ledger bounding the same set
        # of levels: {frozenset(levels): {object_id: filtered path}}.  The
        # inner dicts are handed to ledgers by reference and only ever
        # emptied in place, never replaced, so they can't go stale.
        self._limited_cache: dict[frozenset[str], dict[int, tuple[str, ...]]] = {}

    # -- construction ----------------------------------------------------

    def add_group(self, name: str, parent: str | None = None) -> None:
        """Declare a group under ``parent`` (the root when omitted)."""
        if not name or name == ROOT_GROUP:
            raise SpecificationError(f"invalid group name {name!r}")
        if name in self._children:
            raise SpecificationError(f"group {name!r} already exists")
        parent = ROOT_GROUP if parent is None else parent
        if parent not in self._children:
            raise SpecificationError(
                f"cannot attach group {name!r}: unknown parent {parent!r}"
            )
        self._parent[name] = parent
        self._children[name] = []
        self._children[parent].append(name)
        self._members[name] = {}

    def assign(self, object_id: int, group: str) -> None:
        """Place ``object_id`` in ``group``.

        Objects may live in any group (interior groups are allowed to hold
        objects directly alongside their subgroups).  Re-assigning an object
        moves it.
        """
        if group not in self._children:
            raise SpecificationError(
                f"cannot assign object {object_id}: unknown group {group!r}"
            )
        previous = self._membership.get(object_id)
        if previous is not None:
            del self._members[previous][object_id]
        self._membership[object_id] = group
        self._members[group][object_id] = None
        self._path_cache.pop(object_id, None)
        for limited in self._limited_cache.values():
            limited.pop(object_id, None)

    def assign_many(self, object_ids: Mapping[int, str] | dict[int, str]) -> None:
        """Assign several objects at once from an ``{id: group}`` mapping."""
        for object_id, group in object_ids.items():
            self.assign(object_id, group)

    # -- queries ----------------------------------------------------------

    def groups(self) -> Iterator[str]:
        """All declared group names (excluding the implicit root)."""
        return iter(self._parent)

    def has_group(self, name: str) -> bool:
        return name in self._children

    def parent_of(self, group: str) -> str:
        """Parent of ``group``; the root's parent is an error."""
        if group == ROOT_GROUP:
            raise SpecificationError("the root group has no parent")
        try:
            return self._parent[group]
        except KeyError:
            raise SpecificationError(f"unknown group {group!r}") from None

    def children_of(self, group: str) -> tuple[str, ...]:
        try:
            return tuple(self._children[group])
        except KeyError:
            raise SpecificationError(f"unknown group {group!r}") from None

    def group_of(self, object_id: int) -> str:
        """Group holding ``object_id`` (the root for independent objects)."""
        return self._membership.get(object_id, ROOT_GROUP)

    def path(self, object_id: int) -> tuple[str, ...]:
        """Groups from the object's own group up to (and including) the root.

        For an independent object this is just ``(ROOT_GROUP,)``.  The path
        order matches the bottom-up control flow of the paper: leaf-most
        group first, root last.
        """
        cached = self._path_cache.get(object_id)
        if cached is not None:
            return cached
        chain: list[str] = []
        node = self.group_of(object_id)
        while node != ROOT_GROUP:
            chain.append(node)
            node = self._parent[node]
        chain.append(ROOT_GROUP)
        path = tuple(chain)
        self._path_cache[object_id] = path
        return path

    def members(self, group: str) -> tuple[int, ...]:
        """Object ids assigned directly to ``group``, in assignment order."""
        try:
            return tuple(self._members[group])
        except KeyError:
            raise SpecificationError(f"unknown group {group!r}") from None

    def limited_paths(self, levels: frozenset[str]) -> dict[int, tuple[str, ...]]:
        """The shared per-object filtered-path cache for one level set.

        Ledgers bounding exactly ``levels`` hold the returned dict by
        reference and fill it lazily via :meth:`HierarchyLedger.
        _first_violation`; the catalog evicts an object's entry when the
        object moves groups.
        """
        cache = self._limited_cache.get(levels)
        if cache is None:
            cache = self._limited_cache[levels] = {}
        return cache

    def __len__(self) -> int:
        return len(self._parent)

    def __repr__(self) -> str:
        return (
            f"GroupCatalog(groups={len(self._parent)}, "
            f"objects={len(self._membership)})"
        )


@dataclass(frozen=True)
class ChargeOutcome:
    """Result of attempting to charge inconsistency through the hierarchy.

    ``admitted`` is False when some level rejected the charge, in which case
    ``violated_level`` names it (``"object"``, a group name, or
    :data:`ROOT_GROUP`), and ``attempted``/``limit`` describe the failed
    comparison.  When admitted, usage at every level has been updated.
    """

    admitted: bool
    violated_level: str | None = None
    attempted: float = 0.0
    limit: float = UNBOUNDED

    @classmethod
    def ok(cls) -> "ChargeOutcome":
        return _ADMITTED


#: Shared success outcome — frozen, so every admission can return the
#: same instance instead of allocating one per operation.
_ADMITTED = ChargeOutcome(admitted=True)


class HierarchyLedger:
    """Per-transaction inconsistency accounting over a group hierarchy.

    One ledger tracks one *direction* for one transaction — import for a
    query ET, export for an update ET.  The root limit is the transaction
    limit (TIL/TEL); ``group_limits`` assigns limits to any subset of the
    catalog's groups (unlisted groups are unbounded).

    The ledger deliberately knows nothing about *object*-level limits:
    those belong to the objects themselves (OIL/OEL, possibly overridden
    per transaction) and are checked by the caller before consulting the
    ledger — exactly the bottom-up order of the paper.  The convenience
    method :meth:`check_and_charge` performs the complete object-then-
    groups-then-root sequence when given the effective object limit.
    """

    def __init__(
        self,
        catalog: GroupCatalog,
        transaction_limit: float,
        group_limits: Mapping[str, float] | None = None,
    ):
        if math.isnan(transaction_limit) or transaction_limit < 0:
            raise SpecificationError(
                f"transaction limit must be >= 0, got {transaction_limit!r}"
            )
        self._catalog = catalog
        self._limits: dict[str, float] = {ROOT_GROUP: float(transaction_limit)}
        for group, limit in (group_limits or {}).items():
            if not catalog.has_group(group):
                raise SpecificationError(
                    f"limit declared for unknown group {group!r}"
                )
            if math.isnan(limit) or limit < 0:
                raise SpecificationError(
                    f"limit for group {group!r} must be >= 0, got {limit!r}"
                )
            self._limits[group] = float(limit)
        self._usage: dict[str, float] = {name: 0.0 for name in self._limits}
        # Filtered paths shared catalog-wide among ledgers bounding the
        # same level set (see GroupCatalog.limited_paths).
        self._limited = catalog.limited_paths(frozenset(self._limits))

    # -- introspection ----------------------------------------------------

    @property
    def transaction_limit(self) -> float:
        return self._limits[ROOT_GROUP]

    @property
    def total(self) -> float:
        """Inconsistency accumulated at the transaction level so far."""
        return self._usage[ROOT_GROUP]

    def limit_of(self, level: str) -> float:
        """Declared limit at ``level`` (``inf`` when unbounded)."""
        return self._limits.get(level, UNBOUNDED)

    def usage_of(self, level: str) -> float:
        """Inconsistency charged so far at ``level``."""
        return self._usage.get(level, 0.0)

    def headroom(self) -> float:
        """Remaining budget at the transaction level."""
        return self.transaction_limit - self.total

    # -- the control mechanism --------------------------------------------

    def _limited_path(self, object_id: int) -> tuple[str, ...]:
        """The object's bounded levels, bottom-up (cached catalog-wide)."""
        levels = self._limited.get(object_id)
        if levels is None:
            limits = self._limits
            levels = tuple(
                level
                for level in self._catalog.path(object_id)
                if level in limits
            )
            self._limited[object_id] = levels
        return levels

    def _first_violation(
        self, object_id: int, amount: float
    ) -> ChargeOutcome | None:
        """The bottom-most violated level, or None if every level admits.

        This is *the* admission predicate: :meth:`try_charge` charges only
        when it returns None, and :meth:`would_admit` is exactly that test,
        so the two can never disagree.
        """
        usage = self._usage
        limits = self._limits
        for level in self._limited_path(object_id):
            attempted = usage[level] + amount
            if attempted > limits[level]:
                return ChargeOutcome(
                    admitted=False,
                    violated_level=level,
                    attempted=attempted,
                    limit=limits[level],
                )
        return None

    def try_charge(self, object_id: int, amount: float) -> ChargeOutcome:
        """Charge ``amount`` along the object's path, bottom-up.

        Implements the paper's control stage: walk the path from the
        object's group to the root; at every level with a declared limit,
        admit only if ``usage + amount <= limit``.  The walk is fused over
        the precomputed limited path — one checking pass, then a tight
        charging pass that runs only when every level admitted — so a
        rejection leaves all usage untouched, with no rollback needed (the
        transaction is about to abort, but a clean ledger keeps the
        accounting exact for diagnostics and tests).
        """
        if amount < 0:
            raise SpecificationError(
                f"inconsistency charge must be >= 0, got {amount!r}"
            )
        _perf.ledger_walks += 1
        violation = self._first_violation(object_id, amount)
        if violation is not None:
            _perf.ledger_rejections += 1
            return violation
        usage = self._usage
        for level in self._limited_path(object_id):
            usage[level] += amount
        return _ADMITTED

    def check_and_charge(
        self, object_id: int, amount: float, object_limit: float = UNBOUNDED
    ) -> ChargeOutcome:
        """Full bottom-up admission: object level first, then the tree.

        ``object_limit`` is the effective OIL/OEL for this object (the
        server-side value, or a per-transaction override).  Per the paper,
        the object check compares the *single operation's* inconsistency
        against the object limit, while group/transaction levels compare
        *accumulated* inconsistency.
        """
        if amount > object_limit:
            return ChargeOutcome(
                admitted=False,
                violated_level="object",
                attempted=amount,
                limit=object_limit,
            )
        return self.try_charge(object_id, amount)

    def check_and_charge_bounded(
        self,
        object_id: int,
        test_amount: float,
        charge_amount: float,
        object_limit: float = UNBOUNDED,
    ) -> ChargeOutcome:
        """Admit against a conservative bound, charge the observed amount.

        The snapshot fast path must guard against divergence it cannot see
        from outside the critical section (a pending uncommitted write may
        commit concurrently), so it *tests* ``test_amount`` — staleness
        plus in-flight delta — against every level, but *charges* only
        ``charge_amount``, the staleness the served read actually
        observed, exactly as a Case-1/Case-2 admission of that read would.
        Requires ``charge_amount <= test_amount``, so an admitted charge
        can never itself violate a level the test cleared.
        """
        if charge_amount < 0 or charge_amount > test_amount:
            raise SpecificationError(
                f"charge {charge_amount!r} must be within [0, {test_amount!r}]"
            )
        if test_amount > object_limit:
            return ChargeOutcome(
                admitted=False,
                violated_level="object",
                attempted=test_amount,
                limit=object_limit,
            )
        _perf.ledger_walks += 1
        violation = self._first_violation(object_id, test_amount)
        if violation is not None:
            _perf.ledger_rejections += 1
            return violation
        usage = self._usage
        for level in self._limited_path(object_id):
            usage[level] += charge_amount
        return _ADMITTED

    def would_admit(self, object_id: int, amount: float) -> bool:
        """True if :meth:`try_charge` would succeed, without charging."""
        return self._first_violation(object_id, amount) is None

    # -- state transfer (process sharding) --------------------------------

    def dump_usage(self) -> dict[str, float]:
        """The accumulated usage per bounded level, as plain data.

        Limits are static (declared at BEGIN) and the limited-path cache
        is catalog-shared, so usage is the only dynamic state a remote
        copy of this ledger needs to replay a charge exactly.
        """
        return dict(self._usage)

    def load_usage(self, usage: Mapping[str, float]) -> None:
        """Overwrite the accumulated usage with a :meth:`dump_usage` dump.

        The dump must come from a ledger declared with the same limits —
        the process-sharded engine ships the canonical usage to the shard
        worker before each operation and adopts the worker's post-state
        after it, so exactly-at-limit admission is preserved across
        processes without a cross-process lock.
        """
        self._usage.clear()
        self._usage.update(usage)

    def update_usage(self, usage: Mapping[str, float]) -> None:
        """Merge a *partial* usage dump — the changed levels only.

        The delta-sync fast path of the process-sharded engine ships only
        the levels whose accumulated usage moved since the receiver's
        last acknowledged version; untouched levels keep their current
        values (usage is monotone, levels are never removed).
        """
        self._usage.update(usage)

    def snapshot(self) -> dict[str, tuple[float, float]]:
        """``{level: (usage, limit)}`` for every level with a limit."""
        return {
            level: (self._usage[level], self._limits[level])
            for level in self._limits
        }

    def __repr__(self) -> str:
        return (
            f"HierarchyLedger(total={self.total:g}, "
            f"limit={self.transaction_limit:g}, levels={len(self._limits)})"
        )
