"""Core epsilon-serializability machinery.

The subpackage implements the paper's contribution proper, independent of
any particular concurrency control or runtime:

* :mod:`repro.core.metric` — metric-space distance functions;
* :mod:`repro.core.bounds` — TIL/TEL/OIL/OEL and the standard epsilon levels;
* :mod:`repro.core.hierarchy` — hierarchical inconsistency bounds, the
  bottom-up check-and-charge mechanism;
* :mod:`repro.core.accounting` — per-transaction import/export accounts;
* :mod:`repro.core.divergence` — the arithmetic of section 5 (how much
  inconsistency a conflicting read or write carries);
* :mod:`repro.core.aggregates` — result inconsistency for non-sum queries.
"""

from repro.core.accounting import Direction, InconsistencyAccount, ValueRange
from repro.core.aggregates import AggregateResult, aggregate_bounds, result_inconsistency
from repro.core.bounds import (
    HIGH_EPSILON,
    LOW_EPSILON,
    MEDIUM_EPSILON,
    STANDARD_LEVELS,
    UNBOUNDED,
    ZERO_EPSILON,
    EpsilonLevel,
    ObjectBounds,
    TransactionBounds,
    level_by_name,
)
from repro.core.divergence import (
    EXPORT_POLICIES,
    export_divergence,
    import_divergence,
    max_export_divergence,
    sum_export_divergence,
)
from repro.core.hierarchy import ROOT_GROUP, ChargeOutcome, GroupCatalog, HierarchyLedger
from repro.core.metric import (
    DistanceFunction,
    ScaledDistance,
    absolute_distance,
    check_metric_axioms,
    discrete_distance,
    euclidean_distance,
)

__all__ = [
    "Direction",
    "InconsistencyAccount",
    "ValueRange",
    "AggregateResult",
    "aggregate_bounds",
    "result_inconsistency",
    "UNBOUNDED",
    "TransactionBounds",
    "ObjectBounds",
    "EpsilonLevel",
    "ZERO_EPSILON",
    "LOW_EPSILON",
    "MEDIUM_EPSILON",
    "HIGH_EPSILON",
    "STANDARD_LEVELS",
    "level_by_name",
    "EXPORT_POLICIES",
    "export_divergence",
    "import_divergence",
    "max_export_divergence",
    "sum_export_divergence",
    "ROOT_GROUP",
    "ChargeOutcome",
    "GroupCatalog",
    "HierarchyLedger",
    "DistanceFunction",
    "ScaledDistance",
    "absolute_distance",
    "check_metric_axioms",
    "discrete_distance",
    "euclidean_distance",
]
