"""Per-transaction inconsistency accounting.

Each epsilon transaction carries one :class:`InconsistencyAccount` for the
direction relevant to its kind — *import* for query ETs (the ``I`` counter
of paper section 5.1), *export* for update ETs (the ``E`` counter of
section 5.2).  The account wraps a :class:`~repro.core.hierarchy.
HierarchyLedger` for the bottom-up bound checks and additionally keeps the
bookkeeping the engine and the performance study need:

* per-object accumulated inconsistency (diagnostics, tests);
* a count of *inconsistent operations admitted* — operations that viewed or
  exported a strictly positive inconsistency, the metric of the paper's
  Figure 8;
* per-object minimum/maximum values viewed, feeding the aggregate-query
  mechanism of section 5.3.2 (:mod:`repro.core.aggregates`).
"""

from __future__ import annotations

from typing import Mapping

from repro.core.bounds import UNBOUNDED
from repro.core.hierarchy import ChargeOutcome, GroupCatalog, HierarchyLedger
from repro.errors import SpecificationError

__all__ = ["Direction", "ValueRange", "InconsistencyAccount"]


class Direction:
    """The two accounting directions, used as plain string constants."""

    IMPORT = "import"
    EXPORT = "export"


class ValueRange:
    """Running min/max of the values one transaction saw for one object.

    Section 5.3.2's mechanism for non-sum aggregates needs, per object, the
    extreme values viewed across (possibly repeated) reads.
    """

    __slots__ = ("minimum", "maximum")

    def __init__(self, value: float):
        self.minimum = value
        self.maximum = value

    def observe(self, value: float) -> bool:
        """Fold ``value`` in; True when either extreme actually moved."""
        changed = False
        if value < self.minimum:
            self.minimum = value
            changed = True
        if value > self.maximum:
            self.maximum = value
            changed = True
        return changed

    @property
    def spread(self) -> float:
        return self.maximum - self.minimum

    def __repr__(self) -> str:
        return f"ValueRange(min={self.minimum:g}, max={self.maximum:g})"


class InconsistencyAccount:
    """Accumulated inconsistency for one transaction, one direction.

    The account is the single authority the concurrency control consults
    before admitting an inconsistent operation: :meth:`admit` performs the
    complete object → groups → transaction check and, on success, charges
    every level and updates the counters.
    """

    def __init__(
        self,
        direction: str,
        catalog: GroupCatalog,
        transaction_limit: float,
        group_limits: Mapping[str, float] | None = None,
    ):
        if direction not in (Direction.IMPORT, Direction.EXPORT):
            raise SpecificationError(f"unknown direction {direction!r}")
        self.direction = direction
        self._ledger = HierarchyLedger(catalog, transaction_limit, group_limits)
        self._per_object: dict[int, float] = {}
        self._ranges: dict[int, ValueRange] = {}
        self.inconsistent_operations = 0
        #: Optional mutual exclusion around the charge path.  ``None`` by
        #: default (the single-threaded engines pay nothing); the sharded
        #: engine installs one lock per transaction so concurrent shards
        #: charging the same TIL/GIL ledger keep exactly-at-limit
        #: semantics (see :meth:`install_lock`).
        self._lock = None
        # Incremental change tracking (see track_changes): off by
        # default, so the hot admission path pays one predicate check.
        self._track = False
        self._dirty_usage = False
        self._dirty_ops = False
        self._dirty_objects: set[int] = set()
        self._dirty_ranges: set[int] = set()

    def install_lock(self, lock) -> None:
        """Serialise :meth:`admit` / :meth:`admit_bounded` /
        :meth:`would_admit` / :meth:`observe_value` under ``lock``.

        The transaction and group levels of the hierarchy span shards, so
        when one transaction's operations can run on different shard
        threads concurrently, its ledger checks must be atomic.
        """
        self._lock = lock

    # -- admission ---------------------------------------------------------

    def admit(
        self, object_id: int, amount: float, object_limit: float = UNBOUNDED
    ) -> ChargeOutcome:
        """Try to admit an operation carrying inconsistency ``amount``.

        Returns the :class:`ChargeOutcome`; when admitted with a strictly
        positive amount the operation counts as an *inconsistent operation
        that succeeded* (paper Figure 8).  Zero-amount admissions are
        consistent operations and always succeed at the object level.
        """
        if self._lock is not None:
            with self._lock:
                return self._admit(object_id, amount, object_limit)
        return self._admit(object_id, amount, object_limit)

    def _admit(
        self, object_id: int, amount: float, object_limit: float
    ) -> ChargeOutcome:
        outcome = self._ledger.check_and_charge(object_id, amount, object_limit)
        if outcome.admitted:
            if amount > 0:
                self.inconsistent_operations += 1
                self._per_object[object_id] = (
                    self._per_object.get(object_id, 0.0) + amount
                )
                if self._track:
                    self._dirty_usage = True
                    self._dirty_ops = True
                    self._dirty_objects.add(object_id)
        return outcome

    def admit_bounded(
        self,
        object_id: int,
        test_amount: float,
        charge_amount: float,
        object_limit: float = UNBOUNDED,
    ) -> ChargeOutcome:
        """Admit ``test_amount`` against every level, charge ``charge_amount``.

        The snapshot read cache's admission shape (see
        :meth:`repro.core.hierarchy.HierarchyLedger.check_and_charge_bounded`):
        the conservative bound covers divergence the fast path cannot rule
        out, the charge is the staleness the read actually observed.  A
        strictly positive charge counts as an inconsistent operation that
        succeeded, same as :meth:`admit`.
        """
        if self._lock is not None:
            with self._lock:
                return self._admit_bounded(
                    object_id, test_amount, charge_amount, object_limit
                )
        return self._admit_bounded(
            object_id, test_amount, charge_amount, object_limit
        )

    def _admit_bounded(
        self,
        object_id: int,
        test_amount: float,
        charge_amount: float,
        object_limit: float,
    ) -> ChargeOutcome:
        outcome = self._ledger.check_and_charge_bounded(
            object_id, test_amount, charge_amount, object_limit
        )
        if outcome.admitted and charge_amount > 0:
            self.inconsistent_operations += 1
            self._per_object[object_id] = (
                self._per_object.get(object_id, 0.0) + charge_amount
            )
            if self._track:
                self._dirty_usage = True
                self._dirty_ops = True
                self._dirty_objects.add(object_id)
        return outcome

    def would_admit(self, object_id: int, amount: float) -> bool:
        """Non-charging preview of the group/transaction levels."""
        if self._lock is not None:
            with self._lock:
                return self._ledger.would_admit(object_id, amount)
        return self._ledger.would_admit(object_id, amount)

    # -- value observation (aggregates, section 5.3.2) ----------------------

    def observe_value(self, object_id: int, value: float) -> None:
        """Record a value viewed for ``object_id`` (min/max tracking)."""
        if self._lock is not None:
            with self._lock:
                self._observe_value(object_id, value)
            return
        self._observe_value(object_id, value)

    def _observe_value(self, object_id: int, value: float) -> None:
        existing = self._ranges.get(object_id)
        if existing is None:
            self._ranges[object_id] = ValueRange(value)
            if self._track:
                self._dirty_ranges.add(object_id)
        elif existing.observe(value) and self._track:
            self._dirty_ranges.add(object_id)

    def value_range(self, object_id: int) -> ValueRange | None:
        return self._ranges.get(object_id)

    def observed_objects(self) -> tuple[int, ...]:
        return tuple(self._ranges)

    # -- state transfer (process sharding) -----------------------------------

    def dump_state(
        self,
    ) -> tuple[
        dict[str, float], dict[int, float], int, dict[int, tuple[float, float]]
    ]:
        """All dynamic account state as picklable plain data.

        Limits, direction and the catalog are static per transaction; what
        moves between processes is the accumulated usage (per ledger
        level), the per-object charges, the inconsistent-operation count,
        and the observed value ranges (section 5.3.2 aggregates).
        """
        if self._lock is not None:
            with self._lock:
                return self._dump_state()
        return self._dump_state()

    def _dump_state(self):
        return (
            self._ledger.dump_usage(),
            dict(self._per_object),
            self.inconsistent_operations,
            {
                object_id: (r.minimum, r.maximum)
                for object_id, r in self._ranges.items()
            },
        )

    def load_state(self, state) -> None:
        """Overwrite the dynamic state with a :meth:`dump_state` dump.

        Used by the process-sharded engine to keep one canonical account
        per transaction: the parent ships the state to whichever shard
        worker runs the next operation and adopts the worker's post-state,
        so TIL/TEL and group charges accumulate across shards exactly as
        they would under one in-process ledger.
        """
        if self._lock is not None:
            with self._lock:
                self._load_state(state)
            return
        self._load_state(state)

    def _load_state(self, state) -> None:
        usage, per_object, operations, ranges = state
        self._ledger.load_usage(usage)
        self._per_object = dict(per_object)
        self.inconsistent_operations = operations
        rebuilt: dict[int, ValueRange] = {}
        for object_id, (minimum, maximum) in ranges.items():
            value_range = ValueRange(minimum)
            value_range.maximum = maximum
            rebuilt[object_id] = value_range
        self._ranges = rebuilt
        if self._track:
            self._clear_dirty()

    # -- incremental change tracking (process sharding fast path) ------------

    def track_changes(self) -> None:
        """Start recording which entries :meth:`take_delta` should ship.

        Only *locally originated* changes are tracked — admissions and
        value observations; :meth:`load_state` and :meth:`apply_delta`
        reset the dirty sets, since state arriving from the canonical
        copy must not echo back to it.  The shard workers enable this on
        their sibling accounts so each operation's reply delta costs
        O(changed entries) instead of a full state dump and diff.
        """
        self._track = True
        self._clear_dirty()

    def _clear_dirty(self) -> None:
        self._dirty_usage = False
        self._dirty_ops = False
        self._dirty_objects.clear()
        self._dirty_ranges.clear()

    def take_delta(self):
        """The changes since the last call, as an :meth:`apply_delta` delta.

        Returns None when nothing changed (the common consistent-op
        case).  Requires :meth:`track_changes`.  The usage component
        ships the whole per-level dict when any charge landed — it holds
        one entry per *bounded level*, a handful at most — while the
        per-object and range components ship only the touched entries.
        """
        if self._lock is not None:
            with self._lock:
                return self._take_delta()
        return self._take_delta()

    def _take_delta(self):
        if not (
            self._dirty_usage
            or self._dirty_ops
            or self._dirty_objects
            or self._dirty_ranges
        ):
            return None
        usage = self._ledger.dump_usage() if self._dirty_usage else {}
        per_object = {
            object_id: self._per_object[object_id]
            for object_id in self._dirty_objects
        }
        ranges = {}
        for object_id in self._dirty_ranges:
            value_range = self._ranges[object_id]
            ranges[object_id] = (value_range.minimum, value_range.maximum)
        operations = self.inconsistent_operations if self._dirty_ops else None
        self._clear_dirty()
        return (usage, per_object, operations, ranges)

    @staticmethod
    def diff_state(old, new):
        """The delta between two :meth:`dump_state` dumps, or None.

        Account state only grows (usage accumulates, per-object charges
        and observed ranges are never removed), so a delta is simply the
        entries of ``new`` that differ from ``old`` — applying it on top
        of ``old`` with :meth:`apply_delta` reproduces ``new`` exactly.
        Returns None when the dumps are identical (the common case for a
        consistent operation, which charges nothing).
        """
        old_usage, old_per_object, old_operations, old_ranges = old
        new_usage, new_per_object, new_operations, new_ranges = new
        usage = {
            level: value
            for level, value in new_usage.items()
            if old_usage.get(level) != value
        }
        per_object = {
            object_id: value
            for object_id, value in new_per_object.items()
            if old_per_object.get(object_id) != value
        }
        ranges = {
            object_id: extremes
            for object_id, extremes in new_ranges.items()
            if old_ranges.get(object_id) != extremes
        }
        operations = (
            new_operations if new_operations != old_operations else None
        )
        if not usage and not per_object and not ranges and operations is None:
            return None
        return (usage, per_object, operations, ranges)

    def apply_delta(self, delta) -> None:
        """Apply a :meth:`diff_state` delta on top of the current state.

        The inverse of shipping a full dump: only the changed ledger
        levels, per-object charges, operation count and value ranges are
        merged in, which is what crosses the shard channel on the
        process-sharded engine's delta-sync fast path.
        """
        if self._lock is not None:
            with self._lock:
                self._apply_delta(delta)
            return
        self._apply_delta(delta)

    def _apply_delta(self, delta) -> None:
        usage, per_object, operations, ranges = delta
        if usage:
            self._ledger.update_usage(usage)
        if per_object:
            self._per_object.update(per_object)
        if operations is not None:
            self.inconsistent_operations = operations
        for object_id, (minimum, maximum) in ranges.items():
            value_range = ValueRange(minimum)
            value_range.maximum = maximum
            self._ranges[object_id] = value_range
        if self._track:
            self._clear_dirty()

    # -- introspection -------------------------------------------------------

    @property
    def total(self) -> float:
        """Total inconsistency charged at the transaction level."""
        return self._ledger.total

    @property
    def transaction_limit(self) -> float:
        return self._ledger.transaction_limit

    def headroom(self) -> float:
        return self._ledger.headroom()

    def object_inconsistency(self, object_id: int) -> float:
        """Inconsistency this transaction accumulated against one object."""
        return self._per_object.get(object_id, 0.0)

    def level_snapshot(self) -> dict[str, tuple[float, float]]:
        return self._ledger.snapshot()

    def __repr__(self) -> str:
        return (
            f"InconsistencyAccount({self.direction}, total={self.total:g}, "
            f"limit={self.transaction_limit:g})"
        )
