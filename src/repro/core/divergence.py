"""Divergence computation: how much inconsistency does an operation carry?

This module holds the pure arithmetic of paper section 5 — given the values
involved in a conflicting operation, compute the magnitude ``d`` of the
inconsistency it would introduce.  The admission decision itself (comparing
``d`` against the bound hierarchy) lives in
:class:`repro.core.accounting.InconsistencyAccount`; keeping the two apart
makes each independently testable.

Import side (section 5.1)
    A query read that is admitted despite a conflict sees the object's
    *present* value instead of its *proper* value — the value the read
    would have returned had no concurrent updates run, i.e. the newest
    committed write older than the query's timestamp.
    ``d = distance(present, proper)``.

Export side (section 5.2)
    An update write with new value ``N`` exports inconsistency to every
    concurrent query that already read the object.  For each such reader
    with stored proper value ``P_i``, the divergence is
    ``distance(N, P_i)``; the paper charges the **maximum** over readers
    (because each query reads an object at most once), whereas Wu et al.
    charge the **sum**.  Both policies are provided; the paper's maximum is
    the default, and the benchmark suite includes an ablation comparing
    them.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.metric import DistanceFunction, absolute_distance
from repro.errors import SpecificationError

__all__ = [
    "import_divergence",
    "max_export_divergence",
    "sum_export_divergence",
    "export_divergence",
    "EXPORT_POLICIES",
]


def import_divergence(
    present: float,
    proper: float,
    distance: DistanceFunction = absolute_distance,
) -> float:
    """Inconsistency a query read would import (section 5.1).

    ``present`` is the object's current value (possibly uncommitted);
    ``proper`` is the value the read would have seen without concurrent
    updates.  With no concurrent updates the two coincide and the
    divergence is zero.
    """
    return distance(present, proper)


def max_export_divergence(
    new_value: float,
    reader_proper_values: Iterable[float],
    distance: DistanceFunction = absolute_distance,
) -> float:
    """The paper's export rule: maximum divergence over concurrent readers.

    Appropriate when each query reads an object at most once, so the worst
    single reader bounds the export.  Returns 0.0 when there are no
    concurrent readers (the write exports nothing).
    """
    return max(
        (distance(new_value, proper) for proper in reader_proper_values),
        default=0.0,
    )


def sum_export_divergence(
    new_value: float,
    reader_proper_values: Iterable[float],
    distance: DistanceFunction = absolute_distance,
) -> float:
    """Wu et al.'s export rule: sum of divergences over concurrent readers.

    More conservative than the maximum — it never under-counts when queries
    may read an object repeatedly, at the price of over-estimating (and
    therefore rejecting more) when they do not.
    """
    return sum(distance(new_value, proper) for proper in reader_proper_values)


#: Named export policies, for configuration and the ablation benchmark.
EXPORT_POLICIES = {
    "max": max_export_divergence,
    "sum": sum_export_divergence,
}


def export_divergence(
    new_value: float,
    reader_proper_values: Iterable[float],
    distance: DistanceFunction = absolute_distance,
    policy: str = "max",
) -> float:
    """Dispatch to a named export policy (``"max"`` or ``"sum"``)."""
    try:
        rule = EXPORT_POLICIES[policy]
    except KeyError:
        known = ", ".join(sorted(EXPORT_POLICIES))
        raise SpecificationError(
            f"unknown export policy {policy!r}; known policies: {known}"
        ) from None
    return rule(new_value, reader_proper_values, distance)
