"""Metric-space distance functions for epsilon serializability.

ESR is defined over a database state space that forms a *metric space*
(paper section 2): a distance function must exist over every pair of states,
be symmetric, and satisfy the triangle inequality.  The triangle inequality
is what lets the system accumulate inconsistency incrementally — without it,
the distance over the whole history would have to be recomputed on every
change.

This module provides:

* the :class:`DistanceFunction` protocol used by the rest of the library;
* the concrete distances used by the paper's prototype (absolute numeric
  difference, because object values are bank-balance-like integers);
* a few additional, still-metric distances useful for other state spaces
  (scaled, discrete, and Euclidean over vectors);
* :func:`check_metric_axioms`, a sampling validator used by the test suite's
  property tests to assert that any user-supplied distance is actually a
  metric.
"""

from __future__ import annotations

import itertools
import math
from functools import lru_cache
from typing import Callable, Iterable, Protocol, Sequence, runtime_checkable

from repro.errors import MetricSpaceError

__all__ = [
    "DistanceFunction",
    "absolute_distance",
    "ScaledDistance",
    "discrete_distance",
    "euclidean_distance",
    "distance_by_name",
    "check_metric_axioms",
]


@runtime_checkable
class DistanceFunction(Protocol):
    """A distance over database states.

    Implementations must behave as a metric: non-negative, zero only for
    identical states, symmetric, and triangle-inequality compliant.  The
    engine treats the returned value as the *magnitude of inconsistency*
    introduced by viewing one state in place of another.
    """

    def __call__(self, u: float, v: float) -> float:  # pragma: no cover
        ...


def absolute_distance(u: float, v: float) -> float:
    """Absolute numeric difference, the paper's distance function.

    The prototype's objects hold dollar-amount-like integers (1000–9999), so
    the natural metric is ``|u - v|``: the amount by which a stale or
    uncommitted reading differs from the proper value.
    """
    return abs(u - v)


class ScaledDistance:
    """Absolute difference scaled by a positive weight.

    Scaling a metric by a positive constant preserves all metric axioms.
    This is useful when different object groups measure inconsistency in
    different units (e.g. cents vs. dollars) but share one bound budget —
    the weight converts object-local units into budget units.
    """

    def __init__(self, weight: float):
        if weight <= 0 or not math.isfinite(weight):
            raise MetricSpaceError(
                f"scale weight must be positive and finite, got {weight!r}"
            )
        self.weight = float(weight)

    def __call__(self, u: float, v: float) -> float:
        return self.weight * abs(u - v)

    def __repr__(self) -> str:
        return f"ScaledDistance(weight={self.weight!r})"


def discrete_distance(u: float, v: float) -> float:
    """The discrete metric: 0 for equal states, 1 otherwise.

    Under this metric an inconsistency bound of ``k`` reads as "at most
    ``k`` operations may view any divergence at all", which models
    count-based staleness tolerances.
    """
    return 0.0 if u == v else 1.0


def euclidean_distance(u: Sequence[float], v: Sequence[float]) -> float:
    """Euclidean distance for vector-valued states.

    Provided for state spaces where an object is a tuple (e.g. a seat map
    summarised as counts per fare class).  Both vectors must have the same
    length.
    """
    if len(u) != len(v):
        raise MetricSpaceError(
            f"vector states must have equal length, got {len(u)} and {len(v)}"
        )
    return math.sqrt(sum((a - b) ** 2 for a, b in zip(u, v)))


#: Scalar distances addressable by spec string (see :func:`distance_by_name`).
_NAMED_DISTANCES: dict[str, DistanceFunction] = {
    "absolute": absolute_distance,
    "discrete": discrete_distance,
}


@lru_cache(maxsize=128)
def distance_by_name(spec: str) -> DistanceFunction:
    """Resolve a distance *spec string* to a callable.

    Configuration objects that cross process boundaries (the parallel
    experiment runner pickles :class:`~repro.sim.system.SimulationConfig`
    into worker processes) carry the distance as a plain string instead
    of a callable; workers resolve it here.  Accepted specs: the names in
    ``_NAMED_DISTANCES`` (``"absolute"``, ``"discrete"``) and
    ``"scaled:<weight>"`` for a :class:`ScaledDistance`.

    Resolution is memoised per process (specs are immutable and the
    returned callables stateless), so each worker resolves any given
    spec once no matter how many configs it validates and builds.
    """
    if spec.startswith("scaled:"):
        try:
            weight = float(spec.split(":", 1)[1])
        except ValueError:
            raise MetricSpaceError(f"bad scaled-distance spec {spec!r}") from None
        return ScaledDistance(weight)
    try:
        return _NAMED_DISTANCES[spec]
    except KeyError:
        raise MetricSpaceError(
            f"unknown distance spec {spec!r}; choose from "
            f"{sorted(_NAMED_DISTANCES)} or 'scaled:<weight>'"
        ) from None


def check_metric_axioms(
    distance: Callable[[object, object], float],
    samples: Iterable[object],
    tolerance: float = 1e-9,
) -> None:
    """Validate metric axioms on a finite sample of states.

    Checks, for every pair/triple drawn from ``samples``:

    * non-negativity and identity: ``d(u, u) == 0`` and ``d(u, v) >= 0``;
    * symmetry: ``d(u, v) == d(v, u)``;
    * triangle inequality: ``d(u, w) <= d(u, v) + d(v, w)``.

    Raises :class:`MetricSpaceError` naming the first violated axiom.  This
    cannot *prove* a function is a metric, but as a property-test oracle over
    generated samples it catches practically every non-metric.
    """
    points = list(samples)
    for u in points:
        if abs(distance(u, u)) > tolerance:
            raise MetricSpaceError(f"identity violated: d({u!r}, {u!r}) != 0")
    for u, v in itertools.combinations(points, 2):
        duv = distance(u, v)
        dvu = distance(v, u)
        if duv < -tolerance:
            raise MetricSpaceError(f"negativity: d({u!r}, {v!r}) = {duv}")
        if abs(duv - dvu) > tolerance:
            raise MetricSpaceError(
                f"symmetry violated: d({u!r}, {v!r}) = {duv} but "
                f"d({v!r}, {u!r}) = {dvu}"
            )
    for u, v, w in itertools.permutations(points, 3):
        if distance(u, w) > distance(u, v) + distance(v, w) + tolerance:
            raise MetricSpaceError(
                f"triangle inequality violated for ({u!r}, {v!r}, {w!r})"
            )
