"""Result inconsistency for aggregate queries (paper section 5.3.2).

The per-read charging mechanism of section 5.1 is exact when the query
computes the *sum* of the values it reads: each read's divergence adds
linearly into the result, so bounding the sum of divergences bounds the
result's error.  For other aggregates — *average*, *minimum*, *maximum* —
the error of the result depends on the extreme values the reads might have
seen, so the paper instead:

1. tracks, per object, the minimum and maximum values the transaction
   viewed (done by :class:`repro.core.accounting.InconsistencyAccount`);
2. at the aggregate point, computes the result over all-minimum and over
   all-maximum inputs; the *result inconsistency* is half the spread
   between those two results;
3. compares the result inconsistency against the TIL, deciding only then
   whether the aggregate may be produced.

This module implements step 2 for the standard aggregates and exposes
:func:`result_inconsistency` for step 3.  Object-level limits are
unaffected — they are enforced at read time exactly as for sum queries.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from repro.core.accounting import ValueRange
from repro.errors import EvaluationError, SpecificationError

__all__ = [
    "AggregateResult",
    "aggregate_bounds",
    "result_inconsistency",
    "AGGREGATES",
]


class AggregateResult:
    """Envelope of an aggregate computed over uncertain inputs.

    ``low`` and ``high`` bracket the values the aggregate could have taken
    had every read seen its extreme observations; ``midpoint`` is the
    natural point estimate and ``inconsistency`` is half the spread — the
    quantity section 5.3.2 compares against the TIL.
    """

    __slots__ = ("name", "low", "high")

    def __init__(self, name: str, low: float, high: float):
        if high < low:
            raise EvaluationError(
                f"aggregate {name!r} produced an inverted envelope "
                f"[{low}, {high}]"
            )
        self.name = name
        self.low = low
        self.high = high

    @property
    def midpoint(self) -> float:
        return (self.low + self.high) / 2.0

    @property
    def inconsistency(self) -> float:
        return (self.high - self.low) / 2.0

    def within(self, limit: float) -> bool:
        """True when the result inconsistency fits within ``limit``."""
        return self.inconsistency <= limit

    def __repr__(self) -> str:
        return (
            f"AggregateResult({self.name!r}, low={self.low:g}, "
            f"high={self.high:g}, inconsistency={self.inconsistency:g})"
        )


def _sum_bounds(mins: Sequence[float], maxs: Sequence[float]) -> tuple[float, float]:
    return sum(mins), sum(maxs)


def _avg_bounds(mins: Sequence[float], maxs: Sequence[float]) -> tuple[float, float]:
    n = len(mins)
    return sum(mins) / n, sum(maxs) / n


def _min_bounds(mins: Sequence[float], maxs: Sequence[float]) -> tuple[float, float]:
    # The true minimum over the actual values lies between the minimum of
    # the per-object minima and the minimum of the per-object maxima.
    return min(mins), min(maxs)


def _max_bounds(mins: Sequence[float], maxs: Sequence[float]) -> tuple[float, float]:
    return max(mins), max(maxs)


AGGREGATES: dict[str, Callable[[Sequence[float], Sequence[float]], tuple[float, float]]]
AGGREGATES = {
    "sum": _sum_bounds,
    "avg": _avg_bounds,
    "min": _min_bounds,
    "max": _max_bounds,
}


def aggregate_bounds(
    name: str, ranges: Mapping[int, ValueRange] | Sequence[ValueRange]
) -> AggregateResult:
    """Compute the envelope of aggregate ``name`` over observed ranges.

    ``ranges`` maps object ids to the :class:`ValueRange` each accumulated
    during the transaction (a bare sequence of ranges is also accepted).
    Raises :class:`SpecificationError` for an unknown aggregate and
    :class:`EvaluationError` when no objects were observed.
    """
    try:
        rule = AGGREGATES[name.lower()]
    except KeyError:
        known = ", ".join(sorted(AGGREGATES))
        raise SpecificationError(
            f"unknown aggregate {name!r}; known aggregates: {known}"
        ) from None
    values = list(ranges.values()) if isinstance(ranges, Mapping) else list(ranges)
    if not values:
        raise EvaluationError(f"aggregate {name!r} over zero observed objects")
    mins = [r.minimum for r in values]
    maxs = [r.maximum for r in values]
    low, high = rule(mins, maxs)
    return AggregateResult(name.lower(), low, high)


def result_inconsistency(
    name: str, ranges: Mapping[int, ValueRange] | Sequence[ValueRange]
) -> float:
    """Shorthand for ``aggregate_bounds(...).inconsistency``."""
    return aggregate_bounds(name, ranges).inconsistency
