"""Replicated ESR (the paper's future work, implemented).

A simulated primary/replica system where replica lag is the imported
inconsistency and ESR bounds govern both asynchronous propagation (the
export side) and local-vs-primary reads (the import side).
"""

from repro.replication.store import ReplicatedStore
from repro.replication.system import (
    ReplicationConfig,
    ReplicationResult,
    run_replication,
)

__all__ = [
    "ReplicatedStore",
    "ReplicationConfig",
    "ReplicationResult",
    "run_replication",
]
