"""Replicated storage with bounded divergence.

The paper's conclusion points at ESR's original motivation (Pu & Leff's
asynchronous replica control): replicas may lag the primary, and the lag
— measured with the same metric-space distance as everything else in
ESR — is treated as importable inconsistency:

* the **primary** holds the committed truth; every update commits there;
* each **replica** holds a possibly-stale copy, refreshed by
  asynchronous propagation;
* the per-object, per-replica **divergence** is
  ``distance(primary value, replica value)``;
* a *replica epsilon* bounds how far any replica may drift on any
  object: an update that would push a replica past it must first wait
  for that replica to catch up (the synchronous fallback of
  asynchronous replication);
* a query at a replica may read locally when the object's divergence
  fits its budget, otherwise it must fetch from the primary.

:class:`ReplicatedStore` is the bookkeeping core, runtime-agnostic; the
simulation around it lives in :mod:`repro.replication.system`.
"""

from __future__ import annotations

from repro.core.metric import DistanceFunction, absolute_distance
from repro.errors import SpecificationError, UnknownObjectError

__all__ = ["ReplicatedStore"]


class ReplicatedStore:
    """One primary copy plus ``n_replicas`` lagging copies."""

    def __init__(
        self,
        n_replicas: int,
        distance: DistanceFunction = absolute_distance,
    ):
        if n_replicas < 1:
            raise SpecificationError(
                f"need at least one replica, got {n_replicas}"
            )
        self.n_replicas = n_replicas
        self.distance = distance
        self._primary: dict[int, float] = {}
        self._replicas: list[dict[int, float]] = [
            {} for _ in range(n_replicas)
        ]

    # -- population -----------------------------------------------------------

    def create_object(self, object_id: int, value: float) -> None:
        if object_id in self._primary:
            raise SpecificationError(f"object {object_id} already exists")
        self._primary[object_id] = float(value)
        for replica in self._replicas:
            replica[object_id] = float(value)

    def __len__(self) -> int:
        return len(self._primary)

    def object_ids(self):
        return iter(self._primary)

    def _check(self, object_id: int, replica: int | None = None) -> None:
        if object_id not in self._primary:
            raise UnknownObjectError(f"no object with id {object_id}")
        if replica is not None and not 0 <= replica < self.n_replicas:
            raise SpecificationError(
                f"replica index {replica} out of range 0..{self.n_replicas - 1}"
            )

    # -- reads ---------------------------------------------------------------------

    def primary_value(self, object_id: int) -> float:
        self._check(object_id)
        return self._primary[object_id]

    def replica_value(self, object_id: int, replica: int) -> float:
        self._check(object_id, replica)
        return self._replicas[replica][object_id]

    def divergence(self, object_id: int, replica: int) -> float:
        """How far ``replica`` lags the primary on ``object_id``."""
        self._check(object_id, replica)
        return self.distance(
            self._primary[object_id], self._replicas[replica][object_id]
        )

    def max_divergence(self, object_id: int) -> float:
        """Worst lag across replicas (the export view of an update)."""
        self._check(object_id)
        return max(
            self.divergence(object_id, replica)
            for replica in range(self.n_replicas)
        )

    def total_divergence(self, replica: int) -> float:
        """Total staleness of one replica across all objects."""
        self._check(next(iter(self._primary)), replica)
        return sum(
            self.divergence(object_id, replica)
            for object_id in self._primary
        )

    # -- writes and propagation -----------------------------------------------------

    def would_diverge_to(self, object_id: int, new_value: float) -> float:
        """Worst replica divergence if the primary committed ``new_value``.

        Used for admission: an update must wait for propagation when this
        exceeds the replica epsilon.
        """
        self._check(object_id)
        return max(
            self.distance(new_value, replica[object_id])
            for replica in self._replicas
        )

    def commit_primary(self, object_id: int, value: float) -> None:
        """Apply a committed update at the primary only."""
        self._check(object_id)
        self._primary[object_id] = float(value)

    def propagate(self, object_id: int, replica: int) -> float:
        """Refresh one object at one replica; returns the value installed."""
        self._check(object_id, replica)
        value = self._primary[object_id]
        self._replicas[replica][object_id] = value
        return value

    def propagate_all(self, replica: int) -> None:
        """Bring a whole replica fully up to date (recovery / catch-up)."""
        self._check(next(iter(self._primary)), replica)
        self._replicas[replica].update(self._primary)

    def __repr__(self) -> str:
        return (
            f"ReplicatedStore(objects={len(self._primary)}, "
            f"replicas={self.n_replicas})"
        )
