"""Simulated replicated ESR system (the paper's future-work section).

One primary site accepts all updates; ``n_replicas`` read-only replica
sites serve queries.  Propagation is asynchronous with a fixed delay —
the source of inconsistency in this system — and ESR governs both sides:

* **export side** — an update whose commit would push any replica's
  divergence on the written object past ``replica_epsilon`` must first
  synchronously refresh the lagging replicas (paying one remote round
  trip each).  A large epsilon means cheap, fully asynchronous updates;
  epsilon zero degenerates to synchronous (eager) replication.
* **import side** — a query at a replica reads each object locally when
  the object's current divergence fits within both its per-object limit
  (OIL) and its remaining transaction budget (TIL); otherwise it fetches
  the value from the primary at remote latency.  Queries never abort:
  bounds trade *latency* for *freshness*.

Measured per run: update/query throughput, forced synchronous
propagations, the fraction of reads served locally, and the total
staleness actually viewed — the throughput/accuracy trade-off the paper
predicts for replicated ESR.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.bounds import UNBOUNDED
from repro.errors import ExperimentError
from repro.replication.store import ReplicatedStore
from repro.sim.des import Engine, Timeout

__all__ = ["ReplicationConfig", "ReplicationResult", "run_replication"]


@dataclass(frozen=True)
class ReplicationConfig:
    """One replicated-system experiment configuration."""

    n_replicas: int = 3
    n_objects: int = 100
    initial_value: float = 5_000.0
    #: Concurrent update clients at the primary / query clients per replica.
    update_clients: int = 2
    query_clients_per_replica: int = 2
    #: Reads per query transaction.
    query_reads: int = 10
    #: Mean absolute change per update (the workload's w).
    mean_write_change: float = 2_000.0
    #: The divergence bound per object per replica (export side).
    replica_epsilon: float = UNBOUNDED
    #: Per-query inconsistency budget and per-read cap (import side).
    til: float = UNBOUNDED
    oil: float = UNBOUNDED
    #: Latencies (ms): local replica read, remote primary round trip,
    #: asynchronous propagation delay, update service time.
    local_latency: float = 1.0
    remote_latency: float = 20.0
    propagation_delay: float = 50.0
    update_interval: float = 10.0
    duration_ms: float = 20_000.0
    #: Mirror primary commits through a real ESR engine partitioned
    #: across this many shards (0 disables the mirror).  Each replica is
    #: modelled as an immortal engine query whose reads pin the run-start
    #: view, so every primary commit is a late write whose exported
    #: divergence the engine's hierarchical ledger meters — the same
    #: charge path, sharded or not, which equivalence tests compare.
    engine_shards: int = 0
    seed: int = 1

    def __post_init__(self) -> None:
        if self.n_replicas < 1 or self.n_objects < 1:
            raise ExperimentError("need at least one replica and one object")
        if self.duration_ms <= 0:
            raise ExperimentError("duration_ms must be positive")
        if self.engine_shards < 0:
            raise ExperimentError("engine_shards must be >= 0")


@dataclass(frozen=True)
class ReplicationResult:
    config: ReplicationConfig
    updates_committed: int
    queries_completed: int
    forced_syncs: int
    local_reads: int
    remote_reads: int
    staleness_viewed: float
    #: Exported divergence metered by the engine mirror (0.0 when
    #: ``engine_shards`` is 0): the sum over primary commits of the
    #: divergence each one exports to the replicas' pinned views.
    engine_exported: float = 0.0

    @property
    def update_throughput(self) -> float:
        return self.updates_committed * 1000.0 / self.config.duration_ms

    @property
    def query_throughput(self) -> float:
        return self.queries_completed * 1000.0 / self.config.duration_ms

    @property
    def local_read_fraction(self) -> float:
        total = self.local_reads + self.remote_reads
        return self.local_reads / total if total else 0.0

    @property
    def mean_staleness_per_query(self) -> float:
        if self.queries_completed == 0:
            return 0.0
        return self.staleness_viewed / self.queries_completed

    def __repr__(self) -> str:
        return (
            f"ReplicationResult(updates/s={self.update_throughput:.1f}, "
            f"queries/s={self.query_throughput:.1f}, "
            f"local={self.local_read_fraction:.0%}, "
            f"staleness/query={self.mean_staleness_per_query:.0f})"
        )


class _Tally:
    """Mutable counters shared by the simulation processes."""

    def __init__(self) -> None:
        self.updates = 0
        self.queries = 0
        self.forced_syncs = 0
        self.local_reads = 0
        self.remote_reads = 0
        self.staleness = 0.0
        self.engine_exported = 0.0


def _build_engine_mirror(config: ReplicationConfig):
    """An ESR engine metering the divergence primary commits export.

    The mirror database carries the same objects as the store.  Each
    replica becomes one immortal query transaction, timestamped *after*
    every update the run will issue, that reads every object once — so a
    later primary commit is a late write (ESR case 3) with respect to
    those reads, and the engine charges the commit's export account with
    the divergence it exports to the replicas' pinned run-start views.
    All limits are unbounded: the mirror meters, it never vetoes.
    """
    from repro.core.bounds import TransactionBounds
    from repro.engine.api import create_engine
    from repro.engine.database import Database
    from repro.engine.timestamps import Timestamp

    database = Database()
    for index in range(config.n_objects):
        database.create_object(index, value=config.initial_value)
    manager = create_engine(
        database, "esr", shards=max(1, config.engine_shards)
    )
    for replica in range(config.n_replicas):
        txn = manager.begin(
            "query",
            TransactionBounds(import_limit=UNBOUNDED),
            timestamp=Timestamp(float("inf"), site=replica + 1),
        )
        for index in range(config.n_objects):
            manager.read(txn, index)
    return manager


def _update_client(
    engine: Engine,
    store: ReplicatedStore,
    config: ReplicationConfig,
    rng: random.Random,
    tally: _Tally,
    ledger=None,
):
    """Posts updates at the primary, forcing syncs when epsilon binds."""
    objects = list(store.object_ids())
    while True:
        yield Timeout(config.update_interval)
        object_id = rng.choice(objects)
        delta = rng.uniform(0.5, 1.5) * config.mean_write_change
        if rng.random() < 0.5:
            delta = -delta
        new_value = store.primary_value(object_id) + delta
        # Export control: any replica the commit would push past the
        # divergence bound gets the new value written through
        # synchronously (one remote round trip each) at commit time, so
        # the bound holds at every instant.  Epsilon zero is therefore
        # fully eager replication; epsilon infinity is fully asynchronous.
        write_through = [
            replica
            for replica in range(store.n_replicas)
            if store.distance(new_value, store.replica_value(object_id, replica))
            > config.replica_epsilon
        ]
        for _ in write_through:
            yield Timeout(config.remote_latency)
        store.commit_primary(object_id, new_value)
        if ledger is not None:
            from repro.core.bounds import TransactionBounds

            txn = ledger.begin(
                "update", TransactionBounds(export_limit=UNBOUNDED)
            )
            ledger.write(txn, object_id, new_value)
            ledger.commit(txn)
            tally.engine_exported += txn.exported
        for replica in write_through:
            store.propagate(object_id, replica)
            tally.forced_syncs += 1
        tally.updates += 1
        # Asynchronous propagation to the remaining replicas.
        for replica in range(store.n_replicas):
            if replica not in write_through:
                engine.call_later(
                    config.propagation_delay,
                    lambda o=object_id, r=replica: store.propagate(o, r),
                )


def _query_client(
    engine: Engine,
    store: ReplicatedStore,
    config: ReplicationConfig,
    replica: int,
    rng: random.Random,
    tally: _Tally,
):
    """Runs read-only transactions against one replica."""
    objects = list(store.object_ids())
    while True:
        budget = config.til
        viewed = 0.0
        targets = rng.sample(objects, min(config.query_reads, len(objects)))
        for object_id in targets:
            divergence = store.divergence(object_id, replica)
            if divergence <= config.oil and divergence <= budget:
                yield Timeout(config.local_latency)
                tally.local_reads += 1
                budget -= divergence
                viewed += divergence
            else:
                # Too stale to import: fetch the truth from the primary.
                yield Timeout(config.remote_latency)
                tally.remote_reads += 1
        tally.queries += 1
        tally.staleness += viewed


def run_replication(config: ReplicationConfig) -> ReplicationResult:
    """Run one replicated-system configuration to completion."""
    engine = Engine()
    store = ReplicatedStore(config.n_replicas)
    rng = random.Random(config.seed)
    for index in range(config.n_objects):
        store.create_object(index, config.initial_value)
    tally = _Tally()
    ledger = (
        _build_engine_mirror(config) if config.engine_shards > 0 else None
    )
    for worker in range(config.update_clients):
        engine.spawn(
            _update_client(
                engine,
                store,
                config,
                random.Random(rng.random()),
                tally,
                ledger=ledger,
            )
        )
    for replica in range(config.n_replicas):
        for worker in range(config.query_clients_per_replica):
            engine.spawn(
                _query_client(
                    engine,
                    store,
                    config,
                    replica,
                    random.Random(rng.random()),
                    tally,
                )
            )
    engine.run(until=config.duration_ms)
    return ReplicationResult(
        config=config,
        updates_committed=tally.updates,
        queries_completed=tally.queries,
        forced_syncs=tally.forced_syncs,
        local_reads=tally.local_reads,
        remote_reads=tally.remote_reads,
        staleness_viewed=tally.staleness,
        engine_exported=tally.engine_exported,
    )
