"""Command-line interface: ``python -m repro`` or the ``repro`` script.

Subcommands::

    repro table1                          print the bound-levels table
    repro figure fig7 [--fast] [...]      regenerate one paper figure
    repro report [--out EXPERIMENTS.md]   regenerate all figures to markdown
    repro sweep --mpl 4 --til 1e5 ...     one simulation run, metrics printed
    repro sweep ... --profile             same, under cProfile + perf counters
    repro bench-hotpath [--update]        hot-path micro suite vs. baseline
    repro bench-net [--quick] [--update]  serving-layer load benchmark
    repro gen-workload out.trace ...      write a client trace file
    repro serve [--async] [--port N] ...  start the networked prototype
    repro run-trace out.trace --port N    replay a trace against a server
"""

from __future__ import annotations

import argparse
import math
import os
import sys
import time
from pathlib import Path

from repro.core.bounds import level_by_name
from repro.engine.api import PROTOCOLS
from repro.experiments.config import FAST_PLAN, PAPER_PLAN, MeasurementPlan, bounds_table
from repro.experiments.figures import ALL_FIGURES
from repro.experiments.report import format_table, render_figure
from repro.sim.system import SimulationConfig, run_simulation
from repro.workload.generator import WorkloadGenerator, build_database
from repro.workload.spec import PAPER_WORKLOAD
from repro.workload.trace import read_trace, write_trace

__all__ = ["main"]


def _plan_from_args(args: argparse.Namespace) -> MeasurementPlan:
    plan = FAST_PLAN if args.fast else PAPER_PLAN
    overrides = {}
    if args.duration is not None:
        overrides["duration_ms"] = args.duration
        if plan.warmup_ms >= args.duration:
            overrides["warmup_ms"] = args.duration / 10.0
    if args.reps is not None:
        overrides["repetitions"] = args.reps
    if getattr(args, "workers", None) is not None:
        overrides["max_workers"] = args.workers
    if getattr(args, "cell_timeout", None) is not None:
        overrides["cell_timeout_s"] = args.cell_timeout
    if overrides:
        from dataclasses import replace

        plan = replace(plan, **overrides)
    return plan


def _cell_progress_printer():
    """A per-cell progress callback printing one line as each cell lands."""

    def show(cell_result, done: int, total: int) -> None:
        config = cell_result.cell.config
        if cell_result.ok:
            status = f"{cell_result.wall_s:6.2f}s"
        else:
            status = f"FAILED ({cell_result.error})"
        retried = "  (retried)" if cell_result.retried else ""
        print(
            f"  [{done}/{total}] mpl={config.mpl} til={config.til:g} "
            f"tel={config.tel:g} seed={cell_result.cell.seed}  "
            f"{status}{retried}",
            flush=True,
        )

    return show


def _cmd_table1(args: argparse.Namespace) -> int:
    rows = [(r["level"], f"{r['TIL']:,.0f}", f"{r['TEL']:,.0f}") for r in bounds_table()]
    print(format_table(["level", "TIL", "TEL"], rows))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    if args.name not in ALL_FIGURES:
        print(
            f"unknown figure {args.name!r}; choose from "
            f"{', '.join(sorted(ALL_FIGURES))}",
            file=sys.stderr,
        )
        return 2
    plan = _plan_from_args(args)
    started = time.time()
    progress = None if args.quiet else _cell_progress_printer()
    figure = ALL_FIGURES[args.name](plan, progress=progress)
    print(render_figure(figure, chart=not args.no_chart))
    print(f"\n({time.time() - started:.1f}s wall, {plan.max_workers} worker(s))")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.reportgen import generate_experiments_markdown

    plan = _plan_from_args(args)
    cell_progress = None if args.quiet else _cell_progress_printer()
    text = generate_experiments_markdown(
        plan, progress=print, cell_progress=cell_progress
    )
    Path(args.out).write_text(text, encoding="utf-8")
    print(f"wrote {args.out}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.level is not None:
        level = level_by_name(args.level)
        til, tel = level.til, level.tel
    else:
        til, tel = args.til, args.tel
    duration = args.duration or 30_000.0
    warmup = args.warmup if args.warmup < duration else duration / 10.0
    config = SimulationConfig(
        mpl=args.mpl,
        til=til,
        tel=tel,
        oil=args.oil,
        oel=args.oel,
        protocol=args.protocol,
        shards=args.shards,
        duration_ms=duration,
        warmup_ms=warmup,
        seed=args.seed,
    )
    if args.profile:
        from repro.perf import counters, profile_call

        counters.reset()
        result, report = profile_call(
            lambda: run_simulation(config), top_n=args.profile_top
        )
        print(report)
        print("perf counters:")
        print(counters.format_table())
        print()
    else:
        result = run_simulation(config)
    m = result.metrics
    rows = [
        ("throughput (tx/s)", f"{result.throughput:.2f}"),
        ("commits (query/update)", f"{m.commits_query}/{m.commits_update}"),
        ("aborts", str(m.aborts)),
        ("aborts by reason", str(dict(m.aborts_by_reason))),
        ("inconsistent ops", str(m.inconsistent_operations)),
        ("by case", str(dict(m.inconsistent_by_case))),
        ("total operations", str(m.total_operations)),
        ("ops per commit", f"{m.operations_per_commit:.2f}"),
        ("waits", str(m.waits)),
        ("server utilisation", f"{result.server_utilisation:.2f}"),
    ]
    print(format_table(["metric", "value"], rows))
    return 0


def _cmd_bench_hotpath(args: argparse.Namespace) -> int:
    from repro.experiments import hotpath

    repeats = 1 if args.quick else args.repeats
    smoke_repeats = 1 if args.quick else 3
    print(f"running hot-path suite (best of {repeats})...")
    report = hotpath.run_suite(
        repeats=repeats, smoke_repeats=smoke_repeats, progress=print
    )
    baseline = hotpath.load_baseline(args.baseline)
    print()
    if baseline is not None:
        print(f"vs. baseline {args.baseline}:")
        print(hotpath.format_comparison(baseline, report))
    else:
        print(hotpath.format_report(report))
    if args.rpc_guard:
        if baseline is None:
            print(f"\nrpc guard skipped: no baseline at {args.baseline}")
        else:
            problem = hotpath.check_rpc_regression(
                baseline, report, factor=args.rpc_factor
            )
            if problem:
                print(f"\nprocshard_rpc regression guard FAILED:\n  {problem}")
                return 1
            print(
                f"\nrpc guard passed (bytes/op within {args.rpc_factor:g}x "
                "of baseline)"
            )
    if args.quick:
        return 0
    if args.update or baseline is None:
        hotpath.write_baseline(report, args.baseline)
        print(f"\nwrote baseline {args.baseline}")
    return 0


def _cmd_bench_net(args: argparse.Namespace) -> int:
    from repro.experiments import netbench

    if args.rate is not None and args.mode != "open":
        print("error: --rate only makes sense with --mode open", file=sys.stderr)
        return 2
    if args.quick:
        config = netbench.QUICK_CONFIG
    else:
        config = netbench.LoadConfig(
            connections=args.connections,
            depth=args.depth,
            duration_s=args.duration,
            objects=args.objects,
            reads_per_txn=args.reads,
            mode=args.mode,
            rate=args.rate,
            codec=args.codec,
        )
    servers = (
        tuple(args.server) if args.server else netbench.DEFAULT_SERVERS
    )
    print(
        f"running bench-net: {config.connections} connections × depth "
        f"{config.depth}, {config.mode} loop, {config.duration_s:g}s per "
        "server..."
    )
    report = netbench.run_suite(config, servers=servers, progress=print)
    print()
    print(netbench.format_report(report))
    baseline = netbench.load_baseline(args.baseline)
    if baseline is not None:
        print(f"\nvs. baseline {args.baseline}:")
        print(netbench.format_comparison(baseline, report))
    if args.p99_guard:
        if baseline is None:
            print(f"\np99 guard skipped: no baseline at {args.baseline}")
        else:
            problems = netbench.check_p99_regression(
                baseline, report, factor=args.p99_factor
            )
            if problems:
                print("\np99 regression guard FAILED:")
                for problem in problems:
                    print(f"  {problem}")
                return 1
            print(
                f"\np99 guard passed (within {args.p99_factor:g}x of baseline)"
            )
    if args.quick:
        return 0
    if args.update or baseline is None:
        netbench.write_baseline(report, args.baseline)
        print(f"\nwrote baseline {args.baseline}")
    return 0


def _cmd_gen_workload(args: argparse.Namespace) -> int:
    generator = WorkloadGenerator(PAPER_WORKLOAD, seed=args.seed)
    programs = generator.generate_mix(args.count, args.til, args.tel)
    header = (
        f"generated workload: count={args.count} til={args.til:g} "
        f"tel={args.tel:g} seed={args.seed}"
    )
    written = write_trace(args.out, programs, header=header)
    print(f"wrote {written} transactions to {args.out}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.engine.database import Database
    from repro.net.server import WAIT_TIMEOUT_SECONDS, TransactionServer

    if args.startup:
        database = Database.from_startup_file(args.startup)
    else:
        database = build_database(PAPER_WORKLOAD, seed=args.seed)
    wait_timeout = (
        args.wait_timeout if args.wait_timeout is not None else WAIT_TIMEOUT_SECONDS
    )
    if args.use_async:
        import asyncio

        from repro.net.aioserver import AsyncTransactionServer, uvloop_available

        use_uvloop = args.uvloop and uvloop_available()
        if args.uvloop and not use_uvloop:
            print("uvloop not installed; continuing on asyncio", file=sys.stderr)
        loop_name = "uvloop" if use_uvloop else "asyncio"

        async def serve_async() -> None:
            server = AsyncTransactionServer(
                database,
                protocol=args.protocol,
                wait_timeout=wait_timeout,
                snapshot_cache=args.snapshot_cache,
                shards=args.shards,
                processes=args.process_shards,
                record_history=args.record_history,
            )
            await server.start(args.host, args.port)
            _report_process_mode(server.manager)
            print(
                f"serving {len(database)} objects on "
                f"{args.host}:{server.port} ({loop_name})"
            )
            try:
                await asyncio.Event().wait()  # until interrupted
            finally:
                _save_history(args, server.history)
                await server.aclose()

        try:
            if use_uvloop:
                import uvloop

                with asyncio.Runner(
                    loop_factory=uvloop.new_event_loop
                ) as runner:
                    runner.run(serve_async())
            else:
                asyncio.run(serve_async())
        except KeyboardInterrupt:
            print("\nshutting down")
        return 0
    server = TransactionServer(
        database,
        (args.host, args.port),
        protocol=args.protocol,
        wait_timeout=wait_timeout,
        snapshot_cache=args.snapshot_cache,
        shards=args.shards,
        processes=args.process_shards,
        record_history=args.record_history,
    )
    _report_process_mode(server.manager)
    print(f"serving {len(database)} objects on {args.host}:{server.port}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        _save_history(args, server.history)
        server.server_close()
    return 0


def _save_history(args: argparse.Namespace, history_of) -> None:
    """Write the server's recorded history on shutdown, if asked."""
    if not args.history_out:
        return
    if not args.record_history:
        print(
            "--history-out needs --record-history; nothing recorded",
            file=sys.stderr,
        )
        return
    log = history_of()
    log.save(args.history_out)
    print(f"wrote {len(log)} history events to {args.history_out}")


def _report_process_mode(manager: object) -> None:
    """Tell the operator whether --process-shards actually forked."""
    degraded = getattr(manager, "process_degraded", None)
    if degraded is not None:
        print(f"process sharding degraded to threads ({degraded})")
    elif hasattr(manager, "worker_pids"):
        pids = ", ".join(str(pid) for pid in manager.worker_pids())
        print(f"process sharding active (worker pids: {pids})")


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.check import check_log, render_report
    from repro.engine.history import HistoryLog

    serializability = {"auto": None, "on": True, "off": False}[
        args.serializability
    ]
    results = []
    for path in args.histories:
        log = HistoryLog.load(path)
        results.append(
            check_log(
                log,
                name=os.path.basename(path),
                serializability=serializability,
            )
        )
    report = render_report(
        results, generated=f"repro check {' '.join(args.histories)}"
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fp:
            fp.write(report)
        print(f"wrote report to {args.out}")
    else:
        print(report, end="")
    return 0 if all(result.ok for result in results) else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.check import ChaosConfig, render_report, run_chaos

    config = ChaosConfig(
        clients=args.clients,
        transactions_per_client=args.transactions,
        objects=args.objects,
        protocol=args.protocol,
        server="async" if args.use_async else "threaded",
        shards=args.shards,
        # A kill run needs real worker processes even on a small host.
        processes=(
            "force"
            if args.process_shards and args.kill_workers
            else args.process_shards
        ),
        kill_workers=args.kill_workers,
        disconnect_rate=args.disconnect_rate,
        delay_rate=args.delay_rate,
        seed=args.seed,
    )
    report = run_chaos(config)
    print(
        f"chaos: {report.commits} commits, {report.aborts} aborts, "
        f"{report.disconnects} disconnects, {report.kills} worker kills, "
        f"{report.delayed_frames} delayed frames, {report.bursts} bursts "
        f"over {len(report.history)} recorded events"
    )
    for error in report.errors:
        print(f"harness error: {error}", file=sys.stderr)
    rendered = render_report(
        [report.check],
        title="Chaos History Conformance",
        generated=f"repro chaos --seed {args.seed}",
    )
    if args.history_out:
        report.history.save(args.history_out)
        print(f"wrote history to {args.history_out}")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fp:
            fp.write(rendered)
        print(f"wrote report to {args.out}")
    else:
        print(rendered, end="")
    return 0 if report.ok else 1


def _cmd_run_trace(args: argparse.Namespace) -> int:
    from repro.net.client import RemoteConnection

    programs = read_trace(args.trace)
    started = time.time()
    commits = 0
    restarts = 0
    with RemoteConnection(args.host, args.port, site=args.site) as connection:
        for program in programs:
            result, attempts = connection.run_program(program)
            commits += 1
            restarts += attempts
            for line in result.outputs:
                print(line)
    elapsed = time.time() - started
    print(
        f"committed {commits} transactions ({restarts} restarts) "
        f"in {elapsed:.2f}s — {commits / elapsed:.1f} tx/s"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Epsilon serializability with hierarchical inconsistency "
        "bounds (ICDE 1993 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print the section 7 bound-levels table")

    fig = sub.add_parser("figure", help="regenerate one paper figure")
    fig.add_argument("name", help="fig7 .. fig13")
    fig.add_argument("--fast", action="store_true", help="short measurement plan")
    fig.add_argument("--duration", type=float, help="simulated ms per run")
    fig.add_argument("--reps", type=int, help="repetitions per point")
    fig.add_argument("--no-chart", action="store_true", help="table only")
    fig.add_argument(
        "--workers",
        type=int,
        default=os.cpu_count(),
        help="worker processes for repetition cells (default: all cores)",
    )
    fig.add_argument(
        "--cell-timeout",
        type=float,
        help="per-cell wall-clock timeout in seconds (default: none)",
    )
    fig.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress lines"
    )

    rep = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    rep.add_argument("--out", default="EXPERIMENTS.md")
    rep.add_argument("--fast", action="store_true")
    rep.add_argument("--duration", type=float)
    rep.add_argument("--reps", type=int)
    rep.add_argument(
        "--workers",
        type=int,
        default=os.cpu_count(),
        help="worker processes for repetition cells (default: all cores)",
    )
    rep.add_argument(
        "--cell-timeout",
        type=float,
        help="per-cell wall-clock timeout in seconds (default: none)",
    )
    rep.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress lines"
    )

    sweep = sub.add_parser("sweep", help="run one simulation configuration")
    sweep.add_argument("--mpl", type=int, default=4)
    sweep.add_argument("--level", help="zero|low|medium|high (sets TIL/TEL)")
    sweep.add_argument("--til", type=float, default=0.0)
    sweep.add_argument("--tel", type=float, default=0.0)
    sweep.add_argument("--oil", type=float, default=math.inf)
    sweep.add_argument("--oel", type=float, default=math.inf)
    sweep.add_argument(
        "--protocol",
        choices=PROTOCOLS,
        default="esr",
    )
    sweep.add_argument(
        "--shards",
        type=int,
        default=1,
        help="partition the engine across N per-shard critical sections",
    )
    sweep.add_argument("--duration", type=float)
    sweep.add_argument("--warmup", type=float, default=3_000.0)
    sweep.add_argument("--seed", type=int, default=1)
    sweep.add_argument(
        "--profile",
        action="store_true",
        help="run under cProfile; print top entries and perf counters",
    )
    sweep.add_argument(
        "--profile-top",
        type=int,
        default=25,
        help="cumulative-time entries to print with --profile (default 25)",
    )

    bench = sub.add_parser(
        "bench-hotpath",
        help="run the hot-path micro suite and compare against the baseline",
    )
    bench.add_argument(
        "--baseline",
        default="BENCH_hotpath.json",
        help="baseline file to compare with and/or update (default: "
        "BENCH_hotpath.json)",
    )
    bench.add_argument(
        "--update",
        action="store_true",
        help="write the measured numbers back as the new baseline",
    )
    bench.add_argument(
        "--repeats",
        type=int,
        default=5,
        help="best-of-N repetitions per micro workload (default 5)",
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="single repetition of everything — execution smoke test only, "
        "timings meaningless; never writes the baseline",
    )
    bench.add_argument(
        "--rpc-guard",
        action="store_true",
        help="exit 1 if the procshard fast channel's bytes/op regressed "
        "beyond --rpc-factor of the baseline (deterministic metric, "
        "safe to gate CI on)",
    )
    bench.add_argument(
        "--rpc-factor",
        type=float,
        default=1.5,
        help="allowed bytes/op regression factor for --rpc-guard "
        "(default 1.5)",
    )

    gen = sub.add_parser("gen-workload", help="write a client trace file")
    gen.add_argument("out")
    gen.add_argument("--count", type=int, default=100)
    gen.add_argument("--til", type=float, default=100_000.0)
    gen.add_argument("--tel", type=float, default=10_000.0)
    gen.add_argument("--seed", type=int, default=1)

    serve = sub.add_parser("serve", help="start the networked prototype")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7453)
    serve.add_argument("--protocol", choices=PROTOCOLS, default="esr")
    serve.add_argument("--startup", help="database startup file")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--shards",
        type=int,
        default=1,
        help="partition the engine across N per-shard critical sections "
        "(per-shard locks replace the global engine mutex)",
    )
    serve.add_argument(
        "--process-shards",
        action="store_true",
        help="run each shard's engine in its own worker process (needs "
        "--shards > 1); degrades to threads on one core or without fork",
    )
    serve.add_argument(
        "--async",
        dest="use_async",
        action="store_true",
        help="serve with the asyncio pipelined server instead of the "
        "thread-per-connection server",
    )
    serve.add_argument(
        "--wait-timeout",
        type=float,
        default=None,
        help="seconds a strict-ordering wait may park before the server "
        "aborts the transaction (default 30)",
    )
    serve.add_argument(
        "--snapshot-cache",
        action="store_true",
        help="serve bounded-staleness query reads from the epsilon "
        "snapshot cache, outside the engine critical section (ESR only)",
    )
    serve.add_argument(
        "--uvloop",
        action="store_true",
        help="run the asyncio server on uvloop when installed (the "
        "'speed' optional extra); silently falls back to asyncio",
    )
    serve.add_argument(
        "--record-history",
        action="store_true",
        help="record a full event history (begin/read/write/wait/reject/"
        "commit/abort) the offline checker can replay",
    )
    serve.add_argument(
        "--history-out",
        default=None,
        help="write the recorded history to this file on shutdown "
        "(needs --record-history)",
    )

    check = sub.add_parser(
        "check",
        help="replay recorded histories through the conformance checker",
    )
    check.add_argument(
        "histories", nargs="+", help="history files (repro serve --history-out)"
    )
    check.add_argument(
        "--serializability",
        choices=("auto", "on", "off"),
        default="auto",
        help="epsilon-0 serialization-graph check: auto runs it exactly "
        "when every transaction declared zero bounds (default auto)",
    )
    check.add_argument(
        "--out", default=None, help="write the markdown report here"
    )

    chaos = sub.add_parser(
        "chaos",
        help="run a fault-injecting schedule against a live server and "
        "check the recorded history",
    )
    chaos.add_argument("--clients", type=int, default=4)
    chaos.add_argument(
        "--transactions",
        type=int,
        default=25,
        help="transactions per client (default 25)",
    )
    chaos.add_argument("--objects", type=int, default=32)
    chaos.add_argument("--protocol", choices=PROTOCOLS, default="esr")
    chaos.add_argument(
        "--async",
        dest="use_async",
        action="store_true",
        help="target the asyncio pipelined server (default: threaded)",
    )
    chaos.add_argument("--shards", type=int, default=1)
    chaos.add_argument(
        "--process-shards",
        action="store_true",
        help="run shards in worker processes (enables --kill-workers)",
    )
    chaos.add_argument(
        "--kill-workers",
        type=int,
        default=0,
        help="SIGKILL this many shard workers mid-run (process shards)",
    )
    chaos.add_argument("--disconnect-rate", type=float, default=0.05)
    chaos.add_argument("--delay-rate", type=float, default=0.1)
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--history-out", default=None, help="save the recorded history here"
    )
    chaos.add_argument(
        "--out", default=None, help="write the markdown report here"
    )

    bench_net = sub.add_parser(
        "bench-net",
        help="benchmark the serving layer (threaded vs. async) over localhost",
    )
    bench_net.add_argument("--connections", type=int, default=32)
    bench_net.add_argument(
        "--depth", type=int, default=8, help="pipelined sessions per connection"
    )
    bench_net.add_argument(
        "--duration", type=float, default=5.0, help="seconds per server"
    )
    bench_net.add_argument("--objects", type=int, default=256)
    bench_net.add_argument(
        "--reads", type=int, default=1, help="reads per benchmark transaction"
    )
    bench_net.add_argument("--mode", choices=("closed", "open"), default="closed")
    bench_net.add_argument(
        "--rate",
        type=float,
        default=None,
        help="open-loop offered transactions/s (requires --mode open)",
    )
    bench_net.add_argument(
        "--codec",
        choices=("json", "binary-1"),
        default="json",
        help="wire codec for the load generator (suite rows may override)",
    )
    bench_net.add_argument(
        "--p99-guard",
        action="store_true",
        help="fail (exit 1) when any closed-loop row's p99 exceeds "
        "--p99-factor times the baseline's p99",
    )
    bench_net.add_argument(
        "--p99-factor",
        type=float,
        default=3.0,
        help="p99 regression tolerance for --p99-guard (default 3.0)",
    )
    from repro.experiments.netbench import SUITE_ROWS

    bench_net.add_argument(
        "--server",
        action="append",
        choices=tuple(SUITE_ROWS),
        help="suite row(s) to run (default: all rows)",
    )
    bench_net.add_argument(
        "--baseline",
        default="BENCH_net.json",
        help="baseline file to compare with and/or update (default: "
        "BENCH_net.json)",
    )
    bench_net.add_argument(
        "--update",
        action="store_true",
        help="write the measured numbers back as the new baseline",
    )
    bench_net.add_argument(
        "--quick",
        action="store_true",
        help="tiny config — execution smoke test only, timings meaningless; "
        "never writes the baseline",
    )

    run = sub.add_parser("run-trace", help="replay a trace against a server")
    run.add_argument("trace")
    run.add_argument("--host", default="127.0.0.1")
    run.add_argument("--port", type=int, default=7453)
    run.add_argument("--site", type=int, default=1)

    return parser


_COMMANDS = {
    "table1": _cmd_table1,
    "figure": _cmd_figure,
    "report": _cmd_report,
    "sweep": _cmd_sweep,
    "bench-hotpath": _cmd_bench_hotpath,
    "bench-net": _cmd_bench_net,
    "gen-workload": _cmd_gen_workload,
    "serve": _cmd_serve,
    "check": _cmd_check,
    "chaos": _cmd_chaos,
    "run-trace": _cmd_run_trace,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
