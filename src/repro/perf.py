"""Process-wide performance observability: counters and profiling.

The simulation's cost per simulated operation is pure-Python constant
factors — event dispatch in the DES kernel, the bottom-up admission walk
through the hierarchy ledger, conflict-case bookkeeping in the engine.
This module makes those costs *visible* without making them *worse*:

* :data:`counters` — a single process-wide :class:`PerfCounters` the hot
  paths increment.  The counters are plain slotted integer attributes
  (one ``+=`` each, no locks, no callbacks); the DES kernel batches its
  updates per ``run()`` call so the dispatch loop itself pays nothing.
* :func:`profile_call` — wrap any callable in :mod:`cProfile` and print
  the top-N cumulative entries; backs the CLI's ``--profile`` flag.

The counters are cumulative for the life of the process (a worker in the
parallel runner, the CLI process, a test).  Call :meth:`PerfCounters.
reset` to start a measurement window, then :meth:`PerfCounters.snapshot`
to read it.  Everything here is stdlib-only and import-cycle-free: the
kernel (:mod:`repro.sim.des`), the ledger (:mod:`repro.core.hierarchy`)
and the engine metrics all import this module, never the other way
around.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from typing import Callable, TypeVar

__all__ = ["PerfCounters", "counters", "profile_call", "format_profile"]

T = TypeVar("T")


class PerfCounters:
    """Lightweight tallies of hot-path work done by this process.

    ============================ ==============================================
    ``events_dispatched``        callbacks the DES kernel executed
    ``heap_pushes``              events that went through the ``heapq`` slow
                                 path (positive delays)
    ``heap_pushes_avoided``      zero-delay events dispatched through the FIFO
                                 ready-queue fast path instead of the heap
    ``ledger_walks``             bottom-up admission walks
                                 (:meth:`HierarchyLedger.try_charge` calls)
    ``ledger_rejections``        walks that ended in a bound violation
    ``conflict_cases``           inconsistent operations admitted, tallied by
                                 ESR relaxation case (``late-write``, …)
    ``net_requests_batched``     requests the asyncio server executed from a
                                 multi-request batch (amortised dispatch)
    ``net_batches_drained``      dispatch-loop ticks that drained the queue
    ``net_flushes_coalesced``    connection flushes that wrote more than one
                                 buffered response in a single syscall
    ``net_backpressure_stalls``  reads paused because a connection hit its
                                 in-flight window
    ``cache_hits``               query reads served from the snapshot cache
                                 (no engine critical section)
    ``cache_misses``             cache consultations that found no published
                                 entry for the object
    ``cache_fallbacks``          cache consultations that found an entry but
                                 downgraded to the engine path (bounds did
                                 not fit, read-your-writes, ineligible txn)
    ``cache_divergence_charged`` total staleness (a float) cache-served
                                 reads charged to their ledgers
    ``shard_failovers``          process-sharded shards rebuilt in-process
                                 after their worker died
    ``rpc_ops``                  operations shipped over shard channels
                                 (reads/writes/completes, both rpc modes)
    ``rpc_round_trips``          framed round-trips on shard channels; the
                                 fast path coalesces concurrent ops, so
                                 ``rpc_batched_ops / rpc_round_trips`` is
                                 the mean batch occupancy
    ``rpc_batched_ops``          operations that rode a batch frame (every
                                 fast-path op; zero in legacy mode)
    ``rpc_bytes_sent``           parent→worker shard-channel bytes
    ``rpc_bytes_received``       worker→parent shard-channel bytes
    ``rpc_sync_full``            op frames that carried a full account dump
                                 (first shard touch, or resync fallback)
    ``rpc_sync_delta``           op frames that carried only the account
                                 entries changed since the worker's last
                                 acknowledged version
    ``rpc_sync_none``            op frames that carried no account state at
                                 all (worker already at the current version)
    ``rpc_resyncs``              version-skew round-trips: the worker held a
                                 different version than the parent assumed
                                 and the op was re-sent with a full dump
    ``net_codec_binary_frames_encoded``
                                 frames the binary codec encoded (fixed
                                 layouts and JSON-payload frames alike)
    ``net_codec_binary_frames_decoded``
                                 frames the binary codec decoded
    ``net_codec_negotiation_downgrades``
                                 ``hello`` negotiations that asked for a
                                 non-JSON codec but settled on JSON
    ``net_codec_json_fallbacks`` binary-codec messages that did not fit a
                                 fixed layout and rode a JSON-payload frame
    ============================ ==============================================
    """

    __slots__ = (
        "events_dispatched",
        "heap_pushes",
        "heap_pushes_avoided",
        "ledger_walks",
        "ledger_rejections",
        "conflict_cases",
        "net_requests_batched",
        "net_batches_drained",
        "net_flushes_coalesced",
        "net_backpressure_stalls",
        "cache_hits",
        "cache_misses",
        "cache_fallbacks",
        "cache_divergence_charged",
        "shard_failovers",
        "rpc_ops",
        "rpc_round_trips",
        "rpc_batched_ops",
        "rpc_bytes_sent",
        "rpc_bytes_received",
        "rpc_sync_full",
        "rpc_sync_delta",
        "rpc_sync_none",
        "rpc_resyncs",
        "net_codec_binary_frames_encoded",
        "net_codec_binary_frames_decoded",
        "net_codec_negotiation_downgrades",
        "net_codec_json_fallbacks",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero every counter (start of a measurement window)."""
        self.events_dispatched = 0
        self.heap_pushes = 0
        self.heap_pushes_avoided = 0
        self.ledger_walks = 0
        self.ledger_rejections = 0
        self.conflict_cases: dict[str, int] = {}
        self.net_requests_batched = 0
        self.net_batches_drained = 0
        self.net_flushes_coalesced = 0
        self.net_backpressure_stalls = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_fallbacks = 0
        self.cache_divergence_charged = 0.0
        self.shard_failovers = 0
        self.rpc_ops = 0
        self.rpc_round_trips = 0
        self.rpc_batched_ops = 0
        self.rpc_bytes_sent = 0
        self.rpc_bytes_received = 0
        self.rpc_sync_full = 0
        self.rpc_sync_delta = 0
        self.rpc_sync_none = 0
        self.rpc_resyncs = 0
        self.net_codec_binary_frames_encoded = 0
        self.net_codec_binary_frames_decoded = 0
        self.net_codec_negotiation_downgrades = 0
        self.net_codec_json_fallbacks = 0

    def record_conflict_case(self, case: str) -> None:
        tally = self.conflict_cases
        tally[case] = tally.get(case, 0) + 1

    def snapshot(self) -> dict[str, object]:
        """A plain-dict copy of every counter."""
        return {
            "events_dispatched": self.events_dispatched,
            "heap_pushes": self.heap_pushes,
            "heap_pushes_avoided": self.heap_pushes_avoided,
            "ledger_walks": self.ledger_walks,
            "ledger_rejections": self.ledger_rejections,
            "conflict_cases": dict(self.conflict_cases),
            "net_requests_batched": self.net_requests_batched,
            "net_batches_drained": self.net_batches_drained,
            "net_flushes_coalesced": self.net_flushes_coalesced,
            "net_backpressure_stalls": self.net_backpressure_stalls,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_fallbacks": self.cache_fallbacks,
            "cache_divergence_charged": self.cache_divergence_charged,
            "shard_failovers": self.shard_failovers,
            "rpc_ops": self.rpc_ops,
            "rpc_round_trips": self.rpc_round_trips,
            "rpc_batched_ops": self.rpc_batched_ops,
            "rpc_bytes_sent": self.rpc_bytes_sent,
            "rpc_bytes_received": self.rpc_bytes_received,
            "rpc_sync_full": self.rpc_sync_full,
            "rpc_sync_delta": self.rpc_sync_delta,
            "rpc_sync_none": self.rpc_sync_none,
            "rpc_resyncs": self.rpc_resyncs,
            "net_codec_binary_frames_encoded": self.net_codec_binary_frames_encoded,
            "net_codec_binary_frames_decoded": self.net_codec_binary_frames_decoded,
            "net_codec_negotiation_downgrades": (
                self.net_codec_negotiation_downgrades
            ),
            "net_codec_json_fallbacks": self.net_codec_json_fallbacks,
        }

    def format_table(self) -> str:
        """A two-column text table of the current counter values."""
        rows = [
            ("events dispatched", f"{self.events_dispatched:,}"),
            ("heap pushes", f"{self.heap_pushes:,}"),
            ("heap pushes avoided (fast path)", f"{self.heap_pushes_avoided:,}"),
            ("ledger walks", f"{self.ledger_walks:,}"),
            ("ledger rejections", f"{self.ledger_rejections:,}"),
        ]
        if self.net_requests_batched or self.net_batches_drained:
            rows += [
                ("net requests batched", f"{self.net_requests_batched:,}"),
                ("net batches drained", f"{self.net_batches_drained:,}"),
                ("net flushes coalesced", f"{self.net_flushes_coalesced:,}"),
                (
                    "net backpressure stalls",
                    f"{self.net_backpressure_stalls:,}",
                ),
            ]
        if (
            self.net_codec_binary_frames_encoded
            or self.net_codec_binary_frames_decoded
            or self.net_codec_negotiation_downgrades
        ):
            rows += [
                (
                    "binary frames encoded",
                    f"{self.net_codec_binary_frames_encoded:,}",
                ),
                (
                    "binary frames decoded",
                    f"{self.net_codec_binary_frames_decoded:,}",
                ),
                (
                    "codec negotiation downgrades",
                    f"{self.net_codec_negotiation_downgrades:,}",
                ),
                (
                    "binary JSON fallbacks",
                    f"{self.net_codec_json_fallbacks:,}",
                ),
            ]
        if self.rpc_ops or self.rpc_round_trips:
            occupancy = (
                self.rpc_batched_ops / self.rpc_round_trips
                if self.rpc_round_trips
                else 0.0
            )
            rows += [
                ("shard rpc ops", f"{self.rpc_ops:,}"),
                ("shard rpc round trips", f"{self.rpc_round_trips:,}"),
                ("shard rpc batch occupancy", f"{occupancy:.2f}"),
                ("shard rpc bytes sent", f"{self.rpc_bytes_sent:,}"),
                ("shard rpc bytes received", f"{self.rpc_bytes_received:,}"),
                (
                    "shard rpc sync full/delta/none",
                    f"{self.rpc_sync_full:,}/{self.rpc_sync_delta:,}"
                    f"/{self.rpc_sync_none:,}",
                ),
                ("shard rpc resyncs", f"{self.rpc_resyncs:,}"),
            ]
        if self.cache_hits or self.cache_misses or self.cache_fallbacks:
            rows += [
                ("cache hits (snapshot reads)", f"{self.cache_hits:,}"),
                ("cache misses (unpublished)", f"{self.cache_misses:,}"),
                ("cache fallbacks (engine path)", f"{self.cache_fallbacks:,}"),
                (
                    "cache divergence charged",
                    f"{self.cache_divergence_charged:g}",
                ),
            ]
        for case in sorted(self.conflict_cases):
            rows.append((f"conflict case {case}", f"{self.conflict_cases[case]:,}"))
        width = max(len(label) for label, _ in rows)
        return "\n".join(f"{label:<{width}}  {value}" for label, value in rows)

    def __repr__(self) -> str:
        return (
            f"PerfCounters(dispatched={self.events_dispatched}, "
            f"fastpath={self.heap_pushes_avoided}, walks={self.ledger_walks})"
        )


#: The single process-wide counter set the hot paths increment.
counters = PerfCounters()


def format_profile(profiler: cProfile.Profile, top_n: int = 25) -> str:
    """The top ``top_n`` cumulative-time entries of a finished profile."""
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.strip_dirs().sort_stats("cumulative").print_stats(top_n)
    return buffer.getvalue()


def profile_call(fn: Callable[[], T], top_n: int = 25) -> tuple[T, str]:
    """Run ``fn`` under :mod:`cProfile`.

    Returns ``(result, report)`` where ``report`` is the top-``top_n``
    cumulative entries as text.  Exceptions from ``fn`` propagate.
    """
    profiler = cProfile.Profile()
    result = profiler.runcall(fn)
    return result, format_profile(profiler, top_n)
