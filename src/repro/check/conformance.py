"""Replay a recorded history against a fresh bound hierarchy.

The checker rebuilds, per transaction, exactly the accounting the engine
performed live — an :class:`~repro.core.accounting.InconsistencyAccount`
in each relevant direction, over a :class:`~repro.core.hierarchy.
GroupCatalog` reconstructed from the history header — and re-admits
every recorded charge bottom-up (object limit, then every group on the
object's path, then the transaction limit).  Exactly-at-limit semantics
are inherited from the ledger itself: the same ``usage + amount >
limit`` comparison runs here as ran live, so a conformant history
replays with zero violations and a corrupted one (say an over-limit
charge spliced into the log) is flagged at the first level it breaks.

Two invariant families are checked:

* **per-event admission** — each read/write event's ``inconsistency``
  must be admissible by the fresh hierarchy at the moment it is
  replayed, under the event's effective object limit (the BEGIN
  override when declared, the header's server-side OIL/OEL otherwise);
* **commit totals** — a commit event's ``imported``/``exported`` must
  equal the replayed account totals *bit-exactly* (same additions, same
  order — see the package docstring), so even a one-ULP discrepancy
  between the engine's ledger and its reported totals is caught.

Lifecycle anomalies (events for unknown transactions, double
completion, operations after completion, charged reads on transactions
with no import account) are violations too: they indicate the engine
recorded an impossible execution.  Softer oddities — unknown abort
reasons, rejection-reason aborts with no paired reject event,
transactions left unfinished — are reported as warnings.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.accounting import Direction, InconsistencyAccount
from repro.core.bounds import UNBOUNDED
from repro.core.hierarchy import GroupCatalog
from repro.engine.history import (
    EVENT_ABORT,
    EVENT_BEGIN,
    EVENT_COMMIT,
    EVENT_READ,
    EVENT_REJECT,
    EVENT_WAIT,
    EVENT_WRITE,
    HistoryEvent,
    HistoryLog,
)
from repro.engine.reasons import ALL_REASONS, REJECTION_REASONS
from repro.errors import SpecificationError

__all__ = ["Violation", "CheckResult", "check_log"]


@dataclass(frozen=True)
class Violation:
    """One conformance failure found during replay."""

    #: Machine-readable kind: ``over-limit-charge``,
    #: ``commit-total-mismatch``, ``orphan-event``,
    #: ``double-completion``, ``uncharged-account``,
    #: ``serialization-cycle``.
    kind: str
    #: Transaction the violating event belongs to (0 for global).
    txn: int
    #: Index of the violating event in the log (-1 for global).
    index: int
    message: str
    #: Hierarchy level that broke, for admission failures.
    level: str | None = None


@dataclass
class CheckResult:
    """Everything :func:`check_log` learned about one history."""

    name: str
    events: int = 0
    transactions: int = 0
    committed: int = 0
    aborted: int = 0
    violations: list[Violation] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    #: CPU seconds spent checking (``time.process_time`` delta).
    cpu: float = 0.0
    #: ``True``/``False`` when the epsilon-0 serializability check ran,
    #: ``None`` when the history carries bounds and the check is moot.
    serializable: bool | None = None
    #: The offending cycle (transaction ids) when not serializable.
    cycle: tuple[int, ...] | None = None

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def label(self) -> str:
        """Short result string for the report table."""
        if self.violations:
            n = len(self.violations)
            return f"{n} violation{'s' if n != 1 else ''}"
        if self.serializable is False:
            return "Not serializable"
        if self.serializable is True:
            return "Conformant, serializable"
        return "Conformant"


class _TxnReplay:
    """Fresh accounts and lifecycle state for one replayed transaction."""

    __slots__ = (
        "kind",
        "import_account",
        "export_account",
        "object_limits",
        "finished",
        "rejected",
    )

    def __init__(self, event: HistoryEvent, catalog: GroupCatalog):
        self.kind = event.txn_kind or "update"
        self.object_limits: dict[int, float] = dict(event.object_limits or {})
        self.finished: str | None = None
        self.rejected = False
        group_limits = event.group_limits
        import_limit = (
            event.import_limit if event.import_limit is not None else 0.0
        )
        export_limit = (
            event.export_limit if event.export_limit is not None else 0.0
        )
        if self.kind == "query":
            self.import_account: InconsistencyAccount | None = (
                InconsistencyAccount(
                    Direction.IMPORT, catalog, import_limit, group_limits
                )
            )
            self.export_account: InconsistencyAccount | None = None
        else:
            self.export_account = InconsistencyAccount(
                Direction.EXPORT, catalog, export_limit, group_limits
            )
            # Mirrors TransactionState: an update ET only imports when it
            # opted into inconsistent reads with a non-zero import limit.
            self.import_account = (
                InconsistencyAccount(
                    Direction.IMPORT, catalog, import_limit, group_limits
                )
                if event.allow_inconsistent_reads and import_limit > 0
                else None
            )

    @property
    def imported(self) -> float:
        return self.import_account.total if self.import_account else 0.0

    @property
    def exported(self) -> float:
        return self.export_account.total if self.export_account else 0.0


def _rebuild_catalog(header: Mapping[str, Any]) -> GroupCatalog:
    """Reconstruct the group catalog the history ran against."""
    catalog = GroupCatalog()
    groups = dict(header.get("groups") or {})
    # Parents may serialise after their children; insert in passes.
    remaining = dict(groups)
    while remaining:
        progressed = False
        for name in list(remaining):
            parent = remaining[name]
            if parent is None or catalog.has_group(parent):
                catalog.add_group(name, parent)
                del remaining[name]
                progressed = True
        if not progressed:
            raise SpecificationError(
                f"history header declares unreachable groups: "
                f"{sorted(remaining)}"
            )
    for object_id, group in (header.get("assignment") or {}).items():
        catalog.assign(int(object_id), group)
    return catalog


def _object_bounds(
    header: Mapping[str, Any],
) -> dict[int, tuple[float, float]]:
    out: dict[int, tuple[float, float]] = {}
    for object_id, pair in (header.get("object_bounds") or {}).items():
        out[int(object_id)] = (float(pair[0]), float(pair[1]))
    return out


def check_log(
    log: HistoryLog,
    name: str = "history",
    serializability: bool | None = None,
) -> CheckResult:
    """Replay ``log`` and report every conformance violation.

    ``serializability`` forces the epsilon-0 DSG check on (``True``) or
    off (``False``); the default ``None`` runs it exactly when every
    transaction declared zero bounds (the history claims strictness).
    Event order is replay order; histories recorded across concurrent
    client connections interleave in recording order, which per-object
    matches decision order for the in-process engines (events are
    appended inside the owning critical section).
    """
    started = time.process_time()
    result = CheckResult(name=name, events=len(log.events))
    catalog = _rebuild_catalog(log.header)
    bounds = _object_bounds(log.header)
    txns: dict[int, _TxnReplay] = {}
    strict = True

    def violate(
        kind: str,
        event: HistoryEvent,
        index: int,
        message: str,
        level: str | None = None,
    ) -> None:
        result.violations.append(
            Violation(kind, event.txn, index, message, level)
        )

    for index, event in enumerate(log.events):
        if event.kind == EVENT_BEGIN:
            if event.txn in txns and txns[event.txn].finished is None:
                violate(
                    "orphan-event",
                    event,
                    index,
                    f"transaction {event.txn} begun twice",
                )
                continue
            txns[event.txn] = _TxnReplay(event, catalog)
            result.transactions += 1
            if (
                (event.import_limit or 0.0) != 0.0
                or (event.export_limit or 0.0) != 0.0
                or event.group_limits
                or event.object_limits
            ):
                strict = False
            continue

        replay = txns.get(event.txn)
        if replay is None:
            violate(
                "orphan-event",
                event,
                index,
                f"{event.kind} event for unknown transaction {event.txn}",
            )
            continue

        if event.kind in (EVENT_READ, EVENT_WRITE):
            if replay.finished is not None:
                violate(
                    "orphan-event",
                    event,
                    index,
                    f"{event.kind} on {replay.finished} "
                    f"transaction {event.txn}",
                )
                continue
            amount = event.inconsistency
            if amount == 0.0:
                continue
            is_read = event.kind == EVENT_READ
            account = (
                replay.import_account if is_read else replay.export_account
            )
            if account is None:
                violate(
                    "uncharged-account",
                    event,
                    index,
                    f"transaction {event.txn} has no "
                    f"{'import' if is_read else 'export'} account but "
                    f"event {index} charges {amount:g}",
                )
                continue
            object_id = event.object_id
            server = bounds.get(
                object_id if object_id is not None else -1,
                (UNBOUNDED, UNBOUNDED),
            )
            server_limit = server[0] if is_read else server[1]
            effective = replay.object_limits.get(
                object_id if object_id is not None else -1, server_limit
            )
            outcome = account.admit(
                object_id if object_id is not None else -1,
                amount,
                effective,
            )
            if not outcome.admitted:
                violate(
                    "over-limit-charge",
                    event,
                    index,
                    f"event {index} ({event.kind} of object {object_id} "
                    f"by transaction {event.txn}) charges {amount:g}, "
                    f"which the {outcome.violated_level!r} level rejects "
                    f"(attempted {outcome.attempted:g} > "
                    f"limit {outcome.limit:g})",
                    level=outcome.violated_level,
                )
        elif event.kind == EVENT_WAIT:
            continue
        elif event.kind == EVENT_REJECT:
            replay.rejected = True
            if event.reason not in REJECTION_REASONS:
                result.warnings.append(
                    f"event {index}: reject with non-rejection reason "
                    f"{event.reason!r}"
                )
        elif event.kind == EVENT_COMMIT:
            if replay.finished is not None:
                violate(
                    "double-completion",
                    event,
                    index,
                    f"transaction {event.txn} commits after "
                    f"{replay.finished}",
                )
                continue
            replay.finished = "commit"
            result.committed += 1
            recorded_in = (
                event.imported if event.imported is not None else 0.0
            )
            recorded_out = (
                event.exported if event.exported is not None else 0.0
            )
            if recorded_in != replay.imported:
                violate(
                    "commit-total-mismatch",
                    event,
                    index,
                    f"transaction {event.txn} committed with "
                    f"imported={recorded_in!r} but its events charge "
                    f"{replay.imported!r}",
                )
            if recorded_out != replay.exported:
                violate(
                    "commit-total-mismatch",
                    event,
                    index,
                    f"transaction {event.txn} committed with "
                    f"exported={recorded_out!r} but its events charge "
                    f"{replay.exported!r}",
                )
        elif event.kind == EVENT_ABORT:
            if replay.finished is not None:
                violate(
                    "double-completion",
                    event,
                    index,
                    f"transaction {event.txn} aborts after "
                    f"{replay.finished}",
                )
                continue
            replay.finished = "abort"
            result.aborted += 1
            if event.reason not in ALL_REASONS:
                result.warnings.append(
                    f"event {index}: unknown abort reason {event.reason!r}"
                )
            elif event.reason in REJECTION_REASONS and not replay.rejected:
                result.warnings.append(
                    f"event {index}: abort reason {event.reason!r} has no "
                    f"paired reject event for transaction {event.txn}"
                )
        else:
            result.warnings.append(
                f"event {index}: unknown event kind {event.kind!r}"
            )

    unfinished = [
        txn for txn, replay in txns.items() if replay.finished is None
    ]
    if unfinished:
        result.warnings.append(
            f"{len(unfinished)} transaction(s) never completed: "
            f"{sorted(unfinished)[:10]}"
        )

    run_dsg = serializability if serializability is not None else strict
    if run_dsg:
        from repro.check.dsg import serialization_cycle

        cycle = serialization_cycle(log.events)
        if cycle:
            result.serializable = False
            result.cycle = cycle
            result.violations.append(
                Violation(
                    "serialization-cycle",
                    cycle[0],
                    -1,
                    "epsilon-0 history is not serializable: cycle "
                    + " -> ".join(str(txn) for txn in cycle),
                )
            )
        else:
            result.serializable = True

    result.cpu = time.process_time() - started
    return result
