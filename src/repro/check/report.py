"""Markdown report for a batch of history checks.

Formats :class:`~repro.check.conformance.CheckResult`s as the
``|History|Result|CPU(s)|Valid?|`` table (the layout of serializability
tooling reports), followed by a ``## Summary`` section with totals the
CI chaos smoke greps for.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.check.conformance import CheckResult

__all__ = ["render_report"]

_VALID = "✅"
_INVALID = "❌"


def render_report(
    results: Iterable[CheckResult],
    title: str = "History Conformance Report",
    generated: str | None = None,
) -> str:
    """Render ``results`` as a markdown report.

    ``generated`` is an optional freeform provenance line (a timestamp,
    the command that produced the histories) echoed under the title.
    """
    rows: Sequence[CheckResult] = list(results)
    lines = [f"# {title}", ""]
    if generated:
        lines += [f"Generated: {generated}", ""]
    lines += ["|History|Result|CPU(s)|Valid?|", "|--|--|--|--|"]
    for result in rows:
        mark = _VALID if result.ok else _INVALID
        lines.append(
            f"| `{result.name}` |{result.label}|{result.cpu:.2f}|{mark}|"
        )
    conformant = sum(1 for r in rows if r.ok)
    flagged = [r for r in rows if not r.ok]
    total_violations = sum(len(r.violations) for r in flagged)
    serializable = sum(1 for r in rows if r.serializable is True)
    non_serializable = sum(1 for r in rows if r.serializable is False)
    total_warnings = sum(len(r.warnings) for r in rows)
    lines += [
        "",
        "## Summary",
        f"- Conformant: {conformant}",
        (
            f"- Violating: {len(flagged)} "
            f"({total_violations} violation"
            f"{'s' if total_violations != 1 else ''})"
        ),
        (
            f"- Serializability checks: {serializable} passed, "
            f"{non_serializable} failed"
        ),
        f"- Warnings: {total_warnings}, Total: {len(rows)}",
    ]
    if flagged:
        lines += ["", "## Violations"]
        for result in flagged:
            lines.append(f"### `{result.name}`")
            for violation in result.violations:
                lines.append(
                    f"- [{violation.kind}] {violation.message}"
                )
    return "\n".join(lines) + "\n"
