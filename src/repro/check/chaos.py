"""Chaos harness: randomized schedules, injected faults, checked histories.

The harness starts a real server in-process with history recording on,
drives it with randomized multi-client schedules, and injects the faults
the recording seam must survive:

* **worker SIGKILL** — with ``--process-shards``, a shard worker process
  is killed mid-run; the engine fails over and every in-flight
  transaction that touched the dead shard aborts with
  ``shard-failover``;
* **delayed / split frames** — a request's bytes are cut at a random
  boundary and sent as two delayed segments, exercising the servers'
  incremental framing;
* **mid-stream disconnects** — a client walks away with a transaction
  open, exercising the servers' abandon path (``client-disconnected``
  aborts must be recorded exactly once);
* **pipelined bursts** — two requests are written back-to-back before
  either response is read, exercising the batched dispatch path.

Afterwards the recorded history is replayed through the offline
conformance checker (:mod:`repro.check.conformance`); the run passes
only when the checker reports zero violations.  The CI chaos smoke job
runs exactly this with one injected worker kill.
"""

from __future__ import annotations

import os
import random
import signal
import socket
import threading
import time
from dataclasses import dataclass, field

from repro.check.conformance import CheckResult, check_log
from repro.core.bounds import ObjectBounds
from repro.engine.database import Database
from repro.engine.history import HistoryLog
from repro.errors import ProtocolError, TransactionAborted

__all__ = ["ChaosConfig", "ChaosReport", "run_chaos"]


@dataclass(frozen=True)
class ChaosConfig:
    """One chaos run: workload shape, server shape, fault rates."""

    clients: int = 4
    transactions_per_client: int = 25
    objects: int = 32
    protocol: str = "esr"
    #: Transaction bounds for queries/updates — non-zero so the ESR
    #: relaxation paths (the interesting recording paths) actually fire.
    til: float = 200.0
    tel: float = 200.0
    #: Per-object bounds (generous: chaos is about fault paths, not
    #: bound rejections — those have their own tests).
    oil: float = 1e9
    oel: float = 1e9
    server: str = "async"  #: ``"async"`` or ``"threaded"``
    shards: int = 1
    #: ``True``/``False`` or ``"force"`` (insist on real worker
    #: processes even on one core — required for ``kill_workers``).
    processes: bool | str = False
    wait_timeout: float = 2.0
    #: Worker SIGKILLs injected mid-run (process shards only).
    kill_workers: int = 0
    #: Probability a client transaction ends in an abrupt disconnect.
    disconnect_rate: float = 0.05
    #: Probability one request's bytes are split and delayed.
    delay_rate: float = 0.1
    #: Probability an update pipelines two writes in one burst.
    burst_rate: float = 0.2
    seed: int = 0


@dataclass
class ChaosReport:
    """What happened, and whether the history survived the checker."""

    check: CheckResult
    history: HistoryLog
    commits: int = 0
    aborts: int = 0
    disconnects: int = 0
    kills: int = 0
    delayed_frames: int = 0
    bursts: int = 0
    errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.check.ok and not self.errors


class _ChaosSocket:
    """A send-side proxy that sometimes splits and delays a request."""

    def __init__(self, sock: socket.socket, rng: random.Random, rate: float):
        self._sock = sock
        self._rng = rng
        self._rate = rate
        self.delayed = 0

    def sendall(self, data: bytes) -> None:
        if len(data) > 2 and self._rng.random() < self._rate:
            cut = self._rng.randrange(1, len(data))
            self._sock.sendall(data[:cut])
            time.sleep(self._rng.uniform(0.001, 0.01))
            self._sock.sendall(data[cut:])
            self.delayed += 1
        else:
            self._sock.sendall(data)

    def __getattr__(self, name):
        return getattr(self._sock, name)


def _client_loop(
    config: ChaosConfig,
    port: int,
    site: int,
    report: ChaosReport,
    lock: threading.Lock,
) -> None:
    """One chaos client: randomized transactions with injected faults."""
    from repro.net.client import RemoteConnection

    rng = random.Random(config.seed * 7_919 + site)
    connection: RemoteConnection | None = None
    done = 0
    while done < config.transactions_per_client:
        if connection is None:
            connection = RemoteConnection("127.0.0.1", port, site=site)
            chaos_sock = _ChaosSocket(
                connection._sock, rng, config.delay_rate
            )
            connection._sock = chaos_sock  # type: ignore[assignment]
        try:
            done += 1
            is_query = rng.random() < 0.5
            kind = "query" if is_query else "update"
            bound = config.til if is_query else config.tel
            txn = connection.begin(kind, bound)
            objects = rng.sample(
                range(config.objects), k=min(3, config.objects)
            )
            if rng.random() < config.disconnect_rate:
                # Walk away mid-transaction: the server's abandon path
                # must record exactly one client-disconnected abort.
                txn.read(objects[0]) if is_query else txn.write(
                    objects[0], rng.uniform(0.0, 200.0)
                )
                connection.close()
                connection = None
                with lock:
                    report.disconnects += 1
                continue
            if not is_query and rng.random() < config.burst_rate:
                _pipelined_writes(connection, txn, objects[:2], rng)
                with lock:
                    report.bursts += 1
            else:
                for object_id in objects:
                    if is_query:
                        txn.read(object_id)
                    else:
                        txn.write(object_id, rng.uniform(0.0, 200.0))
            if rng.random() < 0.05:
                txn.abort()
                with lock:
                    report.aborts += 1
            else:
                txn.commit()
                with lock:
                    report.commits += 1
        except TransactionAborted:
            with lock:
                report.aborts += 1
        except (ProtocolError, OSError):
            # The connection died underneath us (a worker kill tearing
            # down a request, or our own injected disconnect racing the
            # server's close); reconnect and continue the schedule.
            if connection is not None:
                connection.close()
            connection = None
        finally:
            if connection is not None:
                with lock:
                    report.delayed_frames += chaos_sock.delayed
                chaos_sock.delayed = 0
    if connection is not None:
        connection.close()


def _pipelined_writes(connection, txn, objects, rng: random.Random) -> None:
    """Send two write requests back-to-back, then read both responses."""
    codec = connection._codec
    messages = [
        {
            "op": "write",
            "txn": txn.txn_id,
            "object": object_id,
            "value": rng.uniform(0.0, 200.0),
        }
        for object_id in objects
    ]
    payload = b"".join(codec.encode_request(m) for m in messages)
    connection._sock.sendall(payload)
    for _ in messages:
        response = connection._reader.read_message()
        if response is None:
            raise ProtocolError("server closed the connection mid-burst")
        txn._check(response)


def _kill_workers(manager, count: int, rng: random.Random) -> int:
    """SIGKILL ``count`` shard workers, pausing for failover between."""
    kills = 0
    for _ in range(count):
        pids = list(getattr(manager, "worker_pids", lambda: ())())
        if not pids:
            break
        victim = rng.choice(pids)
        try:
            os.kill(victim, signal.SIGKILL)
            kills += 1
        except (OSError, ProcessLookupError):
            continue
        time.sleep(0.3)  # let failover land before the next kill
    return kills


def run_chaos(config: ChaosConfig) -> ChaosReport:
    """Run one chaos schedule and check the history it recorded."""
    database = Database()
    database.create_many(
        ((i, 100.0) for i in range(config.objects)),
        bounds=ObjectBounds(
            import_limit=config.oil, export_limit=config.oel
        ),
    )
    rng = random.Random(config.seed)

    if config.server == "async":
        from repro.net.aioserver import serve_in_thread

        host = serve_in_thread(
            database,
            protocol=config.protocol,
            wait_timeout=config.wait_timeout,
            shards=config.shards,
            processes=config.processes,
            record_history=True,
        )
        manager = host.manager
        port = host.port
        stop = host.shutdown
        history_of = host.server.history
    elif config.server == "threaded":
        from repro.net.server import serve_forever

        server = serve_forever(
            database,
            protocol=config.protocol,
            wait_timeout=config.wait_timeout,
            shards=config.shards,
            processes=config.processes,
            record_history=True,
        )
        manager = server.manager
        port = server.port

        def stop() -> None:
            server.shutdown()
            server.server_close()

        history_of = server.history
    else:
        raise ValueError(
            f"unknown server {config.server!r}; choose 'async' or 'threaded'"
        )

    report = ChaosReport(
        check=CheckResult(name="chaos"), history=HistoryLog(header={})
    )
    lock = threading.Lock()
    try:
        threads = [
            threading.Thread(
                target=_client_loop,
                args=(config, port, site, report, lock),
                daemon=True,
            )
            for site in range(1, config.clients + 1)
        ]
        for thread in threads:
            thread.start()
        if config.kill_workers:
            time.sleep(0.2)  # let clients open transactions first
            report.kills = _kill_workers(manager, config.kill_workers, rng)
        deadline = time.time() + 120.0
        for thread in threads:
            thread.join(timeout=max(0.0, deadline - time.time()))
            if thread.is_alive():
                report.errors.append("client thread did not finish in time")
        # Give the servers a beat to notice closed sockets and record
        # their abandon aborts before the history is snapshotted.
        time.sleep(0.2)
        report.history = history_of()
    finally:
        stop()

    name = (
        f"chaos-{config.server}-{config.protocol}"
        f"-s{config.shards}{'p' if config.processes else ''}"
        f"-seed{config.seed}"
    )
    report.check = check_log(report.history, name=name)
    return report
