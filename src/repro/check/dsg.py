"""Direct serialization graph over a recorded event stream.

When every bound in a history is zero, ESR degenerates to plain
serializability, and the recorded history must admit an acyclic direct
serialization graph (DSG) over its committed transactions.  This module
builds that graph from the event log alone:

* writes become visible at their writer's *commit* event, so the
  "current committed version" of an object at any point in the log is
  the last transaction that committed a write to it before that point
  (the virtual initial transaction otherwise);
* a read observes the current committed version — under a strict
  (epsilon-0) engine a read is never served uncommitted data, and reads
  of an object the reader itself has staged a write on are own-reads
  and carry no dependency;
* edges: **wr** from the observed writer to the reader, **ww** from the
  superseded version's writer to the superseding one (at commit), and
  **rw** from every reader of the superseded version to the superseding
  writer (the anti-dependency).

Aborted transactions contribute nothing (their writes never became
visible, their reads constrain nobody).  A cycle among committed
transactions is returned as the offending transaction-id path.

The construction trusts recording order per object, which holds for the
in-process engines (events append inside the owning shard's critical
section).  The process-sharded parent records replies as connections
drain them, so cross-connection order can differ from decision order —
epsilon-0 cycle checks are therefore meaningful on deterministic or
single-connection histories; the conformance replay (which is
per-transaction and order-insensitive across transactions) covers the
rest.  See ``docs/correctness.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.engine.history import (
    EVENT_ABORT,
    EVENT_COMMIT,
    EVENT_READ,
    EVENT_WRITE,
    HistoryEvent,
)

__all__ = ["DSGEdge", "build_edges", "serialization_cycle"]

#: Node id used for the virtual initial transaction (pre-loaded state).
_INITIAL = 0


@dataclass(frozen=True)
class DSGEdge:
    """One dependency edge: ``src`` must precede ``dst``."""

    src: int
    dst: int
    #: ``"wr"``, ``"ww"`` or ``"rw"``.
    kind: str
    object_id: int


def build_edges(events: Iterable[HistoryEvent]) -> list[DSGEdge]:
    """Dependency edges among *committed* transactions."""
    events = list(events)
    committed = {
        event.txn for event in events if event.kind == EVENT_COMMIT
    }
    #: object -> txn whose committed write is current (log order).
    current: dict[int, int] = {}
    #: object -> version writer -> readers of that version.
    readers: dict[int, dict[int, set[int]]] = {}
    #: txn -> objects it has staged writes on so far (own-read filter).
    staged: dict[int, set[int]] = {}
    #: txn -> objects it wrote (applied at commit).
    writes: dict[int, list[int]] = {}
    edges: list[DSGEdge] = []

    for event in events:
        if event.kind == EVENT_READ:
            txn = event.txn
            object_id = event.object_id
            if object_id is None or txn not in committed:
                continue
            if object_id in staged.get(txn, ()):  # own staged write
                continue
            version = current.get(object_id, _INITIAL)
            if version != _INITIAL and version != txn:
                edges.append(DSGEdge(version, txn, "wr", object_id))
            readers.setdefault(object_id, {}).setdefault(
                version, set()
            ).add(txn)
        elif event.kind == EVENT_WRITE:
            txn = event.txn
            object_id = event.object_id
            if object_id is None:
                continue
            staged.setdefault(txn, set()).add(object_id)
            writes.setdefault(txn, []).append(object_id)
        elif event.kind == EVENT_COMMIT:
            txn = event.txn
            for object_id in writes.pop(txn, ()):
                previous = current.get(object_id, _INITIAL)
                if previous == txn:
                    continue
                if previous != _INITIAL:
                    edges.append(DSGEdge(previous, txn, "ww", object_id))
                for reader in readers.get(object_id, {}).get(previous, ()):
                    if reader != txn and reader in committed:
                        edges.append(
                            DSGEdge(reader, txn, "rw", object_id)
                        )
                current[object_id] = txn
            staged.pop(txn, None)
        elif event.kind == EVENT_ABORT:
            writes.pop(event.txn, None)
            staged.pop(event.txn, None)

    return edges


def serialization_cycle(
    events: Iterable[HistoryEvent],
) -> tuple[int, ...] | None:
    """The first dependency cycle found, or ``None`` when acyclic.

    Returns the cycle as a transaction-id path ``(t1, t2, ..., t1)``.
    """
    edges = build_edges(events)
    graph: dict[int, list[int]] = {}
    for edge in edges:
        graph.setdefault(edge.src, []).append(edge.dst)
        graph.setdefault(edge.dst, [])
    return _find_cycle(graph)


def _find_cycle(
    graph: dict[int, Sequence[int]],
) -> tuple[int, ...] | None:
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in graph}
    for root in graph:
        if color[root] != WHITE:
            continue
        # Iterative DFS keeping the gray path for cycle extraction.
        stack: list[tuple[int, int]] = [(root, 0)]
        path: list[int] = []
        color[root] = GRAY
        path.append(root)
        while stack:
            node, next_index = stack[-1]
            neighbors = graph[node]
            if next_index < len(neighbors):
                stack[-1] = (node, next_index + 1)
                child = neighbors[next_index]
                if color[child] == GRAY:
                    start = path.index(child)
                    return tuple(path[start:] + [child])
                if color[child] == WHITE:
                    color[child] = GRAY
                    path.append(child)
                    stack.append((child, 0))
            else:
                color[node] = BLACK
                path.pop()
                stack.pop()
    return None
