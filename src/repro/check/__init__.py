"""Offline conformance checking of recorded engine histories.

The engines record what they *decided* (:mod:`repro.engine.history`);
this package re-derives what they *should* have decided and diffs the
two:

* :func:`check_log` replays every recorded inconsistency charge against
  a fresh :class:`~repro.core.accounting.InconsistencyAccount` built
  from the history's own BEGIN declarations and the header's object
  bounds and group catalog — any charge the fresh hierarchy would not
  admit, at any level (object, group, transaction), is a violation, and
  so is any commit whose recorded imported/exported divergence differs
  from the replayed totals;
* for strict (epsilon = 0) histories it additionally builds the direct
  serialization graph from the event stream and reports any cycle —
  bounded inconsistency must degenerate to plain serializability when
  every bound is zero;
* :func:`render_report` formats a batch of results as the familiar
  ``|History|Result|CPU(s)|Valid?|`` markdown table with a summary.

The replay is bit-exact, not tolerance-based: the paper's admission
charges each transaction's own account only (even the late-write case
charges the *writer*), so replaying one transaction's events performs
the same float additions in the same order as the live engine did.
"""

from repro.check.chaos import ChaosConfig, ChaosReport, run_chaos
from repro.check.conformance import CheckResult, Violation, check_log
from repro.check.dsg import DSGEdge, serialization_cycle
from repro.check.report import render_report

__all__ = [
    "CheckResult",
    "Violation",
    "check_log",
    "DSGEdge",
    "serialization_cycle",
    "render_report",
    "ChaosConfig",
    "ChaosReport",
    "run_chaos",
]
