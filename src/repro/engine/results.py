"""Operation outcomes returned by the concurrency control.

Every Read or Write submitted to the engine resolves to exactly one of:

:class:`Granted`
    The operation executed.  For reads, ``value`` carries the value read;
    ``inconsistency`` is the divergence charged to the transaction's
    account (0 for consistent operations) and ``esr_case`` names which of
    the paper's three relaxation cases applied, if any.

:class:`MustWait`
    Strict ordering requires the operation to wait for another transaction
    to finish (commit or abort).  The runtime — simulated or threaded —
    blocks the client and retries the operation once
    ``blocking_transaction`` completes.  Waits only ever point at *older*
    transactions, so no deadlock can arise.

:class:`Rejected`
    The operation cannot execute (late under timestamp ordering, or an
    inconsistency bound would be violated).  The transaction must abort;
    clients resubmit with a fresh timestamp.

These are plain frozen dataclasses rather than exceptions because the
common cases (wait, reject-and-restart) are normal control flow in a
timestamp-ordered system, not errors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

__all__ = [
    "Granted",
    "MustWait",
    "Rejected",
    "Outcome",
    "CASE_LATE_READ",
    "CASE_READ_UNCOMMITTED",
    "CASE_LATE_WRITE",
    "REASON_LATE_READ",
    "REASON_LATE_WRITE",
    "REASON_BOUND_VIOLATION",
    "REASON_WRITE_CONFLICT",
]

#: Paper Figure 3, case 1 — a query read arrives after a newer committed write.
CASE_LATE_READ = "late-read-committed"
#: Paper Figure 3, case 2 — a query read views uncommitted data.
CASE_READ_UNCOMMITTED = "read-uncommitted"
#: Paper Figure 3, case 3 — an update write arrives after a newer query read.
CASE_LATE_WRITE = "late-write"

REASON_LATE_READ = "late-read"
REASON_LATE_WRITE = "late-write"
REASON_BOUND_VIOLATION = "bound-violation"
REASON_WRITE_CONFLICT = "write-write-conflict"


@dataclass(frozen=True)
class Granted:
    """The operation executed successfully."""

    value: float | None = None
    inconsistency: float = 0.0
    esr_case: str | None = None

    @property
    def was_inconsistent(self) -> bool:
        """True when this operation succeeded only thanks to ESR."""
        return self.esr_case is not None


@dataclass(frozen=True)
class MustWait:
    """Strict ordering: wait for ``blocking_transaction`` to finish."""

    blocking_transaction: int


@dataclass(frozen=True)
class Rejected:
    """The operation cannot execute; the transaction must abort."""

    reason: str
    detail: str = ""
    violated_level: str | None = None


Outcome = Union[Granted, MustWait, Rejected]
