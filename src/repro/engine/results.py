"""Operation outcomes returned by the concurrency control.

Every Read or Write submitted to the engine resolves to exactly one of:

:class:`Granted`
    The operation executed.  For reads, ``value`` carries the value read;
    ``inconsistency`` is the divergence charged to the transaction's
    account (0 for consistent operations) and ``esr_case`` names which of
    the paper's three relaxation cases applied, if any.

:class:`MustWait`
    Strict ordering requires the operation to wait for another transaction
    to finish (commit or abort).  The runtime — simulated or threaded —
    blocks the client and retries the operation once
    ``blocking_transaction`` completes.  Waits only ever point at *older*
    transactions, so no deadlock can arise.

:class:`Rejected`
    The operation cannot execute (late under timestamp ordering, or an
    inconsistency bound would be violated).  The transaction must abort;
    clients resubmit with a fresh timestamp.

These are plain frozen dataclasses rather than exceptions because the
common cases (wait, reject-and-restart) are normal control flow in a
timestamp-ordered system, not errors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

# Canonical case/reason strings live in repro.engine.reasons (shared by
# engines, metrics, history events and the checker); re-exported here
# because outcome-handling code has always imported them from results.
from repro.engine.reasons import (
    CASE_LATE_READ,
    CASE_LATE_WRITE,
    CASE_READ_UNCOMMITTED,
    REASON_BOUND_VIOLATION,
    REASON_LATE_READ,
    REASON_LATE_WRITE,
    REASON_WRITE_CONFLICT,
)

__all__ = [
    "Granted",
    "MustWait",
    "Rejected",
    "Outcome",
    "CASE_LATE_READ",
    "CASE_READ_UNCOMMITTED",
    "CASE_LATE_WRITE",
    "REASON_LATE_READ",
    "REASON_LATE_WRITE",
    "REASON_BOUND_VIOLATION",
    "REASON_WRITE_CONFLICT",
]


@dataclass(frozen=True)
class Granted:
    """The operation executed successfully."""

    value: float | None = None
    inconsistency: float = 0.0
    esr_case: str | None = None

    @property
    def was_inconsistent(self) -> bool:
        """True when this operation succeeded only thanks to ESR."""
        return self.esr_case is not None


@dataclass(frozen=True)
class MustWait:
    """Strict ordering: wait for ``blocking_transaction`` to finish."""

    blocking_transaction: int


@dataclass(frozen=True)
class Rejected:
    """The operation cannot execute; the transaction must abort."""

    reason: str
    detail: str = ""
    violated_level: str | None = None


Outcome = Union[Granted, MustWait, Rejected]
