"""Wait registry: who is blocked on whom, and wake-ups on completion.

Strict ordering makes operations wait for the commit/abort of an older
conflicting transaction.  The engine itself is runtime-agnostic — it only
*reports* :class:`~repro.engine.results.MustWait` — and this registry is
the bridge to whatever runtime hosts it:

* the discrete-event simulator subscribes a callback that re-schedules the
  blocked client process;
* the threaded network server subscribes a callback that notifies the
  blocked worker thread's condition variable.

The registry also exposes the wait-for relation for inspection; since
waiters are always younger than the transactions they wait for, the
relation is acyclic by construction, and :meth:`assert_no_cycle` verifies
that invariant in tests.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable

__all__ = ["WaitRegistry"]


class WaitRegistry:
    """Subscriptions of blocked operations, keyed by blocking transaction."""

    def __init__(self) -> None:
        self._waiters: dict[int, list[Callable[[], None]]] = defaultdict(list)
        # waiter txn id -> blocking txn id, for introspection only.
        self._waiting_on: dict[int, int] = {}

    def subscribe(
        self,
        blocking_transaction: int,
        callback: Callable[[], None],
        waiter_transaction: int | None = None,
    ) -> None:
        """Invoke ``callback`` once ``blocking_transaction`` completes."""
        self._waiters[blocking_transaction].append(callback)
        if waiter_transaction is not None:
            self._waiting_on[waiter_transaction] = blocking_transaction

    def wait_event(
        self,
        blocking_transaction: int,
        waiter_transaction: int | None = None,
        factory: Callable[[], object] | None = None,
    ):
        """Create an event set when ``blocking_transaction`` completes.

        ``factory`` builds the event — anything with ``set()``; the
        threaded server passes ``threading.Event`` (the default) and the
        asyncio server passes ``asyncio.Event``, whose ``set`` is safe
        here because the engine only ever runs on the loop thread.
        """
        if factory is None:
            import threading

            factory = threading.Event
        event = factory()
        self.subscribe(
            blocking_transaction,
            event.set,
            waiter_transaction=waiter_transaction,
        )
        return event

    def fire(self, completed_transaction: int) -> int:
        """Wake everything waiting on ``completed_transaction``.

        Returns the number of callbacks invoked.  Callbacks are drained
        before being invoked so a callback that immediately re-subscribes
        (a retried operation blocking on a different transaction) is safe.
        """
        callbacks = self._waiters.pop(completed_transaction, [])
        # The completed transaction may itself have been registered as a
        # waiter (a blocked operation whose transaction was then aborted,
        # e.g. on wait-timeout); drop its own entry too or it leaks.
        self._waiting_on.pop(completed_transaction, None)
        stale = [
            waiter
            for waiter, blocker in self._waiting_on.items()
            if blocker == completed_transaction
        ]
        for waiter in stale:
            del self._waiting_on[waiter]
        for callback in callbacks:
            callback()
        return len(callbacks)

    def waiting_on(self, waiter_transaction: int) -> int | None:
        """The transaction ``waiter_transaction`` is blocked on, if any."""
        return self._waiting_on.get(waiter_transaction)

    def pending_waiters(self) -> int:
        """Total callbacks currently registered."""
        return sum(len(cbs) for cbs in self._waiters.values())

    def assert_no_cycle(self) -> None:
        """Verify the wait-for relation is acyclic (it must always be)."""
        for start in self._waiting_on:
            seen = {start}
            node = self._waiting_on.get(start)
            while node is not None:
                if node in seen:
                    raise AssertionError(
                        f"wait-for cycle detected starting at {start}"
                    )
                seen.add(node)
                node = self._waiting_on.get(node)

    def __repr__(self) -> str:
        return f"WaitRegistry(pending={self.pending_waiters()})"
