"""Performance counters for the transaction engine.

The paper's evaluation (sections 7 and 8) tracks, besides throughput:

* the number of **retries (aborts)** — Figure 9;
* the number of **successful inconsistent operations** — operations that
  executed despite viewing/exporting inconsistency — Figure 8, broken down
  here by which of the three relaxation cases admitted them;
* the **total number of operations performed** (reads + writes, including
  work later thrown away by aborts) — Figure 10;
* the **average number of operations per completed transaction**,
  including the operations of its aborted incarnations — Figure 13.

A :class:`MetricsCollector` is owned by one
:class:`~repro.engine.manager.TransactionManager`; runtimes add timing on
top (the collector itself is clock-free so it works identically under the
simulator and the threaded server).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.perf import counters as _perf

__all__ = ["MetricsCollector", "MetricsSnapshot"]


@dataclass
class MetricsSnapshot:
    """An immutable copy of the counters, plus derived ratios."""

    commits: int
    commits_query: int
    commits_update: int
    aborts: int
    aborts_by_reason: dict[str, int]
    reads: int
    writes: int
    inconsistent_operations: int
    inconsistent_by_case: dict[str, int]
    rejected_operations: int
    waits: int
    total_imported: float
    total_exported: float

    @property
    def total_operations(self) -> int:
        """Reads plus writes actually executed (Figure 10's metric)."""
        return self.reads + self.writes

    @property
    def operations_per_commit(self) -> float:
        """Average executed operations per committed transaction.

        Includes operations performed by aborted incarnations, so it
        measures wasted work (Figure 13's metric).  Zero when nothing
        committed.
        """
        if self.commits == 0:
            return 0.0
        return self.total_operations / self.commits

    @property
    def abort_rate(self) -> float:
        """Aborts per commit (retries needed per successful transaction)."""
        if self.commits == 0:
            return 0.0
        return self.aborts / self.commits


class MetricsCollector:
    """Mutable counters updated by the transaction manager."""

    def __init__(self) -> None:
        self.commits = 0
        self.commits_query = 0
        self.commits_update = 0
        self.aborts = 0
        self.aborts_by_reason: Counter[str] = Counter()
        self.reads = 0
        self.writes = 0
        self.inconsistent_by_case: Counter[str] = Counter()
        self.rejected_operations = 0
        self.waits = 0
        self.total_imported = 0.0
        self.total_exported = 0.0

    # -- recording hooks -------------------------------------------------------

    def record_read(self, esr_case: str | None) -> None:
        self.reads += 1
        if esr_case is not None:
            self.inconsistent_by_case[esr_case] += 1
            _perf.record_conflict_case(esr_case)

    def record_write(self, esr_case: str | None) -> None:
        self.writes += 1
        if esr_case is not None:
            self.inconsistent_by_case[esr_case] += 1
            _perf.record_conflict_case(esr_case)

    def record_wait(self) -> None:
        self.waits += 1

    def record_rejection(self) -> None:
        self.rejected_operations += 1

    def record_commit(self, is_query: bool, imported: float, exported: float) -> None:
        self.commits += 1
        if is_query:
            self.commits_query += 1
        else:
            self.commits_update += 1
        self.total_imported += imported
        self.total_exported += exported

    def record_abort(self, reason: str) -> None:
        self.aborts += 1
        self.aborts_by_reason[reason] += 1

    # -- reading ----------------------------------------------------------------

    @property
    def inconsistent_operations(self) -> int:
        return sum(self.inconsistent_by_case.values())

    @property
    def total_operations(self) -> int:
        return self.reads + self.writes

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot(
            commits=self.commits,
            commits_query=self.commits_query,
            commits_update=self.commits_update,
            aborts=self.aborts,
            aborts_by_reason=dict(self.aborts_by_reason),
            reads=self.reads,
            writes=self.writes,
            inconsistent_operations=self.inconsistent_operations,
            inconsistent_by_case=dict(self.inconsistent_by_case),
            rejected_operations=self.rejected_operations,
            waits=self.waits,
            total_imported=self.total_imported,
            total_exported=self.total_exported,
        )

    def reset(self) -> None:
        """Zero every counter (used between measurement phases)."""
        self.__init__()

    def __repr__(self) -> str:
        return (
            f"MetricsCollector(commits={self.commits}, aborts={self.aborts}, "
            f"ops={self.total_operations})"
        )
