"""The prototype transaction-processing engine.

Runtime-agnostic server internals (paper section 6): the in-memory
database and its objects, timestamp generation, the SR and ESR
concurrency-control decisions, the wait registry, the transaction
manager, and the performance counters.
"""

from repro.engine.api import (
    PROTOCOL_REGISTRY,
    PROTOCOLS,
    Engine,
    ProtocolSpec,
    create_engine,
    protocol_spec,
    validate_protocol_options,
)
from repro.engine.database import Database
from repro.engine.manager import TransactionManager
from repro.engine.sharded import ShardedEngine
from repro.engine.metrics import MetricsCollector, MetricsSnapshot
from repro.engine.objects import DEFAULT_VERSION_WINDOW, DataObject, Version
from repro.engine.results import (
    CASE_LATE_READ,
    CASE_LATE_WRITE,
    CASE_READ_UNCOMMITTED,
    Granted,
    MustWait,
    Outcome,
    Rejected,
)
from repro.engine.locks import LockMode, LockTable
from repro.engine.mvto import MVTOManager
from repro.engine.scheduler import WaitRegistry
from repro.engine.snapshot import PublishedObject, SnapshotStore, snapshot_read
from repro.engine.twopl import REASON_DEADLOCK, TwoPhaseManager
from repro.engine.timestamps import GENESIS, Timestamp, TimestampGenerator
from repro.engine.transactions import (
    TransactionKind,
    TransactionState,
    TransactionStatus,
)

__all__ = [
    "Database",
    "Engine",
    "PROTOCOL_REGISTRY",
    "PROTOCOLS",
    "ProtocolSpec",
    "ShardedEngine",
    "TransactionManager",
    "create_engine",
    "protocol_spec",
    "validate_protocol_options",
    "MetricsCollector",
    "MetricsSnapshot",
    "DEFAULT_VERSION_WINDOW",
    "DataObject",
    "Version",
    "CASE_LATE_READ",
    "CASE_LATE_WRITE",
    "CASE_READ_UNCOMMITTED",
    "Granted",
    "MustWait",
    "Outcome",
    "Rejected",
    "WaitRegistry",
    "PublishedObject",
    "SnapshotStore",
    "snapshot_read",
    "LockMode",
    "LockTable",
    "MVTOManager",
    "REASON_DEADLOCK",
    "TwoPhaseManager",
    "GENESIS",
    "Timestamp",
    "TimestampGenerator",
    "TransactionKind",
    "TransactionState",
    "TransactionStatus",
]
