"""Transaction state: kinds, status, and per-transaction accounting.

The paper restricts attention to two kinds of epsilon transactions:

* **query ETs** — read-only, may import bounded inconsistency (TIL);
* **update ETs** — read/write, must read consistently (their writes depend
  on their reads), may export bounded inconsistency (TEL).

A :class:`TransactionState` ties together the identity (id, kind,
timestamp), the limits it declared at BEGIN (transaction bounds, optional
group limits, optional per-object limit overrides), its inconsistency
account for the relevant direction, and the read/write sets the engine
needs for commit/abort processing.
"""

from __future__ import annotations

import enum
from typing import Mapping

from repro.core.accounting import Direction, InconsistencyAccount
from repro.core.bounds import TransactionBounds
from repro.core.hierarchy import GroupCatalog
from repro.engine.timestamps import Timestamp
from repro.errors import InvalidOperation

__all__ = ["TransactionKind", "TransactionStatus", "TransactionState"]


class TransactionKind(enum.Enum):
    QUERY = "query"
    UPDATE = "update"


class TransactionStatus(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class TransactionState:
    """All server-side state for one in-flight epsilon transaction."""

    def __init__(
        self,
        transaction_id: int,
        kind: TransactionKind,
        timestamp: Timestamp,
        bounds: TransactionBounds,
        catalog: GroupCatalog,
        group_limits: Mapping[str, float] | None = None,
        object_limits: Mapping[int, float] | None = None,
        allow_inconsistent_reads: bool = False,
    ):
        self.transaction_id = transaction_id
        self.kind = kind
        self.timestamp = timestamp
        self.bounds = bounds
        self.status = TransactionStatus.ACTIVE
        #: Per-object OIL/OEL overrides declared at BEGIN (paper 3.2.2: the
        #: server-side object limits "could be overridden by explicitly
        #: specifying the object limits in the specification stage").
        self.object_limits: dict[int, float] = dict(object_limits or {})
        if kind is TransactionKind.QUERY:
            self.account = InconsistencyAccount(
                Direction.IMPORT, catalog, bounds.import_limit, group_limits
            )
            self.import_account: InconsistencyAccount | None = self.account
        else:
            self.account = InconsistencyAccount(
                Direction.EXPORT, catalog, bounds.export_limit, group_limits
            )
            # The paper restricts itself to *consistent* update ETs (their
            # writes depend on their reads).  As an opt-in extension — the
            # paper notes "update ETs can view inconsistent data the same
            # way query ETs do" — an update ET begun with
            # ``allow_inconsistent_reads`` and a non-zero import limit also
            # carries an import account and may read through conflicts
            # like a query.  The inconsistency it imports can propagate
            # into the values it writes; that is what the limit authorises.
            self.import_account = (
                InconsistencyAccount(
                    Direction.IMPORT, catalog, bounds.import_limit, group_limits
                )
                if allow_inconsistent_reads and bounds.import_limit > 0
                else None
            )
        #: Objects this transaction has read (object ids).
        self.read_set: set[int] = set()
        #: Objects this transaction has staged writes on (object ids).
        self.write_set: set[int] = set()
        #: Operations executed so far (reads + writes that were granted).
        self.operations = 0
        #: Of those, how many were admitted through an ESR relaxation case.
        self.inconsistent_operations = 0
        #: Abort reason, for diagnostics (None while active/committed).
        self.abort_reason: str | None = None

    # -- guards ---------------------------------------------------------------

    @property
    def is_query(self) -> bool:
        return self.kind is TransactionKind.QUERY

    @property
    def is_update(self) -> bool:
        return self.kind is TransactionKind.UPDATE

    @property
    def is_active(self) -> bool:
        return self.status is TransactionStatus.ACTIVE

    def require_active(self) -> None:
        if self.status is not TransactionStatus.ACTIVE:
            raise InvalidOperation(
                f"transaction {self.transaction_id} is {self.status.value}",
                self.transaction_id,
            )

    def effective_object_limit(self, object_id: int, server_limit: float) -> float:
        """The OIL/OEL to apply for this transaction on this object.

        A per-transaction override declared at BEGIN replaces the
        server-side object limit; otherwise the server limit applies.
        """
        return self.object_limits.get(object_id, server_limit)

    # -- convenience for results ------------------------------------------------

    @property
    def imported(self) -> float:
        """Total inconsistency imported (0 for consistent update ETs)."""
        if self.import_account is None:
            return 0.0
        return self.import_account.total

    @property
    def exported(self) -> float:
        """Total inconsistency exported (updates; 0 for queries)."""
        return self.account.total if self.is_update else 0.0

    def __repr__(self) -> str:
        return (
            f"TransactionState(id={self.transaction_id}, "
            f"{self.kind.value}, ts={self.timestamp}, "
            f"{self.status.value}, ops={self.operations})"
        )
