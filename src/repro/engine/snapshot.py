"""The epsilon-bounded snapshot read cache.

The paper's core lever is that queries tolerate a *quantified* amount of
inconsistency; this module turns that into a serving-layer fast path.  A
:class:`SnapshotStore` is maintained beside the live database: every
committed write publishes an immutable per-object record (value,
commit timestamp, cumulative divergence, recent version history), and
every staged/aborted uncommitted write publishes its in-flight delta.
Query reads can then be answered from the snapshot *without entering the
engine critical section* whenever the divergence the snapshot may carry —
the object's staleness relative to the reader's timestamp plus the
pending uncommitted delta — fits inside every level of the reader's
remaining bound hierarchy (OIL, group limits, TIL).

Correctness contract (enforced by the equivalence-oracle tests): a
cache-served read returns a value and an inconsistency charge that some
legal engine-path execution could also have produced.

* The served value is always the snapshot's committed value, which is the
  database's committed value at publish time — exactly what the engine
  returns for an in-order read, or for a Case-1 late read.
* The charge is ``distance(value, proper(ts))`` computed over the same
  committed version window the engine uses — exactly the Case-1 charge
  (zero for in-order reads).
* When an uncommitted write is in flight, the engine's Case-2 would have
  served the *uncommitted* value; the cache instead serves the committed
  value, which corresponds to the legal execution in which the read
  arrived just before the write was staged.  The admission test is
  conservative — staleness *plus* the in-flight delta must fit — so by
  the triangle inequality the bounds also cover the Case-2 view the read
  did not take.
* Admission tests the conservative amount but charges only the observed
  staleness (:meth:`~repro.core.accounting.InconsistencyAccount.
  admit_bounded`), so the ledger, the successful-inconsistent-operation
  counts and the figure-level metrics stay consistent with the paper's
  accounting.

A cache-served read is *non-intrusive*: it does not bump the object's
read timestamp and does not register in the query-reader registry, so it
can never cause a Case-3 export charge or a late-write rejection — the
same property snapshot reads have in multiversion systems.  When any of
the preconditions fail — the object is unpublished, the bounds do not
fit, the transaction already wrote the object (read-your-writes), or the
transaction does not import — the caller falls back to the normal engine
read; the cache never rejects.

Concurrency discipline: all *mutation* (publish, pending, clear) happens
inside the engine critical section (the threaded server's mutex, the
asyncio server's loop, the simulator's single thread).  Reads outside
the critical section see each object through one immutable record
fetched with a single dict lookup, so they can never observe a torn
value/timestamp pair.  Per-group and root in-flight divergence
aggregates are maintained incrementally along the catalog path on every
pending-delta change; they are observability (and can be cross-checked
against a :meth:`~repro.core.hierarchy.GroupCatalog.members` walk of the
reverse index) — admission itself uses the per-object record.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.hierarchy import ROOT_GROUP, GroupCatalog
from repro.core.metric import DistanceFunction, absolute_distance
from repro.engine.objects import DataObject, Version
from repro.engine.results import CASE_LATE_READ, Granted
from repro.engine.timestamps import Timestamp
from repro.perf import counters as _perf

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.database import Database
    from repro.engine.transactions import TransactionState

__all__ = ["PublishedObject", "SnapshotStore", "snapshot_read"]


class PublishedObject:
    """One object's published snapshot state — immutable once built.

    A new record replaces the old one in the store's dict on every
    committed write and on every pending-delta change; readers grab the
    record once and work on a consistent view.
    """

    __slots__ = (
        "object_id",
        "value",
        "commit_ts",
        "cumulative_divergence",
        "versions",
        "import_limit",
        "pending_writer",
        "pending_delta",
    )

    def __init__(
        self,
        object_id: int,
        value: float,
        commit_ts: Timestamp,
        cumulative_divergence: float,
        versions: tuple[Version, ...],
        import_limit: float,
        pending_writer: int | None = None,
        pending_delta: float = 0.0,
    ):
        self.object_id = object_id
        self.value = value
        self.commit_ts = commit_ts
        #: Total distance this object's committed value has travelled
        #: across publishes — an upper bound (triangle inequality) on the
        #: divergence between any two retained versions.
        self.cumulative_divergence = cumulative_divergence
        self.versions = versions
        self.import_limit = import_limit
        self.pending_writer = pending_writer
        #: Distance between the staged uncommitted value and the
        #: committed value, 0.0 while no write is in flight.
        self.pending_delta = pending_delta

    def proper_value_for(self, timestamp: Timestamp) -> float:
        """The proper value for a reader — same walk as the live object."""
        for version in reversed(self.versions):
            if version.timestamp < timestamp:
                return version.value
        return self.versions[0].value

    def __repr__(self) -> str:
        pending = (
            f", pending={self.pending_delta:g}"
            if self.pending_writer is not None
            else ""
        )
        return (
            f"PublishedObject(id={self.object_id}, value={self.value:g}, "
            f"ts={self.commit_ts}{pending})"
        )


class SnapshotStore:
    """The divergence-tracked snapshot beside one live database."""

    __slots__ = (
        "catalog",
        "distance",
        "_entries",
        "_inflight",
        "hits",
        "misses",
        "fallbacks",
        "divergence_charged",
    )

    def __init__(
        self,
        catalog: GroupCatalog,
        distance: DistanceFunction = absolute_distance,
    ):
        self.catalog = catalog
        self.distance = distance
        self._entries: dict[int, PublishedObject] = {}
        #: Incremental per-group (and root) sum of pending uncommitted
        #: deltas of member objects.
        self._inflight: dict[str, float] = {ROOT_GROUP: 0.0}
        # Per-store tallies (process-wide twins live in repro.perf).
        self.hits = 0
        self.misses = 0
        self.fallbacks = 0
        self.divergence_charged = 0.0

    # -- publication (engine critical section only) -------------------------

    def bootstrap(self, database: "Database") -> None:
        """Publish every object's current committed state."""
        for obj in database.objects():
            self.publish(obj)

    def publish(self, obj: DataObject) -> None:
        """Publish ``obj``'s committed state (startup, or after commit)."""
        previous = self._entries.get(obj.object_id)
        cumulative = 0.0
        if previous is not None:
            cumulative = previous.cumulative_divergence + self.distance(
                obj.committed_value, previous.value
            )
            if previous.pending_delta:
                self._shift_inflight(obj.object_id, -previous.pending_delta)
        self._entries[obj.object_id] = PublishedObject(
            obj.object_id,
            obj.committed_value,
            obj.committed_write_ts,
            cumulative,
            obj.versions(),
            obj.bounds.import_limit,
        )

    def note_pending(self, obj: DataObject) -> None:
        """Record a staged uncommitted write's in-flight delta."""
        entry = self._entries.get(obj.object_id)
        if entry is None:
            return
        delta = self.distance(obj.uncommitted_value, obj.committed_value)
        if entry.pending_delta:
            self._shift_inflight(obj.object_id, -entry.pending_delta)
        self._entries[obj.object_id] = PublishedObject(
            entry.object_id,
            entry.value,
            entry.commit_ts,
            entry.cumulative_divergence,
            entry.versions,
            entry.import_limit,
            obj.writer_id,
            delta,
        )
        if delta:
            self._shift_inflight(obj.object_id, delta)

    def clear_pending(self, obj: DataObject) -> None:
        """Drop the in-flight delta (the staged write aborted)."""
        entry = self._entries.get(obj.object_id)
        if entry is None or entry.pending_writer is None:
            return
        if entry.pending_delta:
            self._shift_inflight(obj.object_id, -entry.pending_delta)
        self._entries[obj.object_id] = PublishedObject(
            entry.object_id,
            entry.value,
            entry.commit_ts,
            entry.cumulative_divergence,
            entry.versions,
            entry.import_limit,
        )

    def _shift_inflight(self, object_id: int, delta: float) -> None:
        inflight = self._inflight
        for group in self.catalog.path(object_id):
            inflight[group] = inflight.get(group, 0.0) + delta

    # -- introspection ------------------------------------------------------

    def entry(self, object_id: int) -> PublishedObject | None:
        return self._entries.get(object_id)

    def group_inflight(self, group: str) -> float:
        """Sum of pending uncommitted deltas over the group's subtree."""
        return self._inflight.get(group, 0.0)

    @property
    def root_inflight(self) -> float:
        return self._inflight.get(ROOT_GROUP, 0.0)

    def stats(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "fallbacks": self.fallbacks,
            "divergence_charged": self.divergence_charged,
        }

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"SnapshotStore(objects={len(self._entries)}, hits={self.hits}, "
            f"fallbacks={self.fallbacks})"
        )


def snapshot_read(
    store: SnapshotStore, txn: "TransactionState", object_id: int
) -> Granted | None:
    """Serve one query read from the snapshot, or None to take the engine.

    Mirrors the engine's decision shape: an in-order read of a clean
    object is consistent and free; a stale (or pending-shadowed) read is
    admitted iff staleness + in-flight delta fits every remaining level
    of the bound hierarchy, and charges exactly the observed staleness.
    Every outcome that is not a hit is a *downgrade*, never a rejection —
    the engine path stays the authority on aborts and waits.
    """
    account = txn.import_account
    if account is None or not txn.is_active or object_id in txn.write_set:
        store.fallbacks += 1
        _perf.cache_fallbacks += 1
        return None
    entry = store._entries.get(object_id)
    if entry is None:
        store.misses += 1
        _perf.cache_misses += 1
        return None
    if txn.timestamp < entry.commit_ts:
        staleness = store.distance(
            entry.value, entry.proper_value_for(txn.timestamp)
        )
    else:
        staleness = 0.0
    guarded = staleness + entry.pending_delta
    if guarded > 0.0:
        oil = txn.effective_object_limit(object_id, entry.import_limit)
        charge = account.admit_bounded(object_id, guarded, staleness, oil)
        if not charge.admitted:
            store.fallbacks += 1
            _perf.cache_fallbacks += 1
            return None
    txn.read_set.add(object_id)
    txn.operations += 1
    case = CASE_LATE_READ if staleness > 0.0 else None
    if case is not None:
        txn.inconsistent_operations += 1
        store.divergence_charged += staleness
        _perf.cache_divergence_charged += staleness
    account.observe_value(object_id, entry.value)
    store.hits += 1
    _perf.cache_hits += 1
    return Granted(value=entry.value, inconsistency=staleness, esr_case=case)
