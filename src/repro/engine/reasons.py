"""Canonical abort/rejection reason strings and ESR relaxation cases.

Every reason that can appear on a :class:`~repro.engine.results.Rejected`
outcome, in ``MetricsCollector.aborts_by_reason``, on a history event, or
in a wire-level ``{"error": "aborted", "reason": ...}`` response is
defined here once.  The engines, the servers, the runtime, the metrics
and the offline conformance checker (:mod:`repro.check`) all share these
constants, so a reason string can never drift between the layer that
produces it and the layer that interprets it.

Grouping:

* **Concurrency-control rejections** — the engine rejected an operation
  and auto-aborted the transaction (the paper's protocol: clients
  resubmit under a fresh timestamp).
* **Host/runtime aborts** — the hosting runtime gave up on a transaction
  (client went away, a wait timed out, a retry budget ran out).
* **Infrastructure aborts** — the engine substrate failed underneath the
  transaction (a shard worker process died).
"""

from __future__ import annotations

__all__ = [
    "CASE_LATE_READ",
    "CASE_READ_UNCOMMITTED",
    "CASE_LATE_WRITE",
    "ESR_CASES",
    "REASON_LATE_READ",
    "REASON_LATE_WRITE",
    "REASON_BOUND_VIOLATION",
    "REASON_WRITE_CONFLICT",
    "REASON_DEADLOCK",
    "REASON_CONFLICT_ABORT",
    "REASON_CLIENT_ABORT",
    "REASON_CLIENT_DISCONNECTED",
    "REASON_WAIT_TIMEOUT",
    "REASON_AGGREGATE_BOUND",
    "REASON_RETRY_EXHAUSTED",
    "REASON_SHARD_FAILOVER",
    "REASON_UNKNOWN",
    "ALL_REASONS",
    "REJECTION_REASONS",
]

# -- ESR relaxation cases (paper Figure 3) ----------------------------------

#: Case 1 — a query read arrives after a newer committed write.
CASE_LATE_READ = "late-read-committed"
#: Case 2 — a query read views uncommitted data.
CASE_READ_UNCOMMITTED = "read-uncommitted"
#: Case 3 — an update write arrives after a newer query read.
CASE_LATE_WRITE = "late-write"

#: Every relaxation case, in paper order.
ESR_CASES = (CASE_LATE_READ, CASE_READ_UNCOMMITTED, CASE_LATE_WRITE)

# -- concurrency-control rejections -----------------------------------------

#: A read arrived too late under strict timestamp ordering.
REASON_LATE_READ = "late-read"
#: A write arrived too late under strict timestamp ordering.
REASON_LATE_WRITE = "late-write"
#: Admitting the operation would exceed an inconsistency bound level.
REASON_BOUND_VIOLATION = "bound-violation"
#: Two updates staged writes on the same object (never relaxed).
REASON_WRITE_CONFLICT = "write-write-conflict"
#: The 2PL deadlock detector broke a cycle by aborting this transaction.
REASON_DEADLOCK = "deadlock"
#: Under ``wait_policy="abort"``, a conflict aborts instead of waiting.
REASON_CONFLICT_ABORT = "conflict-abort"

# -- host/runtime aborts ----------------------------------------------------

#: The client explicitly aborted (the default ``Engine.abort`` reason).
REASON_CLIENT_ABORT = "client-abort"
#: A connection dropped with the transaction still active.
REASON_CLIENT_DISCONNECTED = "client-disconnected"
#: A strict-ordering wait exceeded the server's ``wait_timeout``.
REASON_WAIT_TIMEOUT = "wait-timeout"
#: A client-side aggregate guard found its bound exceeded.
REASON_AGGREGATE_BOUND = "aggregate-bound-violation"
#: ``run_program`` exhausted its restart budget.
REASON_RETRY_EXHAUSTED = "retry-exhausted"

# -- infrastructure aborts --------------------------------------------------

#: A shard worker process died; transactions that touched it abort.
REASON_SHARD_FAILOVER = "shard-failover"

#: Fallback when an abort arrives with no reason at all.
REASON_UNKNOWN = "unknown"

#: Reasons produced by the concurrency control itself — a transaction
#: aborted for one of these was *rejected* by the protocol, not by its
#: host; the checker uses this to pair rejection events with aborts.
REJECTION_REASONS = frozenset(
    {
        REASON_LATE_READ,
        REASON_LATE_WRITE,
        REASON_BOUND_VIOLATION,
        REASON_WRITE_CONFLICT,
        REASON_DEADLOCK,
        REASON_CONFLICT_ABORT,
    }
)

#: Every known reason (checker warns on histories carrying others).
ALL_REASONS = frozenset(
    {
        REASON_LATE_READ,
        REASON_LATE_WRITE,
        REASON_BOUND_VIOLATION,
        REASON_WRITE_CONFLICT,
        REASON_DEADLOCK,
        REASON_CONFLICT_ABORT,
        REASON_CLIENT_ABORT,
        REASON_CLIENT_DISCONNECTED,
        REASON_WAIT_TIMEOUT,
        REASON_AGGREGATE_BOUND,
        REASON_RETRY_EXHAUSTED,
        REASON_SHARD_FAILOVER,
        REASON_UNKNOWN,
    }
)
