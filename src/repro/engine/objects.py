"""Data objects: values, timestamps, version history, reader registry.

Each object carries everything the ESR-enhanced timestamp-ordering protocol
needs (paper sections 5 and 6):

* its **present value** — the current in-memory value, which is the
  uncommitted value while an update transaction's write is pending (the
  prototype writes in place, keeping a shadow copy for abort restore);
* ``rts`` — the newest read timestamp, plus whether that read came from a
  query ET (Figure 3's case 3 applies only then);
* ``wts`` — the newest *committed* write timestamp, and the identity and
  timestamp of the pending uncommitted write, if any;
* a bounded **version list** of the last ``N`` committed writes (the paper
  uses N=20), used to find a query's *proper value* by walking backwards to
  the newest write older than the query's timestamp — explicitly *not*
  multi-version concurrency control: reads always return the present
  value; old versions are consulted only to measure inconsistency;
* a **reader registry** of uncommitted query ETs that have read the object,
  each with the proper value it observed, used to compute the export
  divergence of a late write.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, NamedTuple

from repro.core.bounds import ObjectBounds
from repro.engine.timestamps import GENESIS, Timestamp

__all__ = ["Version", "DEFAULT_VERSION_WINDOW", "DataObject"]

#: The paper's empirical window: average query duration divided by average
#: update duration came out to roughly 20 writes.
DEFAULT_VERSION_WINDOW = 20


class Version(NamedTuple):
    """One committed write: the timestamp it carried and the value written."""

    timestamp: Timestamp
    value: float


class DataObject:
    """A single database object and its concurrency-control state."""

    __slots__ = (
        "object_id",
        "bounds",
        "committed_value",
        "committed_write_ts",
        "read_ts",
        "last_reader_was_query",
        "writer_id",
        "writer_ts",
        "uncommitted_value",
        "shadow_value",
        "_versions",
        "query_readers",
    )

    def __init__(
        self,
        object_id: int,
        value: float,
        bounds: ObjectBounds | None = None,
        version_window: int = DEFAULT_VERSION_WINDOW,
    ):
        self.object_id = object_id
        self.bounds = bounds if bounds is not None else ObjectBounds()
        self.committed_value = float(value)
        self.committed_write_ts: Timestamp = GENESIS
        self.read_ts: Timestamp = GENESIS
        self.last_reader_was_query = False
        # Pending uncommitted write, if any.
        self.writer_id: int | None = None
        self.writer_ts: Timestamp = GENESIS
        self.uncommitted_value = 0.0
        self.shadow_value = 0.0
        # Committed write history, oldest first; seeded with the initial
        # load so a proper value always exists until the window overflows.
        self._versions: Deque[Version] = deque(maxlen=max(1, version_window))
        self._versions.append(Version(GENESIS, float(value)))
        # Uncommitted query readers: transaction id -> proper value at read.
        self.query_readers: dict[int, float] = {}

    # -- value views --------------------------------------------------------

    @property
    def present_value(self) -> float:
        """The value a read executed right now would return.

        While an uncommitted write is pending this is the uncommitted
        value — the prototype updates in place (shadow paging), so the
        "current instance of the object" already reflects the pending
        write (paper section 5.1).
        """
        if self.writer_id is not None:
            return self.uncommitted_value
        return self.committed_value

    @property
    def has_uncommitted_write(self) -> bool:
        return self.writer_id is not None

    def proper_value_for(self, timestamp: Timestamp) -> float:
        """The *proper value* for a reader with the given timestamp.

        Walks the committed version list backwards to the newest write
        older than ``timestamp`` (paper section 5.1).  When the reader is
        older than everything retained in the window — the history has
        been trimmed past it — the oldest retained version is returned as
        the best available approximation, which can only *under*-estimate
        the divergence; the window is sized (20) so that in practice a
        query never outlives it.
        """
        for version in reversed(self._versions):
            if version.timestamp < timestamp:
                return version.value
        return self._versions[0].value

    def versions(self) -> tuple[Version, ...]:
        """The retained committed versions, oldest first."""
        return tuple(self._versions)

    # -- read-side bookkeeping ------------------------------------------------

    def record_read(
        self,
        transaction_id: int,
        timestamp: Timestamp,
        is_query: bool,
        proper_value: float,
    ) -> None:
        """Update read timestamp state and the query-reader registry."""
        if timestamp > self.read_ts:
            self.read_ts = timestamp
            self.last_reader_was_query = is_query
        if is_query:
            self.query_readers[transaction_id] = proper_value

    def forget_reader(self, transaction_id: int) -> None:
        """Drop a query from the reader registry (on commit or abort)."""
        self.query_readers.pop(transaction_id, None)

    # -- write-side bookkeeping -----------------------------------------------

    def stage_write(
        self, transaction_id: int, timestamp: Timestamp, value: float
    ) -> None:
        """Apply a write in place, keeping a shadow copy for abort restore.

        A second write by the *same* transaction overwrites the staged
        value but keeps the original shadow, so an abort still restores
        the pre-transaction state.
        """
        if self.writer_id is None:
            self.shadow_value = self.committed_value
        elif self.writer_id != transaction_id:
            raise AssertionError(
                f"object {self.object_id}: write by {transaction_id} staged "
                f"over uncommitted write by {self.writer_id}"
            )
        self.writer_id = transaction_id
        self.writer_ts = timestamp
        self.uncommitted_value = float(value)

    def commit_write(self) -> None:
        """Promote the staged write to the committed state."""
        if self.writer_id is None:
            return
        self.committed_value = self.uncommitted_value
        self.committed_write_ts = self.writer_ts
        self._versions.append(Version(self.writer_ts, self.committed_value))
        self.writer_id = None
        self.writer_ts = GENESIS

    def adopt_committed(self, value: float, timestamp: Timestamp) -> None:
        """Install a committed write decided in another process.

        The process-sharded engine's parent keeps a mirror of committed
        state: each shard worker reports the (value, write-timestamp)
        pairs a commit produced, and the mirror adopts them so reports,
        tests and worker failover all see coherent committed data.  The
        version history grows exactly as :meth:`commit_write` would grow
        it; pending-write state is untouched (the mirror never stages).
        """
        self.committed_value = float(value)
        self.committed_write_ts = timestamp
        self._versions.append(Version(timestamp, self.committed_value))

    def abort_write(self) -> None:
        """Discard the staged write, restoring the shadow value."""
        if self.writer_id is None:
            return
        self.committed_value = self.shadow_value
        self.writer_id = None
        self.writer_ts = GENESIS

    def __repr__(self) -> str:
        pending = f", writer={self.writer_id}" if self.writer_id is not None else ""
        return (
            f"DataObject(id={self.object_id}, value={self.present_value:g}"
            f"{pending})"
        )
