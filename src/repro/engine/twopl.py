"""Two-phase-locking divergence control — the Wu et al. alternative.

The paper builds ESR on timestamp ordering; its reference [21] builds
the same correctness notion on strict 2PL ("divergence control").  This
manager implements that engine behind the *same interface* as
:class:`~repro.engine.manager.TransactionManager` — begin / read /
write / commit / abort returning Granted / MustWait / Rejected, waits
routed through a :class:`~repro.engine.scheduler.WaitRegistry` — so the
simulator and the networked server host either engine unchanged, and
the two can be compared head-to-head on identical workloads.

Lock semantics:

* reads take S locks, writes take X locks, all held to end of
  transaction (strict 2PL); aborts restore shadow values;
* **import relaxation** — a query whose S request hits an update's X
  lock may *read through* the lock (no lock taken): it sees the staged
  value, charging ``distance(staged, committed)`` against its
  OIL/group/TIL hierarchy.  This is the lock-world twin of the paper's
  case 2;
* **export relaxation** — an update whose X request hits query S locks
  may write *past* them, charging ``distance(new value, what the
  readers saw)`` (max over readers, the paper's policy) against its
  OEL/group/TEL.  The twin of case 3;
* update reads, and write-write conflicts, are never relaxed (the
  paper's consistent-update-ET setting);
* unlike TSO's age-ordered waits, 2PL waits can deadlock.  Before a
  transaction parks, the manager walks the wait-for relation; if the
  new edge would close a cycle the requester is rejected (deadlock
  victim) and restarts with the client's usual resubmission loop.

Rejections for deadlock carry reason ``"deadlock"`` — a category the
TSO engine never produces, which the comparison benchmark surfaces.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.bounds import EpsilonLevel, TransactionBounds
from repro.core.divergence import export_divergence, import_divergence
from repro.core.metric import DistanceFunction, absolute_distance
from repro.engine.database import Database
from repro.engine.history import HistoryRecorder
from repro.engine.locks import LockTable
from repro.engine.metrics import MetricsCollector
from repro.engine.reasons import REASON_CLIENT_ABORT, REASON_DEADLOCK
from repro.engine.results import (
    CASE_LATE_WRITE,
    CASE_READ_UNCOMMITTED,
    Granted,
    MustWait,
    Outcome,
    Rejected,
)
from repro.engine.scheduler import WaitRegistry
from repro.engine.timestamps import Timestamp, TimestampGenerator
from repro.engine.transactions import (
    TransactionKind,
    TransactionState,
    TransactionStatus,
)
from repro.errors import InvalidOperation

__all__ = ["REASON_DEADLOCK", "TwoPhaseManager"]


class TwoPhaseManager:
    """Strict-2PL divergence control over one :class:`Database`."""

    def __init__(
        self,
        database: Database,
        relaxed: bool = True,
        distance: DistanceFunction = absolute_distance,
        export_policy: str = "max",
        metrics: MetricsCollector | None = None,
        timestamps: TimestampGenerator | None = None,
        recorder: HistoryRecorder | None = None,
        record_history: bool = False,
    ):
        self.database = database
        #: With ``relaxed`` False this is plain strict 2PL (the SR
        #: baseline in lock form); bounds are ignored entirely.
        self.relaxed = relaxed
        #: Registry name (see :mod:`repro.engine.api`).
        self.protocol = "2pl" if relaxed else "2pl-sr"
        #: No snapshot read cache on the lock-based engines.
        self.snapshot = None
        self.distance = distance
        self.export_policy = export_policy
        if recorder is not None:
            self.recorder = recorder
        else:
            self.recorder = HistoryRecorder(metrics, record=record_history)
        self.metrics = self.recorder.metrics
        self.waits = WaitRegistry()
        self.locks = LockTable()
        self._timestamps = (
            timestamps if timestamps is not None else TimestampGenerator()
        )
        self._next_id = 1
        self._active: dict[int, TransactionState] = {}

    # -- lifecycle ------------------------------------------------------------------

    def begin(
        self,
        kind: TransactionKind | str,
        bounds: TransactionBounds | EpsilonLevel | None = None,
        timestamp: Timestamp | None = None,
        group_limits: Mapping[str, float] | None = None,
        object_limits: Mapping[int, float] | None = None,
        allow_inconsistent_reads: bool = False,
    ) -> TransactionState:
        """Start a transaction (interface-compatible with the TSO manager)."""
        if isinstance(kind, str):
            kind = TransactionKind(kind.lower())
        if bounds is None:
            bounds = TransactionBounds()
        elif isinstance(bounds, EpsilonLevel):
            bounds = bounds.transaction
        if timestamp is None:
            timestamp = self._timestamps.next()
        txn = TransactionState(
            transaction_id=self._next_id,
            kind=kind,
            timestamp=timestamp,
            bounds=bounds,
            catalog=self.database.catalog,
            group_limits=group_limits,
            object_limits=object_limits,
            allow_inconsistent_reads=allow_inconsistent_reads,
        )
        self._next_id += 1
        self._active[txn.transaction_id] = txn
        self.recorder.begin(txn)
        return txn

    def adopt(self, txn: TransactionState) -> None:
        """Register an externally-built transaction (sharding hook)."""
        self._active[txn.transaction_id] = txn

    def active_transactions(self) -> tuple[TransactionState, ...]:
        return tuple(self._active.values())

    def read_cached(self, txn: TransactionState, object_id: int) -> None:
        """No snapshot cache on the 2PL engines — always fall back."""
        return None

    # -- deadlock handling -----------------------------------------------------------

    def _park_or_break(
        self, txn: TransactionState, blocker: int, op: str, object_id: int
    ) -> Outcome:
        """Wait on ``blocker`` unless that edge would close a cycle."""
        seen = {txn.transaction_id}
        node: int | None = blocker
        while node is not None:
            if node in seen:
                outcome = Rejected(
                    REASON_DEADLOCK,
                    detail=(
                        f"waiting for transaction {blocker} would deadlock "
                        f"transaction {txn.transaction_id}"
                    ),
                )
                self._reject(txn, op, object_id, outcome)
                return outcome
            seen.add(node)
            node = self.waits.waiting_on(node)
        self.recorder.wait(txn, op, object_id, blocker)
        return MustWait(blocker)

    # -- operations -------------------------------------------------------------------

    def read(self, txn: TransactionState, object_id: int) -> Outcome:
        """Submit a read; S lock, or an import-relaxed read-through."""
        txn.require_active()
        obj = self.database.get(object_id)
        blocker = self.locks.acquire_shared(txn.transaction_id, object_id)
        if blocker is None:
            value = (
                obj.uncommitted_value
                if obj.writer_id == txn.transaction_id
                else obj.committed_value
            )
            return self._granted_read(txn, obj, Granted(value=value))
        account = txn.import_account if self.relaxed else None
        if account is not None:
            # Import relaxation: read through the writer's X lock.
            present = obj.present_value
            proper = obj.committed_value
            d = import_divergence(present, proper, self.distance)
            oil = txn.effective_object_limit(
                object_id, obj.bounds.import_limit
            )
            charge = account.admit(object_id, d, oil)
            if charge.admitted:
                case = CASE_READ_UNCOMMITTED if d > 0 else None
                return self._granted_read(
                    txn, obj, Granted(value=present, inconsistency=d, esr_case=case)
                )
        return self._park_or_break(txn, blocker, "read", object_id)

    def write(self, txn: TransactionState, object_id: int, value: float) -> Outcome:
        """Submit a write; X lock, or an export-relaxed write-past."""
        txn.require_active()
        if not txn.is_update:
            raise InvalidOperation(
                f"query transaction {txn.transaction_id} cannot write",
                txn.transaction_id,
            )
        obj = self.database.get(object_id)
        blocker = self.locks.acquire_exclusive(txn.transaction_id, object_id)
        if blocker is None:
            return self._granted_write(txn, obj, value, Granted())
        blocking_txn = self._active.get(blocker)
        if (
            self.relaxed
            and blocking_txn is not None
            and blocking_txn.is_query
            and self.locks.exclusive_holder(object_id)
            in (None, txn.transaction_id)
        ):
            # Export relaxation: every blocking holder is a query reader;
            # charge the worst divergence this write exports to them.
            readers = [
                self._active[holder]
                for holder in self.locks.shared_holders(object_id)
                if holder != txn.transaction_id
                and self._active.get(holder) is not None
            ]
            if all(reader.is_query for reader in readers):
                seen_values = list(obj.query_readers.values()) or [
                    obj.committed_value
                ]
                d = export_divergence(
                    value, seen_values, self.distance, self.export_policy
                )
                oel = txn.effective_object_limit(
                    object_id, obj.bounds.export_limit
                )
                charge = txn.account.admit(object_id, d, oel)
                if charge.admitted:
                    granted = self.locks.acquire_exclusive(
                        txn.transaction_id,
                        object_id,
                        ignore={r.transaction_id for r in readers},
                    )
                    assert granted is None
                    case = CASE_LATE_WRITE if d > 0 else None
                    return self._granted_write(
                        txn, obj, value, Granted(inconsistency=d, esr_case=case)
                    )
                # Export budget exhausted: unlike a late TSO write, a lock
                # conflict is curable by waiting for the readers to finish.
        return self._park_or_break(txn, blocker, "write", object_id)

    # -- effects --------------------------------------------------------------------

    def _granted_read(
        self, txn: TransactionState, obj, outcome: Granted
    ) -> Granted:
        proper = obj.committed_value if txn.is_query else 0.0
        obj.record_read(
            txn.transaction_id, txn.timestamp, txn.is_query, proper
        )
        txn.read_set.add(obj.object_id)
        txn.operations += 1
        if outcome.esr_case is not None:
            txn.inconsistent_operations += 1
        if txn.import_account is not None and outcome.value is not None:
            txn.import_account.observe_value(obj.object_id, outcome.value)
        self.recorder.read(txn, obj.object_id, outcome)
        return outcome

    def _granted_write(
        self, txn: TransactionState, obj, value: float, outcome: Granted
    ) -> Granted:
        obj.stage_write(txn.transaction_id, txn.timestamp, value)
        txn.write_set.add(obj.object_id)
        txn.operations += 1
        if outcome.esr_case is not None:
            txn.inconsistent_operations += 1
        self.recorder.write(txn, obj.object_id, value, outcome)
        return outcome

    def _reject(
        self,
        txn: TransactionState,
        op: str,
        object_id: int | None,
        outcome: Rejected,
    ) -> None:
        self.recorder.rejection(txn, op, object_id, outcome)
        self._finish(txn, TransactionStatus.ABORTED, outcome.reason)

    # -- completion -------------------------------------------------------------------

    def commit(self, txn: TransactionState) -> None:
        txn.require_active()
        self._promote(txn)
        self.recorder.commit(txn)
        self._finish(txn, TransactionStatus.COMMITTED, None)

    def _promote(self, txn: TransactionState) -> None:
        for object_id in txn.write_set:
            self.database.get(object_id).commit_write()

    def complete(
        self,
        txn: TransactionState,
        status: TransactionStatus,
        reason: str | None = None,
    ) -> None:
        """Apply a completion decided by the sharded composite (no metrics)."""
        if status is TransactionStatus.COMMITTED:
            self._promote(txn)
        self._finish(txn, status, reason, record=False)

    def abort(
        self, txn: TransactionState, reason: str = REASON_CLIENT_ABORT
    ) -> None:
        if txn.status is TransactionStatus.ABORTED:
            return
        if txn.status is TransactionStatus.COMMITTED:
            raise InvalidOperation(
                f"cannot abort committed transaction {txn.transaction_id}",
                txn.transaction_id,
            )
        self._finish(txn, TransactionStatus.ABORTED, reason)

    def _finish(
        self,
        txn: TransactionState,
        status: TransactionStatus,
        reason: str | None,
        record: bool = True,
    ) -> None:
        if status is TransactionStatus.ABORTED:
            for object_id in txn.write_set:
                obj = self.database.get(object_id)
                if obj.writer_id == txn.transaction_id:
                    obj.abort_write()
            txn.abort_reason = reason
            if record:
                self.recorder.abort(txn, reason)
        if txn.is_query:
            for object_id in txn.read_set:
                self.database.get(object_id).forget_reader(txn.transaction_id)
        self.locks.release_all(txn.transaction_id)
        txn.status = status
        self._active.pop(txn.transaction_id, None)
        self.waits.fire(txn.transaction_id)

    def __repr__(self) -> str:
        return (
            f"TwoPhaseManager(relaxed={self.relaxed}, "
            f"active={len(self._active)}, objects={len(self.database)})"
        )
