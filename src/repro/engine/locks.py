"""A lock table for two-phase locking.

The paper implements ESR over timestamp ordering but notes that "just
like SR, ESR can be implemented using one of the many concurrency
control mechanisms available" — its reference [21] (Wu, Yu & Pu,
*Divergence Control for Epsilon Serializability*) does it over 2PL.
This lock table supports that alternative engine
(:mod:`repro.engine.twopl`).

Design: retry-based rather than queue-based.  ``acquire`` either grants
the lock or names one blocking holder; the caller (the manager) reports
:class:`~repro.engine.results.MustWait` and the runtime retries after
that transaction finishes — the same discipline the TSO engine uses, so
both engines share the runtimes unchanged.  Deadlocks are possible under
2PL (unlike TSO's age-ordered waits), so the manager performs cycle
detection in the wait-for relation before parking a waiter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["LockMode", "LockTable"]


class LockMode:
    """Lock modes as plain constants."""

    SHARED = "S"
    EXCLUSIVE = "X"


@dataclass
class _ObjectLocks:
    """Holders of one object's locks: txn id -> mode."""

    holders: dict[int, str] = field(default_factory=dict)

    def exclusive_holder(self) -> int | None:
        for txn_id, mode in self.holders.items():
            if mode == LockMode.EXCLUSIVE:
                return txn_id
        return None

    def shared_holders(self) -> list[int]:
        return [
            txn_id
            for txn_id, mode in self.holders.items()
            if mode == LockMode.SHARED
        ]


class LockTable:
    """S/X locks per object, with upgrade support and full release."""

    def __init__(self) -> None:
        self._objects: dict[int, _ObjectLocks] = {}
        # txn id -> object ids it holds locks on (for release-all).
        self._held: dict[int, set[int]] = {}

    def _locks(self, object_id: int) -> _ObjectLocks:
        locks = self._objects.get(object_id)
        if locks is None:
            locks = _ObjectLocks()
            self._objects[object_id] = locks
        return locks

    # -- acquisition --------------------------------------------------------------

    def acquire_shared(self, txn_id: int, object_id: int) -> int | None:
        """Take (or keep) an S lock; returns a blocking txn id or None.

        S is compatible with S.  A transaction already holding X keeps
        reading under it.
        """
        locks = self._locks(object_id)
        current = locks.holders.get(txn_id)
        if current is not None:
            return None  # S or X already held by us covers a read
        exclusive = locks.exclusive_holder()
        if exclusive is not None and exclusive != txn_id:
            return exclusive
        locks.holders[txn_id] = LockMode.SHARED
        self._held.setdefault(txn_id, set()).add(object_id)
        return None

    def acquire_exclusive(
        self, txn_id: int, object_id: int, ignore: set[int] | None = None
    ) -> int | None:
        """Take (or upgrade to) an X lock; returns a blocking txn id.

        ``ignore`` names holders the caller has decided to coexist with
        (the divergence-control relaxation: an update may write past
        query S-holders whose exported inconsistency fits the bounds).
        """
        locks = self._locks(object_id)
        ignore = ignore or set()
        exclusive = locks.exclusive_holder()
        if exclusive is not None and exclusive != txn_id:
            return exclusive
        for holder in locks.shared_holders():
            if holder != txn_id and holder not in ignore:
                return holder
        locks.holders[txn_id] = LockMode.EXCLUSIVE
        self._held.setdefault(txn_id, set()).add(object_id)
        return None

    # -- inspection -----------------------------------------------------------------

    def mode_held(self, txn_id: int, object_id: int) -> str | None:
        return self._locks(object_id).holders.get(txn_id)

    def exclusive_holder(self, object_id: int) -> int | None:
        return self._locks(object_id).exclusive_holder()

    def shared_holders(self, object_id: int) -> list[int]:
        return self._locks(object_id).shared_holders()

    def held_by(self, txn_id: int) -> set[int]:
        return set(self._held.get(txn_id, ()))

    # -- release --------------------------------------------------------------------

    def release_all(self, txn_id: int) -> None:
        """Drop every lock a finished transaction holds."""
        for object_id in self._held.pop(txn_id, set()):
            locks = self._objects.get(object_id)
            if locks is not None:
                locks.holders.pop(txn_id, None)
                if not locks.holders:
                    del self._objects[object_id]

    def __repr__(self) -> str:
        return (
            f"LockTable(objects={len(self._objects)}, "
            f"transactions={len(self._held)})"
        )
