"""Sharded composite engine: per-shard critical sections, one ledger.

:class:`ShardedEngine` partitions one database by object key
(``object_id % shards``) across N inner engines — each a bare manager
built by :func:`repro.engine.api.build_unsharded` over a shard-local
:class:`~repro.engine.database.Database` view that *aliases* the real
objects — and guards each shard with its own lock, so operations on
different shards proceed concurrently.  The hierarchical bound
accounting stays correct across shards:

* **OIL/OEL** charges are decided where they always were — inside the
  per-object admission the shard's inner engine runs under its shard
  lock;
* **TIL/TEL and group limits** span shards.  Every transaction carries
  its usual :class:`~repro.core.accounting.InconsistencyAccount`s, but
  the sharded engine installs one per-transaction lock on them
  (:meth:`~repro.core.accounting.InconsistencyAccount.install_lock`),
  making the object → groups → transaction check-and-charge atomic even
  when two shards admit operations for sibling transactions of the same
  client concurrently.  Exactly-at-limit semantics are untouched — the
  same ledger code runs, just under a lock.

**Sibling transactions.**  ``begin`` allocates the id and timestamp
globally and returns the *global* :class:`TransactionState` (what hosts
hold on to).  The first operation touching a shard lazily creates a
sibling ``TransactionState`` with the same id/timestamp/kind whose
``account`` / ``import_account`` / ``object_limits`` *are* the global
transaction's, and adopts it into the shard's inner engine.  Each inner
engine therefore sees a perfectly ordinary transaction; commit/abort is
decided once globally and applied to every touched shard through the
managers' ``complete`` hook (state effects per shard, metrics recorded
exactly once here).

**Waits.**  All inner engines share one :class:`_SharedWaitRegistry`.
Its ``subscribe`` checks whether the blocking transaction is still
globally active and fires the callback immediately when it is not —
closing the missed-wake-up race where a blocker completes between an
operation returning ``MustWait`` (under the shard lock) and the host
subscribing (outside it).  Completion fires waiters per shard as each
sibling completes and once more after the global cleanup; a waiter woken
early simply retries and re-subscribes (a bounded busy retry while a
multi-shard completion is in flight).

**2PL caveat.**  Deadlock detection walks the shared wait-for relation,
so cross-shard cycles are caught whenever the earlier waiter has
subscribed; two transactions parking simultaneously under different
shard locks can slip past the check, which is why the servers keep their
``wait_timeout`` guard (the standard distributed-2PL position).

With ``shards=1`` the composite is behaviourally identical to the bare
manager on deterministic workloads (pinned by the golden-determinism
equivalence tests) — it adds one lock acquisition per operation and
nothing else.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Mapping

from repro.core.bounds import EpsilonLevel, TransactionBounds
from repro.core.metric import DistanceFunction, absolute_distance
from repro.engine.api import build_unsharded, validate_protocol_options
from repro.engine.database import Database
from repro.engine.history import HistoryRecorder
from repro.engine.metrics import MetricsCollector
from repro.engine.reasons import REASON_CLIENT_ABORT
from repro.engine.results import Granted, Outcome, Rejected
from repro.engine.scheduler import WaitRegistry
from repro.engine.timestamps import Timestamp, TimestampGenerator
from repro.engine.transactions import (
    TransactionKind,
    TransactionState,
    TransactionStatus,
)
from repro.errors import InvalidOperation

__all__ = ["ShardedEngine", "absorb_granted"]


def absorb_granted(
    txn: TransactionState, object_id: int, outcome: Granted, is_read: bool
) -> None:
    """Mirror one granted shard outcome onto the global transaction state.

    The shared absorption seam of both sharded composites (threads and
    processes): read/write sets, the operation count, and the
    inconsistent-operation tally move to the global transaction exactly
    as the bare manager would have recorded them on itself.
    """
    if is_read:
        txn.read_set.add(object_id)
    else:
        txn.write_set.add(object_id)
    txn.operations += 1
    if outcome.esr_case is not None:
        txn.inconsistent_operations += 1


class _LockedMetrics(MetricsCollector):
    """A metrics collector safe to share across shard threads."""

    def __init__(self) -> None:
        super().__init__()
        self._lock = threading.Lock()

    def record_read(self, esr_case: str | None) -> None:
        with self._lock:
            super().record_read(esr_case)

    def record_write(self, esr_case: str | None) -> None:
        with self._lock:
            super().record_write(esr_case)

    def record_wait(self) -> None:
        with self._lock:
            super().record_wait()

    def record_rejection(self) -> None:
        with self._lock:
            super().record_rejection()

    def record_commit(
        self, is_query: bool, imported: float, exported: float
    ) -> None:
        with self._lock:
            super().record_commit(is_query, imported, exported)

    def record_abort(self, reason: str) -> None:
        with self._lock:
            super().record_abort(reason)


#: Self-fire backoff while a multi-shard completion is in flight: first
#: retry sleeps the initial quantum, each further retry doubles it up to
#: the cap.  The cap keeps the waiter responsive (a completion holds a
#: shard lock for microseconds, not milliseconds); the growth stops the
#: subscribe-retry loop from spinning a core when the blocker's slowest
#: shard takes long to complete.
_SELF_FIRE_BACKOFF_INITIAL = 0.0001
_SELF_FIRE_BACKOFF_CAP = 0.005


class _SharedWaitRegistry(WaitRegistry):
    """One wait registry shared by every shard's inner engine.

    Thread-safe, and subscription-time aware of completion: if the
    blocking transaction is no longer globally active when a waiter
    subscribes, the callback fires immediately instead of being parked
    forever (the subscriber raced the completion).

    While the blocker's completion is still being applied shard by shard
    (``is_completing``), consecutive self-fires for the same waiter sleep
    a capped exponential backoff first — the retry loop stays a *bounded*
    busy retry instead of a core-burning spin when the blocker commits
    late on one of its other shards.
    """

    def __init__(
        self,
        is_active: Callable[[int], bool],
        is_completing: Callable[[int], bool] | None = None,
    ) -> None:
        super().__init__()
        self._lock = threading.RLock()
        self._is_active = is_active
        self._is_completing = (
            is_completing if is_completing is not None else lambda _txn: False
        )
        #: (waiter, blocker) -> consecutive self-fires against an
        #: in-flight completion, driving the backoff schedule.
        self._self_fires: dict[tuple[int | None, int], int] = {}

    def subscribe(
        self,
        blocking_transaction: int,
        callback: Callable[[], None],
        waiter_transaction: int | None = None,
    ) -> None:
        backoff = 0.0
        with self._lock:
            if self._is_active(blocking_transaction):
                self._self_fires.pop(
                    (waiter_transaction, blocking_transaction), None
                )
                super().subscribe(
                    blocking_transaction,
                    callback,
                    waiter_transaction=waiter_transaction,
                )
                return
            if self._is_completing(blocking_transaction):
                key = (waiter_transaction, blocking_transaction)
                count = self._self_fires.get(key, 0)
                self._self_fires[key] = count + 1
                backoff = min(
                    _SELF_FIRE_BACKOFF_INITIAL * (2**count),
                    _SELF_FIRE_BACKOFF_CAP,
                )
        if backoff > 0.0:
            time.sleep(backoff)
        callback()

    def fire(self, completed_transaction: int) -> int:
        with self._lock:
            callbacks = self._waiters.pop(completed_transaction, [])
            self._waiting_on.pop(completed_transaction, None)
            stale = [
                waiter
                for waiter, blocker in self._waiting_on.items()
                if blocker == completed_transaction
            ]
            for waiter in stale:
                del self._waiting_on[waiter]
            done = [
                key
                for key in self._self_fires
                if key[1] == completed_transaction
            ]
            for key in done:
                del self._self_fires[key]
        for callback in callbacks:
            callback()
        return len(callbacks)

    def waiting_on(self, waiter_transaction: int) -> int | None:
        with self._lock:
            return self._waiting_on.get(waiter_transaction)

    def pending_waiters(self) -> int:
        with self._lock:
            return sum(len(cbs) for cbs in self._waiters.values())


class _AggregateSnapshot:
    """Read-only union view over the shards' snapshot stores."""

    def __init__(self, stores: tuple) -> None:
        self.stores = stores

    def stats(self) -> dict[str, float]:
        totals = {
            "hits": 0.0,
            "misses": 0.0,
            "fallbacks": 0.0,
            "divergence_charged": 0.0,
        }
        for store in self.stores:
            for key, value in store.stats().items():
                totals[key] = totals.get(key, 0.0) + value
        return totals

    @property
    def hits(self) -> float:
        return sum(store.hits for store in self.stores)

    def __len__(self) -> int:
        return sum(len(store) for store in self.stores)

    def __repr__(self) -> str:
        return f"_AggregateSnapshot(shards={len(self.stores)})"


class ShardedEngine:
    """N per-shard engines behind the one :class:`~repro.engine.api.Engine`
    interface, with cross-shard hierarchical bound accounting."""

    #: Hosts holding a global engine mutex may skip it for this engine —
    #: every entry point takes the locks it needs itself.
    thread_safe = True

    def __init__(
        self,
        database: Database,
        protocol: str = "esr",
        *,
        shards: int,
        distance: DistanceFunction = absolute_distance,
        export_policy: str = "max",
        wait_policy: str = "wait",
        snapshot_cache: bool = False,
        metrics: MetricsCollector | None = None,
        timestamps: TimestampGenerator | None = None,
        recorder: HistoryRecorder | None = None,
        record_history: bool = False,
    ):
        spec = validate_protocol_options(
            protocol,
            snapshot_cache=snapshot_cache,
            wait_policy=wait_policy,
            shards=shards,
        )
        self.database = database
        self.protocol = protocol
        self.shards = shards
        self.wait_policy = wait_policy
        self.export_policy = export_policy
        self.distance = distance
        if recorder is not None:
            self.recorder = recorder
        else:
            self.recorder = HistoryRecorder(
                metrics if metrics is not None else _LockedMetrics(),
                record=record_history,
            )
        self.metrics = self.recorder.metrics
        self._timestamps = (
            timestamps if timestamps is not None else TimestampGenerator()
        )
        self._next_id = 1
        #: Guards id/timestamp allocation and the global transaction maps.
        self._txn_lock = threading.Lock()
        self._active: dict[int, TransactionState] = {}
        #: Global txn id -> {shard index: sibling TransactionState}.
        self._siblings: dict[int, dict[int, TransactionState]] = {}
        #: Transactions popped from ``_active`` whose per-shard completion
        #: is still being applied — waiters self-firing against these back
        #: off instead of spinning (see :class:`_SharedWaitRegistry`).
        self._completing: set[int] = set()
        self.waits = _SharedWaitRegistry(
            self._is_globally_active, self._is_completing
        )
        # Partition: shard-local Database views aliasing the real objects
        # (and sharing the real catalog), one inner engine + lock each.
        self._databases = [
            Database(
                catalog=database.catalog,
                version_window=database.version_window,
            )
            for _ in range(shards)
        ]
        for obj in database.objects():
            self._databases[obj.object_id % shards].adopt_object(obj)
        self._locks = [threading.Lock() for _ in range(shards)]
        self._engines = []
        for shard_index, shard_db in enumerate(self._databases):
            inner = build_unsharded(
                shard_db,
                spec,
                distance=distance,
                export_policy=export_policy,
                wait_policy=wait_policy,
                snapshot_cache=snapshot_cache,
                recorder=self.recorder.for_shard(shard_index),
                timestamps=self._timestamps,
            )
            inner.waits = self.waits
            self._engines.append(inner)
        if snapshot_cache:
            self.snapshot = _AggregateSnapshot(
                tuple(engine.snapshot for engine in self._engines)
            )
        else:
            self.snapshot = None

    # -- routing ---------------------------------------------------------------

    def shard_of(self, object_id: int) -> int:
        return object_id % self.shards

    def _is_globally_active(self, transaction_id: int) -> bool:
        return transaction_id in self._active

    def _is_completing(self, transaction_id: int) -> bool:
        return transaction_id in self._completing

    # -- lifecycle -------------------------------------------------------------

    def begin(
        self,
        kind: TransactionKind | str,
        bounds: TransactionBounds | EpsilonLevel | None = None,
        timestamp: Timestamp | None = None,
        group_limits: Mapping[str, float] | None = None,
        object_limits: Mapping[int, float] | None = None,
        allow_inconsistent_reads: bool = False,
    ) -> TransactionState:
        if isinstance(kind, str):
            kind = TransactionKind(kind.lower())
        if bounds is None:
            bounds = TransactionBounds()
        elif isinstance(bounds, EpsilonLevel):
            bounds = bounds.transaction
        with self._txn_lock:
            if timestamp is None:
                timestamp = self._timestamps.next()
            txn = TransactionState(
                transaction_id=self._next_id,
                kind=kind,
                timestamp=timestamp,
                bounds=bounds,
                catalog=self.database.catalog,
                group_limits=group_limits,
                object_limits=object_limits,
                allow_inconsistent_reads=allow_inconsistent_reads,
            )
            self._next_id += 1
            # TIL/TEL and group totals span shards: make the ledger's
            # check-and-charge atomic across concurrent shard threads.
            account_lock = threading.RLock()
            txn.account.install_lock(account_lock)
            if (
                txn.import_account is not None
                and txn.import_account is not txn.account
            ):
                txn.import_account.install_lock(account_lock)
            self._active[txn.transaction_id] = txn
            self._siblings[txn.transaction_id] = {}
        self.recorder.begin(txn)
        return txn

    def adopt(self, txn: TransactionState) -> None:
        """Register an externally-built transaction as globally active."""
        with self._txn_lock:
            self._active[txn.transaction_id] = txn
            self._siblings[txn.transaction_id] = {}

    def active_transactions(self) -> tuple[TransactionState, ...]:
        return tuple(self._active.values())

    def _sibling(
        self, txn: TransactionState, shard: int
    ) -> TransactionState:
        """The per-shard twin of ``txn``; created on first touch.

        Called under the shard's lock.  A transaction's operations are
        serialised by its client connection, so sibling creation for one
        transaction is single-threaded.
        """
        try:
            shard_map = self._siblings[txn.transaction_id]
        except KeyError:
            raise InvalidOperation(
                f"transaction {txn.transaction_id} is not active",
                txn.transaction_id,
            ) from None
        sibling = shard_map.get(shard)
        if sibling is None:
            sibling = TransactionState(
                transaction_id=txn.transaction_id,
                kind=txn.kind,
                timestamp=txn.timestamp,
                bounds=txn.bounds,
                catalog=self.database.catalog,
            )
            # The accounts *are* the global transaction's — every shard
            # charges the same TIL/GIL ledger (under its lock).
            sibling.account = txn.account
            sibling.import_account = txn.import_account
            sibling.object_limits = txn.object_limits
            shard_map[shard] = sibling
            self._engines[shard].adopt(sibling)
        return sibling

    # -- operations -------------------------------------------------------------

    def read(self, txn: TransactionState, object_id: int) -> Outcome:
        txn.require_active()
        shard = object_id % self.shards
        with self._locks[shard]:
            sibling = self._sibling(txn, shard)
            outcome = self._engines[shard].read(sibling, object_id)
        return self._absorb(txn, object_id, outcome, is_read=True)

    def write(
        self, txn: TransactionState, object_id: int, value: float
    ) -> Outcome:
        txn.require_active()
        if not txn.is_update:
            raise InvalidOperation(
                f"query transaction {txn.transaction_id} cannot write",
                txn.transaction_id,
            )
        shard = object_id % self.shards
        with self._locks[shard]:
            sibling = self._sibling(txn, shard)
            outcome = self._engines[shard].write(sibling, object_id, value)
        return self._absorb(txn, object_id, outcome, is_read=False)

    def read_cached(
        self, txn: TransactionState, object_id: int
    ) -> Granted | None:
        """Snapshot-cache fast path, pre-lock — routed to the shard's store.

        Safe without the shard lock for the same reason the unsharded
        fast path is safe without the engine mutex: the store publishes
        immutable records, the transaction's account is (here) locked,
        and one transaction's operations are serialised by its
        connection.
        """
        if self.snapshot is None:
            return None
        return self._engines[object_id % self.shards].read_cached(
            txn, object_id
        )

    def _absorb(
        self,
        txn: TransactionState,
        object_id: int,
        outcome: Outcome,
        is_read: bool,
    ) -> Outcome:
        """Mirror a shard outcome onto the global transaction state."""
        if isinstance(outcome, Granted):
            absorb_granted(txn, object_id, outcome, is_read)
        elif isinstance(outcome, Rejected):
            # The shard already recorded the rejection and aborted (and
            # finished) the sibling it saw; propagate the abort to every
            # other touched shard and close out the global transaction.
            self._finish_global(
                txn,
                TransactionStatus.ABORTED,
                outcome.reason,
                record=False,
                already_finished=object_id % self.shards,
            )
        return outcome

    # -- completion --------------------------------------------------------------

    def commit(self, txn: TransactionState) -> None:
        txn.require_active()
        self._finish_global(txn, TransactionStatus.COMMITTED, None, record=True)

    def abort(
        self, txn: TransactionState, reason: str = REASON_CLIENT_ABORT
    ) -> None:
        if txn.status is TransactionStatus.ABORTED:
            return
        if txn.status is TransactionStatus.COMMITTED:
            raise InvalidOperation(
                f"cannot abort committed transaction {txn.transaction_id}",
                txn.transaction_id,
            )
        self._finish_global(txn, TransactionStatus.ABORTED, reason, record=True)

    def _finish_global(
        self,
        txn: TransactionState,
        status: TransactionStatus,
        reason: str | None,
        record: bool,
        already_finished: int | None = None,
    ) -> None:
        """Decide the completion once, apply it to every touched shard.

        The global maps are popped *first* (under the txn lock), so any
        waiter subscribing after this point sees the blocker as inactive
        and self-fires; waiters subscribed before it are woken by the
        per-shard fires and the final fire below.
        """
        with self._txn_lock:
            self._completing.add(txn.transaction_id)
            shard_map = self._siblings.pop(txn.transaction_id, {})
            self._active.pop(txn.transaction_id, None)
        for shard in sorted(shard_map):
            if shard == already_finished:
                continue
            sibling = shard_map[shard]
            with self._locks[shard]:
                self._engines[shard].complete(sibling, status, reason)
        if status is TransactionStatus.ABORTED:
            txn.abort_reason = reason
            if record:
                self.recorder.abort(txn, reason)
        elif record:
            self.recorder.commit(txn)
        txn.status = status
        self.waits.fire(txn.transaction_id)
        self._completing.discard(txn.transaction_id)

    def __repr__(self) -> str:
        return (
            f"ShardedEngine(protocol={self.protocol!r}, "
            f"shards={self.shards}, active={len(self._active)}, "
            f"objects={len(self.database)})"
        )
