"""Multi-version timestamp ordering — the baseline section 5.1 contrasts.

The paper keeps a per-object list of the last 20 committed writes and is
careful to say its scheme "is not the same as multi-version timestamp
ordering (MVTO).  In the MVTO case, timestamped versions are maintained
so that if a read operation arrives late, based on the versions, the
value written by the last write with a timestamp lesser than this read
is returned.  However in our case, the value read is the value of the
current instance of the object … the [older] value is only used in
determining the amount of inconsistency."

This module implements that contrasted system, behind the same manager
interface as the TSO and 2PL engines, so the three can be compared on
identical workloads:

* a read returns the newest *committed* version older than the reader's
  timestamp — late readers silently get old data instead of either
  aborting (SR) or importing bounded inconsistency (ESR).  Query reads
  therefore never abort and never wait;
* each version tracks the largest read timestamp that observed it; a
  write is rejected when it would invalidate such an observation
  (a reader with a newer timestamp already read the version this write
  would supersede);
* a write older than an existing committed version is also rejected
  (no rewriting history);
* writes conflict on uncommitted writes as usual (strict: wait).

MVTO queries are perfectly serializable — but the answer they give is
*as of the query's start*, growing staler the longer the query runs.
ESR's pitch against MVTO is exactly that trade: bounded-error *current*
data versus exact *old* data (plus MVTO's version storage).  The
comparison benchmark measures both sides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.bounds import EpsilonLevel, TransactionBounds
from repro.engine.database import Database
from repro.engine.history import HistoryRecorder
from repro.engine.metrics import MetricsCollector
from repro.engine.reasons import REASON_CLIENT_ABORT
from repro.engine.results import (
    Granted,
    MustWait,
    Outcome,
    Rejected,
    REASON_LATE_WRITE,
)
from repro.engine.scheduler import WaitRegistry
from repro.engine.timestamps import GENESIS, Timestamp, TimestampGenerator
from repro.engine.transactions import (
    TransactionKind,
    TransactionState,
    TransactionStatus,
)
from repro.errors import InvalidOperation, UnknownObjectError

__all__ = ["MVTOManager"]


@dataclass
class _Version:
    """One committed version: write timestamp, value, newest read stamp."""

    wts: Timestamp
    value: float
    rts: Timestamp


class _MVObject:
    """Version chain plus at most one staged (uncommitted) write.

    Chains are trimmed to ``max_versions`` (oldest first) — the storage
    cost the paper's scheme avoids by keeping only the current instance;
    a reader older than everything retained gets the oldest version.
    """

    __slots__ = (
        "versions",
        "writer_id",
        "staged_wts",
        "staged_value",
        "max_versions",
    )

    def __init__(self, initial: float, max_versions: int = 64):
        self.versions: list[_Version] = [_Version(GENESIS, initial, GENESIS)]
        self.writer_id: int | None = None
        self.staged_wts: Timestamp = GENESIS
        self.staged_value = 0.0
        self.max_versions = max(1, max_versions)

    def version_for(self, ts: Timestamp) -> _Version:
        """Newest committed version with wts < ts (chain is wts-sorted)."""
        for version in reversed(self.versions):
            if version.wts < ts:
                return version
        return self.versions[0]

    def install(self, wts: Timestamp, value: float) -> None:
        """Insert a committed version keeping the chain sorted by wts."""
        index = len(self.versions)
        while index > 0 and self.versions[index - 1].wts > wts:
            index -= 1
        self.versions.insert(index, _Version(wts, value, GENESIS))
        if len(self.versions) > self.max_versions:
            del self.versions[: len(self.versions) - self.max_versions]

    @property
    def latest_value(self) -> float:
        return self.versions[-1].value


class MVTOManager:
    """Multi-version timestamp ordering over one :class:`Database`.

    Interface-compatible with the TSO and 2PL managers.  Transaction
    bounds are accepted and ignored — MVTO is a serializable system; it
    needs no epsilon.  The manager keeps its own version store seeded
    from the database and writes committed values back through the
    database objects so snapshots remain coherent.
    """

    def __init__(
        self,
        database: Database,
        metrics: MetricsCollector | None = None,
        timestamps: TimestampGenerator | None = None,
        recorder: HistoryRecorder | None = None,
        record_history: bool = False,
    ):
        self.database = database
        #: Registry name (see :mod:`repro.engine.api`).
        self.protocol = "mvto"
        #: No snapshot read cache — MVTO's version store is its own cache.
        self.snapshot = None
        if recorder is not None:
            self.recorder = recorder
        else:
            self.recorder = HistoryRecorder(metrics, record=record_history)
        self.metrics = self.recorder.metrics
        self.waits = WaitRegistry()
        self._timestamps = (
            timestamps if timestamps is not None else TimestampGenerator()
        )
        self._next_id = 1
        self._active: dict[int, TransactionState] = {}
        self._store: dict[int, _MVObject] = {
            object_id: _MVObject(database.get(object_id).committed_value)
            for object_id in database.object_ids()
        }

    def _object(self, object_id: int) -> _MVObject:
        try:
            return self._store[object_id]
        except KeyError:
            raise UnknownObjectError(f"no object with id {object_id}") from None

    # -- lifecycle ------------------------------------------------------------------

    def begin(
        self,
        kind: TransactionKind | str,
        bounds: TransactionBounds | EpsilonLevel | None = None,
        timestamp: Timestamp | None = None,
        group_limits: Mapping[str, float] | None = None,
        object_limits: Mapping[int, float] | None = None,
        allow_inconsistent_reads: bool = False,
    ) -> TransactionState:
        if isinstance(kind, str):
            kind = TransactionKind(kind.lower())
        if bounds is None:
            bounds = TransactionBounds()
        elif isinstance(bounds, EpsilonLevel):
            bounds = bounds.transaction
        if timestamp is None:
            timestamp = self._timestamps.next()
        txn = TransactionState(
            transaction_id=self._next_id,
            kind=kind,
            timestamp=timestamp,
            bounds=bounds,
            catalog=self.database.catalog,
            group_limits=group_limits,
            object_limits=object_limits,
        )
        self._next_id += 1
        self._active[txn.transaction_id] = txn
        self.recorder.begin(txn)
        return txn

    def adopt(self, txn: TransactionState) -> None:
        """Register an externally-built transaction (sharding hook)."""
        self._active[txn.transaction_id] = txn

    def active_transactions(self) -> tuple[TransactionState, ...]:
        return tuple(self._active.values())

    def read_cached(self, txn: TransactionState, object_id: int) -> None:
        """No snapshot cache on MVTO — always fall back to :meth:`read`."""
        return None

    # -- operations -------------------------------------------------------------------

    def read(self, txn: TransactionState, object_id: int) -> Outcome:
        """Version-appropriate read; never waits or aborts for queries.

        An update reading must still see *its own* staged write; reads of
        other transactions' uncommitted data do not exist in MVTO (only
        committed versions are readable), which is what makes the read
        path wait-free.
        """
        txn.require_active()
        obj = self._object(object_id)
        if obj.writer_id == txn.transaction_id:
            value = obj.staged_value
        else:
            version = obj.version_for(txn.timestamp)
            value = version.value
            if txn.timestamp > version.rts:
                version.rts = txn.timestamp
        txn.read_set.add(object_id)
        txn.operations += 1
        outcome = Granted(value=value)
        self.recorder.read(txn, object_id, outcome)
        return outcome

    def write(self, txn: TransactionState, object_id: int, value: float) -> Outcome:
        txn.require_active()
        if not txn.is_update:
            raise InvalidOperation(
                f"query transaction {txn.transaction_id} cannot write",
                txn.transaction_id,
            )
        obj = self._object(object_id)
        if obj.writer_id is not None and obj.writer_id != txn.transaction_id:
            if txn.timestamp > obj.staged_wts:
                self.recorder.wait(txn, "write", object_id, obj.writer_id)
                return MustWait(obj.writer_id)
            outcome = Rejected(
                REASON_LATE_WRITE,
                detail=(
                    f"write ts {txn.timestamp} is older than pending write "
                    f"ts {obj.staged_wts} on object {object_id}"
                ),
            )
            self._reject(txn, object_id, outcome)
            return outcome
        predecessor = obj.version_for(txn.timestamp)
        if predecessor.rts > txn.timestamp:
            # A newer reader already observed the predecessor: installing
            # this version would retroactively invalidate that read.
            outcome = Rejected(
                REASON_LATE_WRITE,
                detail=(
                    f"version of object {object_id} read at "
                    f"{predecessor.rts} cannot be superseded by write ts "
                    f"{txn.timestamp}"
                ),
            )
            self._reject(txn, object_id, outcome)
            return outcome
        obj.writer_id = txn.transaction_id
        obj.staged_wts = txn.timestamp
        obj.staged_value = float(value)
        txn.write_set.add(object_id)
        txn.operations += 1
        outcome = Granted()
        self.recorder.write(txn, object_id, value, outcome)
        return outcome

    def _reject(
        self, txn: TransactionState, object_id: int, outcome: Rejected
    ) -> None:
        self.recorder.rejection(txn, "write", object_id, outcome)
        self._finish(txn, TransactionStatus.ABORTED, outcome.reason)

    # -- completion -------------------------------------------------------------------

    def commit(self, txn: TransactionState) -> None:
        txn.require_active()
        self._promote(txn)
        self.recorder.commit(txn, imported=0.0, exported=0.0)
        self._finish(txn, TransactionStatus.COMMITTED, None)

    def _promote(self, txn: TransactionState) -> None:
        for object_id in txn.write_set:
            obj = self._object(object_id)
            if obj.writer_id != txn.transaction_id:
                continue
            obj.install(obj.staged_wts, obj.staged_value)
            obj.writer_id = None
            # Mirror the newest value into the plain database object so
            # snapshots and examples see a coherent committed state.
            db_obj = self.database.get(object_id)
            db_obj.stage_write(txn.transaction_id, obj.staged_wts, obj.latest_value)
            db_obj.commit_write()

    def complete(
        self,
        txn: TransactionState,
        status: TransactionStatus,
        reason: str | None = None,
    ) -> None:
        """Apply a completion decided by the sharded composite (no metrics)."""
        if status is TransactionStatus.COMMITTED:
            self._promote(txn)
        self._finish(txn, status, reason, record=False)

    def abort(
        self, txn: TransactionState, reason: str = REASON_CLIENT_ABORT
    ) -> None:
        if txn.status is TransactionStatus.ABORTED:
            return
        if txn.status is TransactionStatus.COMMITTED:
            raise InvalidOperation(
                f"cannot abort committed transaction {txn.transaction_id}",
                txn.transaction_id,
            )
        self._finish(txn, TransactionStatus.ABORTED, reason)

    def _finish(
        self,
        txn: TransactionState,
        status: TransactionStatus,
        reason: str | None,
        record: bool = True,
    ) -> None:
        if status is TransactionStatus.ABORTED:
            for object_id in txn.write_set:
                obj = self._object(object_id)
                if obj.writer_id == txn.transaction_id:
                    obj.writer_id = None
            txn.abort_reason = reason
            if record:
                self.recorder.abort(txn, reason)
        txn.status = status
        self._active.pop(txn.transaction_id, None)
        self.waits.fire(txn.transaction_id)

    def __repr__(self) -> str:
        return (
            f"MVTOManager(active={len(self._active)}, "
            f"objects={len(self._store)})"
        )
