"""Process-sharded composite engine: one worker process per shard.

:class:`ProcessShardedEngine` is the multi-core sibling of
:class:`~repro.engine.sharded.ShardedEngine`.  The thread-based composite
partitions work but not the GIL — its shard threads serialise on the
interpreter lock, so BENCH_net's ``speedup_sharded`` sits *below* 1 on
CPU-bound write loads.  This engine moves each shard's inner engine into
its own **process**, connected to the parent by a framed RPC over a
``socketpair``, so shards genuinely execute in parallel while the parent
keeps presenting the ordinary :class:`~repro.engine.api.Engine` surface
to every host (threaded server, asyncio server, DES, CLI, bench-net).

**The cross-process commit protocol.**  The thread-based composite makes
TIL/TEL/GIL accounting atomic across shards by installing one lock per
transaction on its :class:`~repro.core.accounting.InconsistencyAccount`.
A lock cannot span processes, but it also is not needed: every engine
decision charges only the *operating* transaction's own account, and one
transaction's operations are serialised by its client connection (the
threaded server runs a connection on one handler thread; the asyncio
server pins a connection to one dispatch lane).  So the account state
can travel with the operation.  The original channel shipped the *full*
canonical account dump both ways on every op; the current fast path
(``shard_rpc="fast"``, the default) replaces that with three layers:

1. **Delta account sync.**  The parent versions each transaction's
   canonical account state and remembers which version every shard
   worker last acknowledged.  An op frame then carries one of three sync
   shapes: *none* (the worker already holds the current version — the
   common case, since a consistent operation charges nothing), *delta*
   (only the ledger levels, per-object charges and value ranges that
   changed since the worker's version; account state is monotone so a
   delta is just the changed entries), or *full* (first touch of a
   shard, or the resync fallback).  The worker checks the base version
   on every frame; on a mismatch it answers ``resync`` *without
   executing* and the parent re-sends the op with a full dump.  Reply
   state rides the same scheme: the worker diffs its sibling's account
   around the engine call and returns only the delta (or nothing).
2. **Op batching.**  :class:`_WorkerChannel` is a flat-combining point:
   concurrent callers append their op to a pending queue, and whichever
   caller takes the channel lock first becomes the leader, draining
   *every* pending op into one batch frame, paying one round-trip, and
   distributing the replies.  Under the servers' concurrency the
   syscall/framing cost amortises across the batch; a lone caller
   degenerates to exactly one op per round-trip.
3. **Binary frames.**  Hot shapes (op headers, granted/must-wait
   replies, completion headers, wait notes) are struct-packed in the
   idiom of :mod:`repro.net.protocol`'s ``binary-1`` codec — a u32
   length prefix, a type byte, fixed little-endian layouts — with pickle
   kept as the tagged long tail (descriptors, sync payloads, rejections,
   exceptions).  The channel enforces the same 1 MiB frame cap as the
   net codec: a worker answers an oversized or unknown frame with a
   typed error and keeps serving instead of dying (which would trigger
   a spurious shard failover), and torn frames surface as
   :class:`~repro.errors.ShardChannelError` rather than bare
   struct/pickle errors.

``shard_rpc="legacy"`` keeps the original per-op full-dump pickle
channel alive for comparison; ``bench-hotpath``'s ``procshard_rpc``
microbench measures both (ops/s, bytes/op, batch occupancy).

Commit/abort is decided once by the parent and fanned out as complete
items (which ride the same batch frames); each worker applies the usual
``complete`` hook and a commit reply carries the ``{object_id: (value,
write_ts)}`` pairs the promotion produced, which the parent adopts into
its mirror database (reports, tests and failover all read coherent
committed state there).

**Waits and deadlock edges.**  Workers never park anything: ``MustWait``
propagates to the parent and hosts subscribe against the parent's shared
registry exactly as with the thread-based composite.  When a waiter
parks, the parent broadcasts the wait-for edge (a struct-packed note
frame) to every worker, and completion broadcasts a wakeup — the workers
mirror the edges into their local registries so the 2PL engines'
deadlock walk sees cross-shard cycles.  The same residual caveat as the
thread composite applies (two simultaneous parkers can slip past the
check), which is why the servers keep their ``wait_timeout`` guard.

**Metrics.**  Worker engines record into throwaway local collectors;
the parent reconstructs every counter from the outcomes it relays
(granted read/write with the ESR case, wait, rejection, abort, commit
with the synced imported/exported totals), so the composite's snapshot
matches a bare manager's on the same trace.  Worker-side
:mod:`repro.perf` counters stay in the worker and are not aggregated;
the parent's ``rpc_*`` counters meter the channel itself.

**Degradation and failure.**  ``create_engine(..., processes=True)``
falls back to the thread-based composite (tagging it with
``process_degraded``) when the host has one core or no ``fork`` start
method; ``processes="force"`` insists on real processes regardless of
core count (tests, CI).  If a worker dies mid-run the parent rebuilds
that shard in-process over the mirror database, aborts every transaction
whose staged state died with the worker (reason ``"shard-failover"``),
and keeps serving — a benchmark degrades instead of hanging.  Staged
writes, read-timestamp metadata and version history accumulated inside
the dead worker are lost; committed state survives via the mirror.

Construction forks the workers, so build the engine before starting
server threads (both servers construct their engine before binding).
The snapshot read cache is not supported in process mode — the cache
publishes from inside the engine critical section, which now lives in
another process — and ``validate_protocol_options`` rejects the combination.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import socket
import struct
import threading
import time
import weakref
from collections import deque
from typing import Callable, Mapping

from repro.core.bounds import EpsilonLevel, TransactionBounds
from repro.core.hierarchy import ROOT_GROUP
from repro.core.metric import DistanceFunction, absolute_distance
from repro.engine.api import (
    build_unsharded,
    protocol_spec,
    validate_protocol_options,
)
from repro.engine.database import Database
from repro.engine.history import HistoryRecorder
from repro.engine.metrics import MetricsCollector
from repro.engine.reasons import (
    REASON_CLIENT_ABORT,
    REASON_SHARD_FAILOVER,
)
from repro.engine.results import (
    CASE_LATE_READ,
    CASE_LATE_WRITE,
    CASE_READ_UNCOMMITTED,
    Granted,
    MustWait,
    Outcome,
    Rejected,
)
from repro.engine.scheduler import WaitRegistry
from repro.engine.sharded import (
    _SELF_FIRE_BACKOFF_CAP,
    _SELF_FIRE_BACKOFF_INITIAL,
    _LockedMetrics,
    _SharedWaitRegistry,
    absorb_granted,
)
from repro.engine.timestamps import Timestamp, TimestampGenerator
from repro.engine.transactions import (
    TransactionKind,
    TransactionState,
    TransactionStatus,
)
from repro.errors import InvalidOperation, ProtocolError, ShardChannelError
from repro.net.protocol import MAX_FRAME_BYTES
from repro.perf import counters as _perf

__all__ = [
    "ProcessShardedEngine",
    "process_sharding_unavailable",
    "REASON_SHARD_FAILOVER",
    "SHARD_RPC_MODES",
]

#: The shard-channel wire modes ``create_engine(..., shard_rpc=...)``
#: accepts: ``"fast"`` (delta sync + batching + binary frames) and
#: ``"legacy"`` (the original per-op full-dump pickle channel, kept so
#: the fast path has a measurable baseline).
SHARD_RPC_MODES = ("fast", "legacy")

# -- wire format ---------------------------------------------------------------
#
# Every frame is `u32le size | u8 type | payload(size-1)`; size counts the
# type byte.  Struct layouts are little-endian fixed shapes, matching the
# binary-1 net codec idiom; anything cold rides a length-prefixed pickle.

_HEADER = struct.Struct("<I")
#: Struct-packed one-way note: sub-type plus two transaction ids.
_NOTE = struct.Struct("<Bqq")
#: Items per batch frame.
_COUNT = struct.Struct("<I")
_U32 = struct.Struct("<I")
_2U32 = struct.Struct("<II")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
#: Op item header: txn id, opcode, object id, value, flags.
_OP_HEAD = struct.Struct("<qBqdB")
#: Complete item header: txn id, status, has-reason.
_COMPLETE_HEAD = struct.Struct("<qBB")

_FT_BATCH = 0x01  # parent -> worker: op/complete items
_FT_BATCH_REPLY = 0x02  # worker -> parent: one reply per item
_FT_NOTE = 0x03  # parent -> worker: wait_note / wakeup / shutdown
_FT_ERROR = 0x04  # worker -> parent: typed refusal (frame not executed)
_FT_PICKLE = 0x0F  # the tagged pickle long tail (legacy rpc mode)

_NOTE_WAIT = 0
_NOTE_WAKEUP = 1
_NOTE_SHUTDOWN = 2

_IT_OP = 1
_IT_COMPLETE = 2

_RT_OK = 1
_RT_COMMITTED = 2
_RT_ERR = 3
_RT_RESYNC = 4

_OUT_GRANTED = 0
_OUT_MUSTWAIT = 1
_OUT_PICKLED = 2

_SYNC_NONE = 0
_SYNC_DELTA = 1
_SYNC_FULL = 2
_SYNC_CODES = {"none": _SYNC_NONE, "delta": _SYNC_DELTA, "full": _SYNC_FULL}
_SYNC_NAMES = {code: name for name, code in _SYNC_CODES.items()}

_OP_READ = 0
_OP_WRITE = 1

_STATUS_CODES = {
    TransactionStatus.COMMITTED.value: 0,
    TransactionStatus.ABORTED.value: 1,
}
_STATUS_NAMES = {code: value for value, code in _STATUS_CODES.items()}

_CASE_CODES = {CASE_LATE_READ: 1, CASE_READ_UNCOMMITTED: 2, CASE_LATE_WRITE: 3}
_CASE_NAMES = {code: case for case, code in _CASE_CODES.items()}

#: Bounded EINTR retries before a read is declared torn.
_MAX_EINTR_RETRIES = 64
#: A claimed frame size past this is stream corruption, not a big frame —
#: the worker gives up (parent fails the shard over) instead of trying
#: to discard gigabytes.
_STREAM_CEILING = 1 << 30
#: The leader splits a combined batch so no single frame exceeds the cap
#: (headroom for the count prefix).
_BATCH_BYTE_LIMIT = MAX_FRAME_BYTES - 1024


# -- framing -------------------------------------------------------------------


def _send_frame(sock: socket.socket, ftype: int, payload: bytes) -> None:
    data = _HEADER.pack(1 + len(payload)) + bytes((ftype,)) + payload
    sock.sendall(data)
    _perf.rpc_bytes_sent += len(data)


def _recv_exact(
    sock: socket.socket, n: int, *, shard: int | None = None, pending: int = 0
) -> bytes:
    """Read exactly ``n`` bytes, tolerating EINTR and partial reads.

    A signal-interrupted read is retried up to :data:`_MAX_EINTR_RETRIES`
    times (then declared torn with a typed :class:`ShardChannelError`
    carrying the shard and pending-op context); a clean EOF raises
    ``EOFError`` as before, which the op path treats as a dead worker.
    """
    chunks: list[bytes] = []
    remaining = n
    interrupts = 0
    while remaining:
        try:
            chunk = sock.recv(remaining)
        except InterruptedError:
            interrupts += 1
            if interrupts > _MAX_EINTR_RETRIES:
                raise ShardChannelError(
                    "shard channel read interrupted "
                    f"{interrupts} times without progress",
                    shard,
                    pending,
                ) from None
            continue
        if not chunk:
            raise EOFError("shard channel closed")
        chunks.append(chunk)
        remaining -= len(chunk)
    if len(chunks) == 1:
        return chunks[0]
    return b"".join(chunks)


def _recv_typed(
    sock: socket.socket, *, shard: int | None = None, pending: int = 0
) -> tuple[int, bytes]:
    """Parent-side receive: one typed frame, torn frames become typed errors."""
    header = _recv_exact(sock, _HEADER.size, shard=shard, pending=pending)
    (size,) = _HEADER.unpack(header)
    if size < 1 or size > _STREAM_CEILING:
        raise ShardChannelError(
            f"torn shard frame: claimed {size} bytes", shard, pending
        )
    body = _recv_exact(sock, size, shard=shard, pending=pending)
    _perf.rpc_bytes_received += _HEADER.size + size
    return body[0], body[1:]


def _append_pickled(out: bytearray, obj: object) -> None:
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    out += _U32.pack(len(payload))
    out += payload


def _read_pickled(payload: bytes, offset: int) -> tuple[object, int]:
    (length,) = _U32.unpack_from(payload, offset)
    offset += _U32.size
    obj = pickle.loads(payload[offset : offset + length])
    return obj, offset + length


# -- batch item encoding -------------------------------------------------------
#
# Parent-side items are small tagged tuples; the wire shape packs the hot
# header fields and pickles only the cold payloads (descriptor, sync
# state, rejections, exceptions).
#
#   ("op", txn_id, opcode, object_id, value, descriptor|None, sync_in)
#       sync_in: ("none", version)
#              | ("delta", from_version, to_version, (acct_delta, imp_delta))
#              | ("full", version, (acct_dump, imp_dump))
#   ("complete", txn_id, status_value, reason|None)
#
# Replies:
#   ("ok", outcome, sync_out|None)   sync_out: (acct_delta, imp_delta)
#   ("committed", {object_id: (value, write_ts)})
#   ("err", exception)
#   ("resync", worker_version|None)


def _encode_item(item: tuple) -> bytes:
    out = bytearray()
    if item[0] == "op":
        _, txn_id, opcode, object_id, value, descriptor, sync_in = item
        flags = _SYNC_CODES[sync_in[0]] << 1
        if descriptor is not None:
            flags |= 1
        out += bytes((_IT_OP,))
        out += _OP_HEAD.pack(txn_id, opcode, object_id, value, flags)
        if descriptor is not None:
            _append_pickled(out, descriptor)
        if sync_in[0] == "none":
            out += _U32.pack(sync_in[1])
        elif sync_in[0] == "delta":
            out += _2U32.pack(sync_in[1], sync_in[2])
            _append_pickled(out, sync_in[3])
        else:
            out += _U32.pack(sync_in[1])
            _append_pickled(out, sync_in[2])
    else:
        _, txn_id, status_value, reason = item
        out += bytes((_IT_COMPLETE,))
        out += _COMPLETE_HEAD.pack(
            txn_id, _STATUS_CODES[status_value], 0 if reason is None else 1
        )
        if reason is not None:
            encoded = reason.encode("utf-8")
            out += _U32.pack(len(encoded))
            out += encoded
    return bytes(out)


def _decode_batch(payload: bytes) -> list[tuple]:
    (count,) = _COUNT.unpack_from(payload, 0)
    offset = _COUNT.size
    items: list[tuple] = []
    for _ in range(count):
        itype = payload[offset]
        offset += 1
        if itype == _IT_OP:
            txn_id, opcode, object_id, value, flags = _OP_HEAD.unpack_from(
                payload, offset
            )
            offset += _OP_HEAD.size
            descriptor = None
            if flags & 1:
                descriptor, offset = _read_pickled(payload, offset)
            tag = _SYNC_NAMES[(flags >> 1) & 0x3]
            if tag == "none":
                (version,) = _U32.unpack_from(payload, offset)
                offset += _U32.size
                sync_in: tuple = ("none", version)
            elif tag == "delta":
                from_version, to_version = _2U32.unpack_from(payload, offset)
                offset += _2U32.size
                deltas, offset = _read_pickled(payload, offset)
                sync_in = ("delta", from_version, to_version, deltas)
            else:
                (version,) = _U32.unpack_from(payload, offset)
                offset += _U32.size
                dumps, offset = _read_pickled(payload, offset)
                sync_in = ("full", version, dumps)
            items.append(
                ("op", txn_id, opcode, object_id, value, descriptor, sync_in)
            )
        elif itype == _IT_COMPLETE:
            txn_id, status, has_reason = _COMPLETE_HEAD.unpack_from(
                payload, offset
            )
            offset += _COMPLETE_HEAD.size
            reason = None
            if has_reason:
                (length,) = _U32.unpack_from(payload, offset)
                offset += _U32.size
                reason = payload[offset : offset + length].decode("utf-8")
                offset += length
            items.append(("complete", txn_id, _STATUS_NAMES[status], reason))
        else:
            raise ProtocolError(f"unknown batch item type {itype}")
    return items


def _encode_outcome(out: bytearray, outcome: Outcome) -> None:
    if type(outcome) is Granted:
        case = outcome.esr_case
        code = _CASE_CODES.get(case, 0) if case is not None else 0
        packable = (case is None and outcome.inconsistency == 0.0) or code
        if not packable:
            out += bytes((_OUT_PICKLED,))
            _append_pickled(out, outcome)
            return
        flags = 0
        if outcome.value is not None:
            flags |= 1
        if case is not None:
            flags |= 2
        out += bytes((_OUT_GRANTED, flags))
        if outcome.value is not None:
            out += _F64.pack(outcome.value)
        if case is not None:
            out += _F64.pack(outcome.inconsistency)
            out += bytes((code,))
    elif type(outcome) is MustWait:
        out += bytes((_OUT_MUSTWAIT,))
        out += _I64.pack(outcome.blocking_transaction)
    else:
        out += bytes((_OUT_PICKLED,))
        _append_pickled(out, outcome)


def _decode_outcome(payload: bytes, offset: int) -> tuple[Outcome, int]:
    kind = payload[offset]
    offset += 1
    if kind == _OUT_GRANTED:
        flags = payload[offset]
        offset += 1
        value = None
        inconsistency = 0.0
        case = None
        if flags & 1:
            (value,) = _F64.unpack_from(payload, offset)
            offset += _F64.size
        if flags & 2:
            (inconsistency,) = _F64.unpack_from(payload, offset)
            offset += _F64.size
            case = _CASE_NAMES[payload[offset]]
            offset += 1
        return Granted(value, inconsistency, case), offset
    if kind == _OUT_MUSTWAIT:
        (blocker,) = _I64.unpack_from(payload, offset)
        return MustWait(blocker), offset + _I64.size
    outcome, offset = _read_pickled(payload, offset)
    return outcome, offset


def _encode_reply_item(reply: tuple) -> bytes:
    out = bytearray()
    kind = reply[0]
    if kind == "ok":
        out += bytes((_RT_OK,))
        _encode_outcome(out, reply[1])
        sync_out = reply[2]
        if sync_out is None:
            out += bytes((_SYNC_NONE,))
        else:
            out += bytes((_SYNC_DELTA,))
            _append_pickled(out, sync_out)
    elif kind == "committed":
        out += bytes((_RT_COMMITTED,))
        _append_pickled(out, reply[1])
    elif kind == "resync":
        out += bytes((_RT_RESYNC,))
        version = reply[1]
        out += bytes((0,)) if version is None else bytes((1,)) + _U32.pack(
            version
        )
    else:
        out += bytes((_RT_ERR,))
        _append_pickled(out, reply[1])
    return bytes(out)


def _decode_batch_reply(payload: bytes) -> list[tuple]:
    (count,) = _COUNT.unpack_from(payload, 0)
    offset = _COUNT.size
    replies: list[tuple] = []
    for _ in range(count):
        rtype = payload[offset]
        offset += 1
        if rtype == _RT_OK:
            outcome, offset = _decode_outcome(payload, offset)
            if payload[offset] == _SYNC_NONE:
                sync_out = None
                offset += 1
            else:
                offset += 1
                sync_out, offset = _read_pickled(payload, offset)
            replies.append(("ok", outcome, sync_out))
        elif rtype == _RT_COMMITTED:
            committed, offset = _read_pickled(payload, offset)
            replies.append(("committed", committed))
        elif rtype == _RT_RESYNC:
            if payload[offset]:
                (version,) = _U32.unpack_from(payload, offset + 1)
                offset += 1 + _U32.size
                replies.append(("resync", version))
            else:
                offset += 1
                replies.append(("resync", None))
        elif rtype == _RT_ERR:
            error, offset = _read_pickled(payload, offset)
            replies.append(("err", error))
        else:
            raise ProtocolError(f"unknown batch reply type {rtype}")
    return replies


# -- worker side ---------------------------------------------------------------


class _MirrorWaitRegistry(WaitRegistry):
    """Worker-local registry fed by the parent's wait_note/wakeup frames.

    Nothing subscribes inside a worker (waiting is the parent's job); the
    registry exists so the 2PL deadlock walk — ``waits.waiting_on(node)``
    — sees the cross-shard wait-for edges the parent observed.
    """

    def note(self, waiter: int, blocker: int) -> None:
        self._waiting_on[waiter] = blocker


def _build_sibling(
    engine, descriptor: dict, siblings: dict[int, TransactionState]
) -> TransactionState:
    sibling = TransactionState(
        transaction_id=descriptor["transaction_id"],
        kind=TransactionKind(descriptor["kind"]),
        timestamp=descriptor["timestamp"],
        bounds=descriptor["bounds"],
        catalog=engine.database.catalog,
        group_limits=descriptor["group_limits"],
        object_limits=descriptor["object_limits"],
        allow_inconsistent_reads=descriptor["allow_inconsistent_reads"],
    )
    engine.adopt(sibling)
    # Track changes incrementally so each op's reply delta costs
    # O(changed entries) — no per-op state dumps in the worker.
    sibling.account.track_changes()
    if (
        sibling.import_account is not None
        and sibling.import_account is not sibling.account
    ):
        sibling.import_account.track_changes()
    siblings[sibling.transaction_id] = sibling
    return sibling


def _sibling_has_import(sibling: TransactionState) -> bool:
    return (
        sibling.import_account is not None
        and sibling.import_account is not sibling.account
    )


def _handle_op_item(
    engine,
    siblings: dict[int, TransactionState],
    versions: dict[int, int],
    item: tuple,
) -> tuple:
    """One fast-path op: sync in, run the engine decision, delta out."""
    _, txn_id, opcode, object_id, value, descriptor, sync_in = item
    sibling = siblings.get(txn_id)
    if sibling is None:
        if descriptor is None:
            # The parent assumed we hold state we do not (e.g. its record
            # of this shard was dropped); ask for a full re-send.
            return ("resync", versions.get(txn_id))
        sibling = _build_sibling(engine, descriptor, siblings)
    has_import = _sibling_has_import(sibling)
    tag = sync_in[0]
    held = versions.get(txn_id)
    if tag == "none":
        if held != sync_in[1]:
            return ("resync", held)
    elif tag == "delta":
        if held != sync_in[1]:
            return ("resync", held)
        account_delta, import_delta = sync_in[3]
        if account_delta is not None:
            sibling.account.apply_delta(account_delta)
        if import_delta is not None and has_import:
            sibling.import_account.apply_delta(import_delta)
        held = sync_in[2]
        versions[txn_id] = held
    else:  # full
        account_state, import_state = sync_in[2]
        sibling.account.load_state(account_state)
        if import_state is not None and has_import:
            sibling.import_account.load_state(import_state)
        held = sync_in[1]
        versions[txn_id] = held
    if opcode == _OP_READ:
        outcome = engine.read(sibling, object_id)
    else:
        outcome = engine.write(sibling, object_id, value)
    if not sibling.is_active:
        # A rejection auto-aborted (and finished) the sibling.
        siblings.pop(txn_id, None)
    account_delta = sibling.account.take_delta()
    import_delta = sibling.import_account.take_delta() if has_import else None
    if account_delta is None and import_delta is None:
        sync_out = None
    else:
        sync_out = (account_delta, import_delta)
        versions[txn_id] = held + 1
    if txn_id not in siblings:
        versions.pop(txn_id, None)
    return ("ok", outcome, sync_out)


def _handle_legacy_op(engine, siblings: dict[int, TransactionState], payload):
    """The original channel: full account dumps both ways, every op."""
    txn_id, descriptor, op, object_id, value, account_state, import_state = (
        payload
    )
    sibling = siblings.get(txn_id)
    if sibling is None:
        sibling = _build_sibling(engine, descriptor, siblings)
    sibling.account.load_state(account_state)
    has_import = _sibling_has_import(sibling)
    if import_state is not None and has_import:
        sibling.import_account.load_state(import_state)
    if op == "read":
        outcome = engine.read(sibling, object_id)
    else:
        outcome = engine.write(sibling, object_id, value)
    if not sibling.is_active:
        siblings.pop(txn_id, None)
    import_dump = sibling.import_account.dump_state() if has_import else None
    return (outcome, sibling.account.dump_state(), import_dump)


def _handle_complete(
    engine,
    siblings: dict[int, TransactionState],
    versions: dict[int, int],
    txn_id: int,
    status_value: str,
    reason: str | None,
):
    sibling = siblings.pop(txn_id, None)
    versions.pop(txn_id, None)
    if sibling is None:
        return {}
    status = TransactionStatus(status_value)
    if sibling.is_active:
        engine.complete(sibling, status, reason)
    committed: dict[int, tuple[float, Timestamp]] = {}
    if status is TransactionStatus.COMMITTED:
        for object_id in sibling.write_set:
            obj = engine.database.get(object_id)
            committed[object_id] = (obj.committed_value, obj.committed_write_ts)
    return committed


def _handle_item(engine, siblings, versions, item: tuple) -> tuple:
    try:
        if item[0] == "op":
            return _handle_op_item(engine, siblings, versions, item)
        return (
            "committed",
            _handle_complete(
                engine, siblings, versions, item[1], item[2], item[3]
            ),
        )
    except Exception as exc:  # relayed to the caller
        return ("err", exc)


def _recv_worker_frame(sock: socket.socket) -> tuple[int, bytes | None]:
    """Worker-side receive with the 1 MiB cap.

    Returns ``(type, payload)``; an oversized-but-well-framed frame is
    drained and returned as ``(type, None)`` so the loop can answer with
    a typed error instead of dying (a claimed size past the stream
    ceiling is corruption and raises, killing the worker — the parent
    then fails the shard over).
    """
    header = _recv_exact(sock, _HEADER.size)
    (size,) = _HEADER.unpack(header)
    if size < 1 or size > _STREAM_CEILING:
        raise EOFError(f"torn shard frame: claimed {size} bytes")
    ftype = _recv_exact(sock, 1)[0]
    if size > MAX_FRAME_BYTES:
        remaining = size - 1
        while remaining:
            remaining -= len(_recv_exact(sock, min(remaining, 1 << 16)))
        return ftype, None
    return ftype, _recv_exact(sock, size - 1)


def _worker_main(
    sock: socket.socket,
    inherited: list[socket.socket],
    shard_db: Database,
    protocol: str,
    distance: DistanceFunction,
    export_policy: str,
    wait_policy: str,
) -> None:
    """One shard worker: an ordinary engine behind a frame loop."""
    # Forked children inherit every socketpair created before their fork;
    # close the ones that are not ours so the parent closing a channel
    # produces EOF at its worker instead of lingering in our fd table.
    for other in inherited:
        try:
            other.close()
        except OSError:
            pass
    engine = build_unsharded(
        shard_db,
        protocol_spec(protocol),
        distance=distance,
        export_policy=export_policy,
        wait_policy=wait_policy,
    )
    engine.waits = _MirrorWaitRegistry()
    siblings: dict[int, TransactionState] = {}
    versions: dict[int, int] = {}
    try:
        while True:
            ftype, payload = _recv_worker_frame(sock)
            if payload is None:
                # Oversized.  Notes are one-way (nobody is reading a
                # reply), so they are dropped; anything else gets the
                # typed refusal its sender is waiting for.
                if ftype != _FT_NOTE:
                    _send_frame(
                        sock,
                        _FT_ERROR,
                        pickle.dumps(
                            ProtocolError(
                                "oversized shard frame refused "
                                f"(cap {MAX_FRAME_BYTES} bytes)"
                            ),
                            protocol=pickle.HIGHEST_PROTOCOL,
                        ),
                    )
                continue
            if ftype == _FT_BATCH:
                try:
                    items = _decode_batch(payload)
                except Exception as exc:
                    _send_frame(
                        sock,
                        _FT_ERROR,
                        pickle.dumps(
                            ProtocolError(f"undecodable batch frame: {exc}"),
                            protocol=pickle.HIGHEST_PROTOCOL,
                        ),
                    )
                    continue
                replies = bytearray(_COUNT.pack(len(items)))
                for item in items:
                    replies += _encode_reply_item(
                        _handle_item(engine, siblings, versions, item)
                    )
                _send_frame(sock, _FT_BATCH_REPLY, bytes(replies))
            elif ftype == _FT_NOTE:
                sub, a, b = _NOTE.unpack(payload)
                if sub == _NOTE_WAIT:
                    engine.waits.note(a, b)
                elif sub == _NOTE_WAKEUP:
                    engine.waits.fire(a)
                else:
                    return
            elif ftype == _FT_PICKLE:
                try:
                    frame = pickle.loads(payload)
                except Exception as exc:
                    _send_frame(
                        sock,
                        _FT_ERROR,
                        pickle.dumps(
                            ProtocolError(f"undecodable pickle frame: {exc}"),
                            protocol=pickle.HIGHEST_PROTOCOL,
                        ),
                    )
                    continue
                kind = frame[0]
                if kind == "op":
                    try:
                        reply = (
                            "ok",
                            _handle_legacy_op(engine, siblings, frame[1]),
                        )
                    except Exception as exc:
                        reply = ("err", exc)
                    _send_frame(
                        sock,
                        _FT_PICKLE,
                        pickle.dumps(reply, protocol=pickle.HIGHEST_PROTOCOL),
                    )
                elif kind == "complete":
                    try:
                        reply = (
                            "ok",
                            _handle_complete(
                                engine,
                                siblings,
                                versions,
                                frame[1],
                                frame[2],
                                frame[3],
                            ),
                        )
                    except Exception as exc:
                        reply = ("err", exc)
                    _send_frame(
                        sock,
                        _FT_PICKLE,
                        pickle.dumps(reply, protocol=pickle.HIGHEST_PROTOCOL),
                    )
                elif kind == "wait_note":
                    engine.waits.note(frame[1], frame[2])
                elif kind == "wakeup":
                    engine.waits.fire(frame[1])
                elif kind == "shutdown":
                    return
            else:
                _send_frame(
                    sock,
                    _FT_ERROR,
                    pickle.dumps(
                        ProtocolError(f"unknown shard frame type {ftype}"),
                        protocol=pickle.HIGHEST_PROTOCOL,
                    ),
                )
    except (EOFError, OSError, ShardChannelError):
        return
    finally:
        try:
            sock.close()
        except OSError:
            pass


# -- parent side ---------------------------------------------------------------


class _PendingCall:
    """One caller's item waiting to ride a combined batch frame."""

    __slots__ = ("item", "reply", "error", "event")

    def __init__(self, item: tuple) -> None:
        self.item = item
        self.reply: tuple | None = None
        self.error: BaseException | None = None
        self.event = threading.Event()


class _WorkerChannel:
    """One shard's RPC endpoint: socket + process + a flat-combining lock.

    Callers append their item to the pending queue and then contend for
    the channel lock.  The winner (the *leader*) drains every pending
    item — its own and everyone else's — into one batch frame, pays one
    round-trip, and distributes the replies; the losers find their reply
    already delivered when they get the lock.  Replies pair with items
    positionally, so the lock is held across the whole round-trip and
    one-way posts interleave FIFO-safely on the same socket.
    """

    def __init__(self, sock: socket.socket, process, shard: int) -> None:
        self.sock = sock
        self.process = process
        self.shard = shard
        self.lock = threading.Lock()
        self._pending_lock = threading.Lock()
        self._pending: deque[_PendingCall] = deque()
        self.closed = False

    def pending_ops(self) -> int:
        with self._pending_lock:
            return len(self._pending)

    def request(self, item: tuple) -> tuple:
        """Ship one op/complete item; returns its decoded reply."""
        call = _PendingCall(item)
        with self._pending_lock:
            self._pending.append(call)
        with self.lock:
            if not call.event.is_set():
                self._service()
        if call.error is not None:
            raise call.error
        assert call.reply is not None
        return call.reply

    def _service(self) -> None:
        """Leader duty: drain the pending queue, one frame per group."""
        with self._pending_lock:
            batch = list(self._pending)
            self._pending.clear()
        if not batch:
            return
        if self.closed:
            error = EOFError("shard channel closed")
            for call in batch:
                call.error = error
                call.event.set()
            return
        # Split only when a combined frame would blow the 1 MiB cap.
        group: list[tuple[_PendingCall, bytes]] = []
        size = _COUNT.size
        for call in batch:
            encoded = _encode_item(call.item)
            if group and size + len(encoded) > _BATCH_BYTE_LIMIT:
                self._round_trip(group)
                group = []
                size = _COUNT.size
            group.append((call, encoded))
            size += len(encoded)
        if group:
            self._round_trip(group)

    def _round_trip(self, group: list[tuple[_PendingCall, bytes]]) -> None:
        calls = [call for call, _ in group]
        frame = _COUNT.pack(len(calls)) + b"".join(data for _, data in group)
        try:
            _send_frame(self.sock, _FT_BATCH, frame)
            ftype, payload = _recv_typed(
                self.sock, shard=self.shard, pending=len(calls)
            )
            if ftype == _FT_ERROR:
                # A typed refusal: the worker is alive and executed
                # nothing; surface the error without killing the channel.
                error = pickle.loads(payload)
                for call in calls:
                    call.error = error
                    call.event.set()
                return
            if ftype != _FT_BATCH_REPLY:
                raise ShardChannelError(
                    f"unexpected shard reply frame type {ftype}",
                    self.shard,
                    len(calls),
                )
            replies = _decode_batch_reply(payload)
            if len(replies) != len(calls):
                raise ShardChannelError(
                    f"batch reply count mismatch "
                    f"({len(replies)} != {len(calls)})",
                    self.shard,
                    len(calls),
                )
        except (OSError, EOFError, ShardChannelError) as exc:
            for call in calls:
                call.error = exc
                call.event.set()
            return
        except Exception as exc:  # undecodable reply bytes = torn stream
            error = ShardChannelError(
                f"undecodable batch reply: {exc}", self.shard, len(calls)
            )
            for call in calls:
                call.error = error
                call.event.set()
            return
        _perf.rpc_ops += len(calls)
        _perf.rpc_round_trips += 1
        _perf.rpc_batched_ops += len(calls)
        for call, reply in zip(calls, replies):
            call.reply = reply
            call.event.set()

    def request_legacy(self, frame: object):
        """The original per-op pickle round-trip (``shard_rpc="legacy"``)."""
        with self.lock:
            if self.closed:
                raise EOFError("shard channel closed")
            _send_frame(
                self.sock,
                _FT_PICKLE,
                pickle.dumps(frame, protocol=pickle.HIGHEST_PROTOCOL),
            )
            ftype, payload = _recv_typed(self.sock, shard=self.shard, pending=1)
            if ftype == _FT_ERROR:
                raise pickle.loads(payload)
            if ftype != _FT_PICKLE:
                raise ShardChannelError(
                    f"unexpected shard reply frame type {ftype}", self.shard, 1
                )
            try:
                reply = pickle.loads(payload)
            except Exception as exc:
                raise ShardChannelError(
                    f"undecodable legacy reply: {exc}", self.shard, 1
                ) from exc
            _perf.rpc_ops += 1
            _perf.rpc_round_trips += 1
            return reply

    def post_note(self, sub: int, a: int = 0, b: int = 0) -> None:
        with self.lock:
            if self.closed:
                return
            _send_frame(self.sock, _FT_NOTE, _NOTE.pack(sub, a, b))

    def close(self, timeout: float = 1.0) -> None:
        with self.lock:
            if not self.closed:
                self.closed = True
                try:
                    _send_frame(
                        self.sock, _FT_NOTE, _NOTE.pack(_NOTE_SHUTDOWN, 0, 0)
                    )
                except OSError:
                    pass
                try:
                    self.sock.close()
                except OSError:
                    pass
        # Fail anything still queued behind the closed channel.
        with self._pending_lock:
            stranded = list(self._pending)
            self._pending.clear()
        if stranded:
            error = EOFError("shard channel closed")
            for call in stranded:
                call.error = error
                call.event.set()
        if self.process is not None:
            self.process.join(timeout)
            if self.process.is_alive():
                self.process.terminate()
                self.process.join(timeout)


def _reap(channels: list[_WorkerChannel]) -> None:
    """weakref.finalize hook: never leak worker processes."""
    for channel in channels:
        try:
            channel.close(timeout=0.5)
        except Exception:
            pass


def process_sharding_unavailable() -> str | None:
    """Why real process sharding would not help here, or None if it would.

    ``"no-fork"`` — the platform cannot fork (workers inherit their shard
    database and socket by fork; spawn cannot ship the socketpair).
    ``"single-core"`` — forking N workers onto one core only adds IPC
    cost; the thread-based composite is the better engine there.
    """
    if "fork" not in multiprocessing.get_all_start_methods():
        return "no-fork"
    if (os.cpu_count() or 1) <= 1:
        return "single-core"
    return None


class _ProcessWaitRegistry(_SharedWaitRegistry):
    """The shared parent registry plus cross-process edge mirroring."""

    def __init__(
        self,
        is_active: Callable[[int], bool],
        is_completing: Callable[[int], bool],
        broadcast: Callable[[tuple], None],
    ) -> None:
        super().__init__(is_active, is_completing)
        self._broadcast = broadcast

    def subscribe(
        self,
        blocking_transaction: int,
        callback: Callable[[], None],
        waiter_transaction: int | None = None,
    ) -> None:
        parked = False
        backoff = 0.0
        with self._lock:
            if self._is_active(blocking_transaction):
                self._self_fires.pop(
                    (waiter_transaction, blocking_transaction), None
                )
                WaitRegistry.subscribe(
                    self,
                    blocking_transaction,
                    callback,
                    waiter_transaction=waiter_transaction,
                )
                parked = True
            elif self._is_completing(blocking_transaction):
                key = (waiter_transaction, blocking_transaction)
                count = self._self_fires.get(key, 0)
                self._self_fires[key] = count + 1
                backoff = min(
                    _SELF_FIRE_BACKOFF_INITIAL * (2**count),
                    _SELF_FIRE_BACKOFF_CAP,
                )
        if parked:
            if waiter_transaction is not None:
                self._broadcast(
                    ("wait_note", waiter_transaction, blocking_transaction)
                )
            return
        if backoff > 0.0:
            time.sleep(backoff)
        callback()

    def fire(self, completed_transaction: int) -> int:
        count = super().fire(completed_transaction)
        self._broadcast(("wakeup", completed_transaction))
        return count


def _merge_delta(accumulator, delta):
    """Fold one ``apply_delta``-shaped delta onto an owned accumulator.

    Delta entries carry *absolute* values (usage per level, per-object
    totals, range extremes), so folding is plain overwrite — applying
    the merged result equals applying each delta in order.  Returns the
    (possibly freshly created) accumulator, a mutable 4-list.
    """
    usage, per_object, operations, ranges = delta
    if accumulator is None:
        return [dict(usage), dict(per_object), operations, dict(ranges)]
    accumulator[0].update(usage)
    accumulator[1].update(per_object)
    if operations is not None:
        accumulator[2] = operations
    accumulator[3].update(ranges)
    return accumulator


#: Pending-delta marker: the canonical state moved in a way the parent
#: cannot express as a delta (failed-over local op) — next op on the
#: shard must carry a full dump.
_PENDING_FULL = "full"


class _TxnSync:
    """Parent-side delta-sync bookkeeping for one transaction.

    ``version`` counts the canonical account state's revisions (bumped
    whenever an op's reply delta — or a failed-over local op — changes
    it); ``shard_versions`` records the revision each worker last
    acknowledged; ``pending`` accumulates, per lagging shard, the merged
    deltas between that shard's revision and the current one, so its
    next op ships exactly the missed changes (or :data:`_PENDING_FULL`
    when the gap cannot be expressed as a delta).  A shard absent from
    ``shard_versions`` has never been touched — its first op carries the
    descriptor and a full dump.
    """

    __slots__ = ("descriptor", "version", "shard_versions", "pending")

    def __init__(self, descriptor: dict) -> None:
        self.descriptor = descriptor
        self.version = 0
        self.shard_versions: dict[int, int] = {}
        #: shard -> [account_acc, import_acc] (each None or a 4-list)
        #: or _PENDING_FULL.
        self.pending: dict[int, object] = {}


class ProcessShardedEngine:
    """N per-shard engines in worker processes behind the one
    :class:`~repro.engine.api.Engine` interface."""

    #: Hosts holding a global engine mutex may skip it for this engine —
    #: the per-shard channel locks are the critical sections.
    thread_safe = True

    def __init__(
        self,
        database: Database,
        protocol: str = "esr",
        *,
        shards: int,
        distance: DistanceFunction = absolute_distance,
        export_policy: str = "max",
        wait_policy: str = "wait",
        snapshot_cache: bool = False,
        metrics: MetricsCollector | None = None,
        timestamps: TimestampGenerator | None = None,
        shard_rpc: str = "fast",
        recorder: HistoryRecorder | None = None,
        record_history: bool = False,
    ):
        self._spec = validate_protocol_options(
            protocol,
            snapshot_cache=snapshot_cache,
            wait_policy=wait_policy,
            shards=shards,
            processes=True,
            shard_rpc=shard_rpc,
        )
        self.database = database
        self.protocol = protocol
        self.shards = shards
        self.wait_policy = wait_policy
        self.export_policy = export_policy
        self.distance = distance
        self.shard_rpc = shard_rpc
        if recorder is not None:
            self.recorder = recorder
        else:
            self.recorder = HistoryRecorder(
                metrics if metrics is not None else _LockedMetrics(),
                record=record_history,
            )
        self.metrics = self.recorder.metrics
        #: No snapshot cache in process mode (see module docstring).
        self.snapshot = None
        self._timestamps = (
            timestamps if timestamps is not None else TimestampGenerator()
        )
        self._next_id = 1
        self._txn_lock = threading.Lock()
        self._active: dict[int, TransactionState] = {}
        #: Global txn id -> shards it has operated on (completion fan-out).
        self._touched: dict[int, set[int]] = {}
        #: Global txn id -> delta-sync bookkeeping (descriptor, canonical
        #: state version, per-shard acknowledged versions and dumps).
        self._sync: dict[int, _TxnSync] = {}
        #: Global txn id -> {shard: sibling} for *failed-over* (local)
        #: shards only; healthy shards keep their siblings worker-side.
        self._siblings: dict[int, dict[int, TransactionState]] = {}
        self._completing: set[int] = set()
        self.waits = _ProcessWaitRegistry(
            self._is_globally_active, self._is_completing, self._broadcast
        )
        # Shard-local database views aliasing the parent's objects.  The
        # fork below copy-on-writes them into each worker; the parent's
        # originals stay behind as the committed-state mirror and as the
        # substrate for in-process failover engines.
        self._databases = [
            Database(
                catalog=database.catalog,
                version_window=database.version_window,
            )
            for _ in range(shards)
        ]
        for obj in database.objects():
            self._databases[obj.object_id % shards].adopt_object(obj)
        #: In-process replacement engines for dead shards (None = healthy).
        self._local: list[object | None] = [None] * shards
        self._local_locks = [threading.Lock() for _ in range(shards)]
        self._failover_lock = threading.RLock()
        self._closed = False
        context = multiprocessing.get_context("fork")
        pairs = [socket.socketpair() for _ in range(shards)]
        self._channels: list[_WorkerChannel] = []
        for shard in range(shards):
            parent_sock, child_sock = pairs[shard]
            inherited = [
                endpoint
                for index, pair in enumerate(pairs)
                if index != shard
                for endpoint in pair
            ]
            process = context.Process(
                target=_worker_main,
                args=(
                    child_sock,
                    inherited,
                    self._databases[shard],
                    protocol,
                    distance,
                    export_policy,
                    wait_policy,
                ),
                name=f"repro-shard-{shard}",
                daemon=True,
            )
            process.start()
            self._channels.append(_WorkerChannel(parent_sock, process, shard))
        for _, child_sock in pairs:
            child_sock.close()
        self._finalizer = weakref.finalize(self, _reap, list(self._channels))

    # -- routing ---------------------------------------------------------------

    def shard_of(self, object_id: int) -> int:
        return object_id % self.shards

    def worker_pids(self) -> tuple[int | None, ...]:
        """Worker process ids (None once a shard has failed over)."""
        return tuple(
            None
            if channel.closed or channel.process is None
            else channel.process.pid
            for channel in self._channels
        )

    def failed_shards(self) -> tuple[int, ...]:
        return tuple(
            shard
            for shard, local in enumerate(self._local)
            if local is not None
        )

    def _is_globally_active(self, transaction_id: int) -> bool:
        return transaction_id in self._active

    def _is_completing(self, transaction_id: int) -> bool:
        return transaction_id in self._completing

    def _broadcast(self, frame: tuple) -> None:
        sub = _NOTE_WAIT if frame[0] == "wait_note" else _NOTE_WAKEUP
        a = frame[1]
        b = frame[2] if len(frame) > 2 else 0
        for channel in self._channels:
            try:
                channel.post_note(sub, a, b)
            except OSError:
                pass  # the op path notices the dead worker and fails over

    # -- lifecycle -------------------------------------------------------------

    def begin(
        self,
        kind: TransactionKind | str,
        bounds: TransactionBounds | EpsilonLevel | None = None,
        timestamp: Timestamp | None = None,
        group_limits: Mapping[str, float] | None = None,
        object_limits: Mapping[int, float] | None = None,
        allow_inconsistent_reads: bool = False,
    ) -> TransactionState:
        if isinstance(kind, str):
            kind = TransactionKind(kind.lower())
        if bounds is None:
            bounds = TransactionBounds()
        elif isinstance(bounds, EpsilonLevel):
            bounds = bounds.transaction
        with self._txn_lock:
            if timestamp is None:
                timestamp = self._timestamps.next()
            txn = TransactionState(
                transaction_id=self._next_id,
                kind=kind,
                timestamp=timestamp,
                bounds=bounds,
                catalog=self.database.catalog,
                group_limits=group_limits,
                object_limits=object_limits,
                allow_inconsistent_reads=allow_inconsistent_reads,
            )
            self._next_id += 1
            self._register(
                txn,
                {
                    "transaction_id": txn.transaction_id,
                    "kind": kind.value,
                    "timestamp": timestamp,
                    "bounds": bounds,
                    "group_limits": (
                        dict(group_limits) if group_limits is not None else None
                    ),
                    "object_limits": (
                        dict(object_limits)
                        if object_limits is not None
                        else None
                    ),
                    "allow_inconsistent_reads": allow_inconsistent_reads,
                },
            )
        self.recorder.begin(txn)
        return txn

    def adopt(self, txn: TransactionState) -> None:
        """Register an externally-built transaction as globally active."""
        group_limits = {
            level: limit
            for level, (_usage, limit) in txn.account.level_snapshot().items()
            if level != ROOT_GROUP
        }
        with self._txn_lock:
            self._register(
                txn,
                {
                    "transaction_id": txn.transaction_id,
                    "kind": txn.kind.value,
                    "timestamp": txn.timestamp,
                    "bounds": txn.bounds,
                    "group_limits": group_limits or None,
                    "object_limits": dict(txn.object_limits) or None,
                    "allow_inconsistent_reads": (
                        txn.is_update and txn.import_account is not None
                    ),
                },
            )

    def _register(self, txn: TransactionState, descriptor: dict) -> None:
        self._active[txn.transaction_id] = txn
        self._touched[txn.transaction_id] = set()
        self._sync[txn.transaction_id] = _TxnSync(descriptor)
        self._siblings[txn.transaction_id] = {}

    def active_transactions(self) -> tuple[TransactionState, ...]:
        return tuple(self._active.values())

    # -- operations -------------------------------------------------------------

    def read(self, txn: TransactionState, object_id: int) -> Outcome:
        txn.require_active()
        self.database.get(object_id)  # unknown-object parity before any RPC
        return self._operate(txn, "read", object_id, 0.0)

    def write(
        self, txn: TransactionState, object_id: int, value: float
    ) -> Outcome:
        txn.require_active()
        if not txn.is_update:
            raise InvalidOperation(
                f"query transaction {txn.transaction_id} cannot write",
                txn.transaction_id,
            )
        self.database.get(object_id)
        return self._operate(txn, "write", object_id, float(value))

    def read_cached(
        self, txn: TransactionState, object_id: int
    ) -> Granted | None:
        """No snapshot cache in process mode — always fall back."""
        return None

    @staticmethod
    def _has_import(txn: TransactionState) -> bool:
        return (
            txn.import_account is not None
            and txn.import_account is not txn.account
        )

    def _dump_accounts(
        self, txn: TransactionState, has_import: bool
    ) -> tuple:
        return (
            txn.account.dump_state(),
            txn.import_account.dump_state() if has_import else None,
        )

    def _operate(
        self, txn: TransactionState, op: str, object_id: int, value: float
    ) -> Outcome:
        txn_id = txn.transaction_id
        shard = object_id % self.shards
        sync = self._sync.get(txn_id)
        if sync is None:
            raise InvalidOperation(
                f"transaction {txn_id} is not active", txn_id
            )
        if self._local[shard] is not None:
            return self._local_op(txn, shard, op, object_id, value)
        if self.shard_rpc == "legacy":
            return self._operate_legacy(txn, sync, shard, op, object_id, value)
        opcode = _OP_READ if op == "read" else _OP_WRITE
        has_import = self._has_import(txn)
        item = self._build_op_item(
            txn, sync, shard, opcode, object_id, value, has_import
        )
        try:
            reply = self._channels[shard].request(item)
            if reply[0] == "resync":
                # Version skew (the worker holds a different revision
                # than our record says — e.g. a dropped acknowledgement):
                # forget the record and re-send with a full dump.
                _perf.rpc_resyncs += 1
                sync.shard_versions.pop(shard, None)
                sync.pending.pop(shard, None)
                item = self._build_op_item(
                    txn, sync, shard, opcode, object_id, value, has_import
                )
                reply = self._channels[shard].request(item)
                if reply[0] == "resync":
                    raise ShardChannelError(
                        "worker refused a full-dump resync", shard, 1
                    )
        except (OSError, EOFError, ShardChannelError):
            return self._shard_failed(txn, shard)
        if reply[0] == "err":
            raise reply[1]
        outcome = reply[1]
        self._apply_sync_out(txn, sync, shard, reply[2], has_import)
        touched = self._touched.get(txn_id)
        if touched is not None:
            touched.add(shard)
        return self._absorb(
            txn, object_id, outcome, is_read=(op == "read"), value=value
        )

    def _build_op_item(
        self,
        txn: TransactionState,
        sync: _TxnSync,
        shard: int,
        opcode: int,
        object_id: int,
        value: float,
        has_import: bool,
    ) -> tuple:
        descriptor = None
        held = sync.shard_versions.get(shard)
        if held is None:
            # First touch: ship the sibling descriptor and the full state.
            descriptor = sync.descriptor
            sync_in: tuple = (
                "full",
                sync.version,
                self._dump_accounts(txn, has_import),
            )
            _perf.rpc_sync_full += 1
        elif held == sync.version:
            sync_in = ("none", sync.version)
            _perf.rpc_sync_none += 1
        else:
            entry = sync.pending.get(shard)
            if entry is None or entry is _PENDING_FULL:
                sync_in = (
                    "full",
                    sync.version,
                    self._dump_accounts(txn, has_import),
                )
                _perf.rpc_sync_full += 1
            else:
                account_acc, import_acc = entry
                sync_in = (
                    "delta",
                    held,
                    sync.version,
                    (
                        tuple(account_acc) if account_acc else None,
                        tuple(import_acc) if import_acc else None,
                    ),
                )
                _perf.rpc_sync_delta += 1
        return (
            "op",
            txn.transaction_id,
            opcode,
            object_id,
            value,
            descriptor,
            sync_in,
        )

    def _apply_sync_out(
        self,
        txn: TransactionState,
        sync: _TxnSync,
        shard: int,
        sync_out: tuple | None,
        has_import: bool,
    ) -> None:
        if sync_out is None:
            # The op charged nothing; the worker now simply holds
            # whatever revision the op frame brought it to.
            sync.shard_versions[shard] = sync.version
            sync.pending.pop(shard, None)
            return
        account_delta, import_delta = sync_out
        if account_delta is not None:
            txn.account.apply_delta(account_delta)
        if import_delta is not None and has_import:
            txn.import_account.apply_delta(import_delta)
        sync.version += 1
        sync.shard_versions[shard] = sync.version
        sync.pending.pop(shard, None)
        # Every other touched shard just fell one revision behind; fold
        # this delta into its pending accumulator so its next op ships
        # exactly the missed changes — O(changed entries), never a dump.
        for other in sync.shard_versions:
            if other == shard:
                continue
            entry = sync.pending.get(other)
            if entry is _PENDING_FULL:
                continue
            if entry is None:
                entry = [None, None]
                sync.pending[other] = entry
            if account_delta is not None:
                entry[0] = _merge_delta(entry[0], account_delta)
            if import_delta is not None:
                entry[1] = _merge_delta(entry[1], import_delta)

    def _operate_legacy(
        self,
        txn: TransactionState,
        sync: _TxnSync,
        shard: int,
        op: str,
        object_id: int,
        value: float,
    ) -> Outcome:
        """The original channel: one pickle round-trip per op, full dumps."""
        txn_id = txn.transaction_id
        descriptor = (
            sync.descriptor if shard not in sync.shard_versions else None
        )
        account_state = txn.account.dump_state()
        has_import = self._has_import(txn)
        import_state = txn.import_account.dump_state() if has_import else None
        frame = (
            "op",
            (
                txn_id,
                descriptor,
                op,
                object_id,
                value,
                account_state,
                import_state,
            ),
        )
        try:
            reply = self._channels[shard].request_legacy(frame)
        except (OSError, EOFError, ShardChannelError):
            return self._shard_failed(txn, shard)
        # Legacy mode keeps no versions; the entry just marks "descriptor
        # shipped" so later ops skip it.
        sync.shard_versions.setdefault(shard, 0)
        if reply[0] == "err":
            raise reply[1]
        outcome, account_state, import_state = reply[1]
        txn.account.load_state(account_state)
        if import_state is not None and has_import:
            txn.import_account.load_state(import_state)
        touched = self._touched.get(txn_id)
        if touched is not None:
            touched.add(shard)
        return self._absorb(
            txn, object_id, outcome, is_read=(op == "read"), value=value
        )

    def _local_op(
        self,
        txn: TransactionState,
        shard: int,
        op: str,
        object_id: int,
        value: float,
    ) -> Outcome:
        """Operate on a failed-over shard's in-process engine."""
        engine = self._local[shard]
        sync = self._sync.get(txn.transaction_id)
        fast = self.shard_rpc != "legacy"
        with self._local_locks[shard]:
            sibling = self._local_sibling(txn, shard)
            if op == "read":
                outcome = engine.read(sibling, object_id)
            else:
                outcome = engine.write(sibling, object_id, value)
        if sync is not None and fast:
            # The local engine mutated the shared canonical account
            # directly — there is no delta to accumulate, so move the
            # revision past every worker shard and force their next op
            # to carry a full dump.
            sync.version += 1
            for other in sync.shard_versions:
                if other != shard:
                    sync.pending[other] = _PENDING_FULL
        touched = self._touched.get(txn.transaction_id)
        if touched is not None:
            touched.add(shard)
        return self._absorb(
            txn, object_id, outcome, is_read=(op == "read"), value=value
        )

    def _local_sibling(
        self, txn: TransactionState, shard: int
    ) -> TransactionState:
        shard_map = self._siblings.get(txn.transaction_id)
        if shard_map is None:
            raise InvalidOperation(
                f"transaction {txn.transaction_id} is not active",
                txn.transaction_id,
            )
        sibling = shard_map.get(shard)
        if sibling is None:
            sibling = TransactionState(
                transaction_id=txn.transaction_id,
                kind=txn.kind,
                timestamp=txn.timestamp,
                bounds=txn.bounds,
                catalog=self.database.catalog,
            )
            # In-process again: the accounts can be shared directly, as
            # in the thread-based composite.
            sibling.account = txn.account
            sibling.import_account = txn.import_account
            sibling.object_limits = txn.object_limits
            shard_map[shard] = sibling
            self._local[shard].adopt(sibling)
        return sibling

    def _absorb(
        self,
        txn: TransactionState,
        object_id: int,
        outcome: Outcome,
        is_read: bool,
        value: float = 0.0,
    ) -> Outcome:
        """Mirror a shard outcome onto the global state and the recorder.

        Unlike the thread-based composite — whose inner engines share the
        composite's recorder — worker metrics are discarded, so the
        parent re-records each outcome exactly as a bare manager would.
        Outcome payloads (esr_case, charged inconsistency, values) ride
        the shard channel's reply frames, so parent-side events carry the
        same information worker-side recording would have.
        """
        shard = object_id % self.shards
        if isinstance(outcome, Granted):
            absorb_granted(txn, object_id, outcome, is_read)
            if is_read:
                self.recorder.read(txn, object_id, outcome, shard=shard)
            else:
                self.recorder.write(
                    txn, object_id, value, outcome, shard=shard
                )
        elif isinstance(outcome, MustWait):
            self.recorder.wait(
                txn,
                "read" if is_read else "write",
                object_id,
                outcome.blocking_transaction,
                shard=shard,
            )
        elif isinstance(outcome, Rejected):
            # The shard already aborted and finished the sibling it saw;
            # record as the bare manager's _reject would, then propagate
            # the abort to every other touched shard.
            self.recorder.rejection(
                txn, "read" if is_read else "write", object_id, outcome,
                shard=shard,
            )
            self._finish_global(
                txn,
                TransactionStatus.ABORTED,
                outcome.reason,
                record=True,
                already_finished=object_id % self.shards,
            )
        return outcome

    # -- completion --------------------------------------------------------------

    def commit(self, txn: TransactionState) -> None:
        txn.require_active()
        self._finish_global(
            txn, TransactionStatus.COMMITTED, None, record=True
        )

    def abort(
        self, txn: TransactionState, reason: str = REASON_CLIENT_ABORT
    ) -> None:
        if txn.status is TransactionStatus.ABORTED:
            return
        if txn.status is TransactionStatus.COMMITTED:
            raise InvalidOperation(
                f"cannot abort committed transaction {txn.transaction_id}",
                txn.transaction_id,
            )
        self._finish_global(
            txn, TransactionStatus.ABORTED, reason, record=True
        )

    def _finish_global(
        self,
        txn: TransactionState,
        status: TransactionStatus,
        reason: str | None,
        record: bool,
        already_finished: int | None = None,
    ) -> None:
        """Decide the completion once, fan it out to every touched shard.

        Complete items ride the same batch frames as ops, so a busy
        channel coalesces completions from concurrent transactions into
        shared round-trips."""
        with self._txn_lock:
            self._completing.add(txn.transaction_id)
            touched = self._touched.pop(txn.transaction_id, set())
            local_map = self._siblings.pop(txn.transaction_id, {})
            self._sync.pop(txn.transaction_id, None)
            self._active.pop(txn.transaction_id, None)
        committing = status is TransactionStatus.COMMITTED
        legacy = self.shard_rpc == "legacy"
        for shard in sorted(touched):
            if shard == already_finished:
                continue
            engine = self._local[shard]
            if engine is not None:
                sibling = local_map.get(shard)
                if sibling is not None and sibling.is_active:
                    with self._local_locks[shard]:
                        engine.complete(sibling, status, reason)
                continue
            try:
                if legacy:
                    reply = self._channels[shard].request_legacy(
                        ("complete", txn.transaction_id, status.value, reason)
                    )
                    kind = "committed" if reply[0] == "ok" else reply[0]
                else:
                    reply = self._channels[shard].request(
                        ("complete", txn.transaction_id, status.value, reason)
                    )
                    kind = reply[0]
            except (OSError, EOFError, ShardChannelError):
                # The shard's staged effects died with its worker; the
                # mirror below is the surviving committed state.
                self._failover(shard)
                continue
            if kind == "err":
                continue
            if committing:
                for object_id, (value, write_ts) in reply[1].items():
                    self.database.get(object_id).adopt_committed(
                        value, write_ts
                    )
        if status is TransactionStatus.ABORTED:
            txn.abort_reason = reason
            if record:
                self.recorder.abort(txn, reason)
        elif record:
            self.recorder.commit(txn)
        txn.status = status
        self.waits.fire(txn.transaction_id)
        self._completing.discard(txn.transaction_id)

    # -- worker failure ----------------------------------------------------------

    def _shard_failed(self, txn: TransactionState, shard: int) -> Rejected:
        """An op hit a dead worker: fail the shard over, abort the txn."""
        self._failover(shard)
        if txn.is_active:
            self._finish_global(
                txn,
                TransactionStatus.ABORTED,
                REASON_SHARD_FAILOVER,
                record=True,
            )
        return Rejected(
            REASON_SHARD_FAILOVER,
            detail=(
                f"shard {shard} worker died; the shard continues in-process"
            ),
        )

    def _failover(self, shard: int) -> None:
        """Replace a dead worker with an in-process engine over the mirror.

        Committed state survives (the parent mirrors every commit);
        whatever lived only inside the worker — staged writes, read
        timestamps, reader registries, version history — is gone, so
        every transaction that touched the shard is aborted with
        ``"shard-failover"`` and restarts under a fresh timestamp.
        """
        with self._failover_lock:
            if self._local[shard] is not None or self._closed:
                return
            self._channels[shard].close(timeout=0.2)
            _perf.shard_failovers += 1
            engine = build_unsharded(
                self._databases[shard],
                self._spec,
                distance=self.distance,
                export_policy=self.export_policy,
                wait_policy=self.wait_policy,
            )
            engine.waits = self.waits
            self._local[shard] = engine
        for txn in list(self._active.values()):
            touched = self._touched.get(txn.transaction_id)
            if touched is not None and shard in touched and txn.is_active:
                self._finish_global(
                    txn,
                    TransactionStatus.ABORTED,
                    REASON_SHARD_FAILOVER,
                    record=True,
                    already_finished=shard,
                )

    # -- teardown ----------------------------------------------------------------

    def close(self) -> None:
        """Shut every worker down (idempotent); never leaves orphans."""
        if self._closed:
            return
        self._closed = True
        for channel in self._channels:
            channel.close()
        self._finalizer.detach()

    def __enter__(self) -> "ProcessShardedEngine":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:
        failed = len(self.failed_shards())
        degraded = f", failed_over={failed}" if failed else ""
        return (
            f"ProcessShardedEngine(protocol={self.protocol!r}, "
            f"shards={self.shards}, active={len(self._active)}, "
            f"objects={len(self.database)}{degraded})"
        )
