"""Process-sharded composite engine: one worker process per shard.

:class:`ProcessShardedEngine` is the multi-core sibling of
:class:`~repro.engine.sharded.ShardedEngine`.  The thread-based composite
partitions work but not the GIL — its shard threads serialise on the
interpreter lock, so BENCH_net's ``speedup_sharded`` sits *below* 1 on
CPU-bound write loads.  This engine moves each shard's inner engine into
its own **process**, connected to the parent by a small length-prefixed
pickle RPC over a ``socketpair``, so shards genuinely execute in
parallel while the parent keeps presenting the ordinary
:class:`~repro.engine.api.Engine` surface to every host (threaded
server, asyncio server, DES, CLI, bench-net).

**The cross-process commit protocol.**  The thread-based composite makes
TIL/TEL/GIL accounting atomic across shards by installing one lock per
transaction on its :class:`~repro.core.accounting.InconsistencyAccount`.
A lock cannot span processes, but it also is not needed: every engine
decision charges only the *operating* transaction's own account, and one
transaction's operations are serialised by its client connection (the
threaded server runs a connection on one handler thread; the asyncio
server pins a connection to one dispatch lane).  So the account state
can simply travel with the operation:

1. the parent ships the canonical account state (ledger usage per level,
   per-object charges, inconsistent-op count, observed value ranges)
   with each ``op`` frame;
2. the shard worker overwrites its sibling's account, runs the ordinary
   engine decision — the *same* exactly-at-limit ledger walk, now seeded
   with charges accumulated on other shards — and returns the post-state;
3. the parent adopts the post-state, so the next operation (any shard)
   and the commit-time ``record_commit(imported, exported)`` see exactly
   what one in-process ledger would have seen.

Commit/abort is decided once by the parent and fanned out as
``complete`` frames; each worker applies the usual ``complete`` hook and
a commit reply carries the ``{object_id: (value, write_ts)}`` pairs the
promotion produced, which the parent adopts into its mirror database
(reports, tests and failover all read coherent committed state there).

**Waits and deadlock edges.**  Workers never park anything: ``MustWait``
propagates to the parent and hosts subscribe against the parent's shared
registry exactly as with the thread-based composite.  When a waiter
parks, the parent broadcasts the wait-for edge (``wait_note``) to every
worker, and completion broadcasts ``wakeup`` — the workers mirror the
edges into their local registries so the 2PL engines' deadlock walk sees
cross-shard cycles.  The same residual caveat as the thread composite
applies (two simultaneous parkers can slip past the check), which is why
the servers keep their ``wait_timeout`` guard.

**Metrics.**  Worker engines record into throwaway local collectors;
the parent reconstructs every counter from the outcomes it relays
(granted read/write with the ESR case, wait, rejection, abort, commit
with the synced imported/exported totals), so the composite's snapshot
matches a bare manager's on the same trace.  Worker-side
:mod:`repro.perf` counters stay in the worker and are not aggregated.

**Degradation and failure.**  ``create_engine(..., processes=True)``
falls back to the thread-based composite (tagging it with
``process_degraded``) when the host has one core or no ``fork`` start
method; ``processes="force"`` insists on real processes regardless of
core count (tests, CI).  If a worker dies mid-run the parent rebuilds
that shard in-process over the mirror database, aborts every transaction
whose staged state died with the worker (reason ``"shard-failover"``),
and keeps serving — a benchmark degrades instead of hanging.  Staged
writes, read-timestamp metadata and version history accumulated inside
the dead worker are lost; committed state survives via the mirror.

Construction forks the workers, so build the engine before starting
server threads (both servers construct their engine before binding).
The snapshot read cache is not supported in process mode — the cache
publishes from inside the engine critical section, which now lives in
another process — and ``validate_protocol_options`` rejects the combination.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import socket
import struct
import threading
import time
import weakref
from typing import Callable, Mapping

from repro.core.bounds import EpsilonLevel, TransactionBounds
from repro.core.hierarchy import ROOT_GROUP
from repro.core.metric import DistanceFunction, absolute_distance
from repro.engine.api import (
    build_unsharded,
    protocol_spec,
    validate_protocol_options,
)
from repro.engine.database import Database
from repro.engine.metrics import MetricsCollector
from repro.engine.results import Granted, MustWait, Outcome, Rejected
from repro.engine.scheduler import WaitRegistry
from repro.engine.sharded import (
    _SELF_FIRE_BACKOFF_CAP,
    _SELF_FIRE_BACKOFF_INITIAL,
    _LockedMetrics,
    _SharedWaitRegistry,
)
from repro.engine.timestamps import Timestamp, TimestampGenerator
from repro.engine.transactions import (
    TransactionKind,
    TransactionState,
    TransactionStatus,
)
from repro.errors import InvalidOperation
from repro.perf import counters as _perf

__all__ = [
    "ProcessShardedEngine",
    "process_sharding_unavailable",
    "REASON_SHARD_FAILOVER",
]

#: Abort reason used when a shard worker dies with a transaction's staged
#: state inside it.
REASON_SHARD_FAILOVER = "shard-failover"

_HEADER = struct.Struct("!I")


# -- framing -------------------------------------------------------------------


def _send_frame(sock: socket.socket, frame: object) -> None:
    payload = pickle.dumps(frame, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise EOFError("shard channel closed")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _recv_frame(sock: socket.socket) -> object:
    (length,) = _HEADER.unpack(_recv_exact(sock, _HEADER.size))
    return pickle.loads(_recv_exact(sock, length))


# -- worker side ---------------------------------------------------------------


class _MirrorWaitRegistry(WaitRegistry):
    """Worker-local registry fed by the parent's wait_note/wakeup frames.

    Nothing subscribes inside a worker (waiting is the parent's job); the
    registry exists so the 2PL deadlock walk — ``waits.waiting_on(node)``
    — sees the cross-shard wait-for edges the parent observed.
    """

    def note(self, waiter: int, blocker: int) -> None:
        self._waiting_on[waiter] = blocker


def _build_sibling(
    engine, descriptor: dict, siblings: dict[int, TransactionState]
) -> TransactionState:
    sibling = TransactionState(
        transaction_id=descriptor["transaction_id"],
        kind=TransactionKind(descriptor["kind"]),
        timestamp=descriptor["timestamp"],
        bounds=descriptor["bounds"],
        catalog=engine.database.catalog,
        group_limits=descriptor["group_limits"],
        object_limits=descriptor["object_limits"],
        allow_inconsistent_reads=descriptor["allow_inconsistent_reads"],
    )
    engine.adopt(sibling)
    siblings[sibling.transaction_id] = sibling
    return sibling


def _handle_op(engine, siblings: dict[int, TransactionState], payload):
    txn_id, descriptor, op, object_id, value, account_state, import_state = (
        payload
    )
    sibling = siblings.get(txn_id)
    if sibling is None:
        sibling = _build_sibling(engine, descriptor, siblings)
    sibling.account.load_state(account_state)
    has_import = (
        sibling.import_account is not None
        and sibling.import_account is not sibling.account
    )
    if import_state is not None and has_import:
        sibling.import_account.load_state(import_state)
    if op == "read":
        outcome = engine.read(sibling, object_id)
    else:
        outcome = engine.write(sibling, object_id, value)
    if not sibling.is_active:
        # A rejection auto-aborted (and finished) the sibling.
        siblings.pop(txn_id, None)
    import_dump = sibling.import_account.dump_state() if has_import else None
    return (outcome, sibling.account.dump_state(), import_dump)


def _handle_complete(
    engine,
    siblings: dict[int, TransactionState],
    txn_id: int,
    status_value: str,
    reason: str | None,
):
    sibling = siblings.pop(txn_id, None)
    if sibling is None:
        return {}
    status = TransactionStatus(status_value)
    if sibling.is_active:
        engine.complete(sibling, status, reason)
    committed: dict[int, tuple[float, Timestamp]] = {}
    if status is TransactionStatus.COMMITTED:
        for object_id in sibling.write_set:
            obj = engine.database.get(object_id)
            committed[object_id] = (obj.committed_value, obj.committed_write_ts)
    return committed


def _worker_main(
    sock: socket.socket,
    inherited: list[socket.socket],
    shard_db: Database,
    protocol: str,
    distance: DistanceFunction,
    export_policy: str,
    wait_policy: str,
) -> None:
    """One shard worker: an ordinary engine behind a frame loop."""
    # Forked children inherit every socketpair created before their fork;
    # close the ones that are not ours so the parent closing a channel
    # produces EOF at its worker instead of lingering in our fd table.
    for other in inherited:
        try:
            other.close()
        except OSError:
            pass
    engine = build_unsharded(
        shard_db,
        protocol_spec(protocol),
        distance=distance,
        export_policy=export_policy,
        wait_policy=wait_policy,
    )
    engine.waits = _MirrorWaitRegistry()
    siblings: dict[int, TransactionState] = {}
    try:
        while True:
            frame = _recv_frame(sock)
            kind = frame[0]
            if kind == "op":
                try:
                    reply = ("ok", _handle_op(engine, siblings, frame[1]))
                except Exception as exc:  # relayed to the caller
                    reply = ("err", exc)
                _send_frame(sock, reply)
            elif kind == "complete":
                try:
                    reply = (
                        "ok",
                        _handle_complete(
                            engine, siblings, frame[1], frame[2], frame[3]
                        ),
                    )
                except Exception as exc:
                    reply = ("err", exc)
                _send_frame(sock, reply)
            elif kind == "wait_note":
                engine.waits.note(frame[1], frame[2])
            elif kind == "wakeup":
                engine.waits.fire(frame[1])
            elif kind == "shutdown":
                return
    except (EOFError, OSError):
        return
    finally:
        try:
            sock.close()
        except OSError:
            pass


# -- parent side ---------------------------------------------------------------


class _WorkerChannel:
    """One shard's RPC endpoint: socket + process + a send/recv lock.

    The lock is held across a request's send *and* receive, so replies
    pair with requests even when several server threads hit the same
    shard; one-way posts interleave FIFO-safely on the same socket.
    """

    def __init__(self, sock: socket.socket, process) -> None:
        self.sock = sock
        self.process = process
        self.lock = threading.Lock()
        self.closed = False

    def request(self, frame: object):
        with self.lock:
            if self.closed:
                raise EOFError("shard channel closed")
            _send_frame(self.sock, frame)
            return _recv_frame(self.sock)

    def post(self, frame: object) -> None:
        with self.lock:
            if self.closed:
                return
            _send_frame(self.sock, frame)

    def close(self, timeout: float = 1.0) -> None:
        with self.lock:
            if not self.closed:
                self.closed = True
                try:
                    _send_frame(self.sock, ("shutdown",))
                except OSError:
                    pass
                try:
                    self.sock.close()
                except OSError:
                    pass
        if self.process is not None:
            self.process.join(timeout)
            if self.process.is_alive():
                self.process.terminate()
                self.process.join(timeout)


def _reap(channels: list[_WorkerChannel]) -> None:
    """weakref.finalize hook: never leak worker processes."""
    for channel in channels:
        try:
            channel.close(timeout=0.5)
        except Exception:
            pass


def process_sharding_unavailable() -> str | None:
    """Why real process sharding would not help here, or None if it would.

    ``"no-fork"`` — the platform cannot fork (workers inherit their shard
    database and socket by fork; spawn cannot ship the socketpair).
    ``"single-core"`` — forking N workers onto one core only adds IPC
    cost; the thread-based composite is the better engine there.
    """
    if "fork" not in multiprocessing.get_all_start_methods():
        return "no-fork"
    if (os.cpu_count() or 1) <= 1:
        return "single-core"
    return None


class _ProcessWaitRegistry(_SharedWaitRegistry):
    """The shared parent registry plus cross-process edge mirroring."""

    def __init__(
        self,
        is_active: Callable[[int], bool],
        is_completing: Callable[[int], bool],
        broadcast: Callable[[tuple], None],
    ) -> None:
        super().__init__(is_active, is_completing)
        self._broadcast = broadcast

    def subscribe(
        self,
        blocking_transaction: int,
        callback: Callable[[], None],
        waiter_transaction: int | None = None,
    ) -> None:
        parked = False
        backoff = 0.0
        with self._lock:
            if self._is_active(blocking_transaction):
                self._self_fires.pop(
                    (waiter_transaction, blocking_transaction), None
                )
                WaitRegistry.subscribe(
                    self,
                    blocking_transaction,
                    callback,
                    waiter_transaction=waiter_transaction,
                )
                parked = True
            elif self._is_completing(blocking_transaction):
                key = (waiter_transaction, blocking_transaction)
                count = self._self_fires.get(key, 0)
                self._self_fires[key] = count + 1
                backoff = min(
                    _SELF_FIRE_BACKOFF_INITIAL * (2**count),
                    _SELF_FIRE_BACKOFF_CAP,
                )
        if parked:
            if waiter_transaction is not None:
                self._broadcast(
                    ("wait_note", waiter_transaction, blocking_transaction)
                )
            return
        if backoff > 0.0:
            time.sleep(backoff)
        callback()

    def fire(self, completed_transaction: int) -> int:
        count = super().fire(completed_transaction)
        self._broadcast(("wakeup", completed_transaction))
        return count


class ProcessShardedEngine:
    """N per-shard engines in worker processes behind the one
    :class:`~repro.engine.api.Engine` interface."""

    #: Hosts holding a global engine mutex may skip it for this engine —
    #: the per-shard channel locks are the critical sections.
    thread_safe = True

    def __init__(
        self,
        database: Database,
        protocol: str = "esr",
        *,
        shards: int,
        distance: DistanceFunction = absolute_distance,
        export_policy: str = "max",
        wait_policy: str = "wait",
        snapshot_cache: bool = False,
        metrics: MetricsCollector | None = None,
        timestamps: TimestampGenerator | None = None,
    ):
        self._spec = validate_protocol_options(
            protocol,
            snapshot_cache=snapshot_cache,
            wait_policy=wait_policy,
            shards=shards,
            processes=True,
        )
        self.database = database
        self.protocol = protocol
        self.shards = shards
        self.wait_policy = wait_policy
        self.export_policy = export_policy
        self.distance = distance
        self.metrics = metrics if metrics is not None else _LockedMetrics()
        #: No snapshot cache in process mode (see module docstring).
        self.snapshot = None
        self._timestamps = (
            timestamps if timestamps is not None else TimestampGenerator()
        )
        self._next_id = 1
        self._txn_lock = threading.Lock()
        self._active: dict[int, TransactionState] = {}
        #: Global txn id -> shards it has operated on (completion fan-out).
        self._touched: dict[int, set[int]] = {}
        #: Global txn id -> shards already holding its sibling descriptor.
        self._shipped: dict[int, set[int]] = {}
        #: Global txn id -> the picklable BEGIN descriptor shipped on a
        #: shard's first touch.
        self._specs: dict[int, dict] = {}
        #: Global txn id -> {shard: sibling} for *failed-over* (local)
        #: shards only; healthy shards keep their siblings worker-side.
        self._siblings: dict[int, dict[int, TransactionState]] = {}
        self._completing: set[int] = set()
        self.waits = _ProcessWaitRegistry(
            self._is_globally_active, self._is_completing, self._broadcast
        )
        # Shard-local database views aliasing the parent's objects.  The
        # fork below copy-on-writes them into each worker; the parent's
        # originals stay behind as the committed-state mirror and as the
        # substrate for in-process failover engines.
        self._databases = [
            Database(
                catalog=database.catalog,
                version_window=database.version_window,
            )
            for _ in range(shards)
        ]
        for obj in database.objects():
            self._databases[obj.object_id % shards].adopt_object(obj)
        #: In-process replacement engines for dead shards (None = healthy).
        self._local: list[object | None] = [None] * shards
        self._local_locks = [threading.Lock() for _ in range(shards)]
        self._failover_lock = threading.RLock()
        self._closed = False
        context = multiprocessing.get_context("fork")
        pairs = [socket.socketpair() for _ in range(shards)]
        self._channels: list[_WorkerChannel] = []
        for shard in range(shards):
            parent_sock, child_sock = pairs[shard]
            inherited = [
                endpoint
                for index, pair in enumerate(pairs)
                if index != shard
                for endpoint in pair
            ]
            process = context.Process(
                target=_worker_main,
                args=(
                    child_sock,
                    inherited,
                    self._databases[shard],
                    protocol,
                    distance,
                    export_policy,
                    wait_policy,
                ),
                name=f"repro-shard-{shard}",
                daemon=True,
            )
            process.start()
            self._channels.append(_WorkerChannel(parent_sock, process))
        for _, child_sock in pairs:
            child_sock.close()
        self._finalizer = weakref.finalize(self, _reap, list(self._channels))

    # -- routing ---------------------------------------------------------------

    def shard_of(self, object_id: int) -> int:
        return object_id % self.shards

    def worker_pids(self) -> tuple[int | None, ...]:
        """Worker process ids (None once a shard has failed over)."""
        return tuple(
            None
            if channel.closed or channel.process is None
            else channel.process.pid
            for channel in self._channels
        )

    def failed_shards(self) -> tuple[int, ...]:
        return tuple(
            shard
            for shard, local in enumerate(self._local)
            if local is not None
        )

    def _is_globally_active(self, transaction_id: int) -> bool:
        return transaction_id in self._active

    def _is_completing(self, transaction_id: int) -> bool:
        return transaction_id in self._completing

    def _broadcast(self, frame: tuple) -> None:
        for channel in self._channels:
            try:
                channel.post(frame)
            except OSError:
                pass  # the op path notices the dead worker and fails over

    # -- lifecycle -------------------------------------------------------------

    def begin(
        self,
        kind: TransactionKind | str,
        bounds: TransactionBounds | EpsilonLevel | None = None,
        timestamp: Timestamp | None = None,
        group_limits: Mapping[str, float] | None = None,
        object_limits: Mapping[int, float] | None = None,
        allow_inconsistent_reads: bool = False,
    ) -> TransactionState:
        if isinstance(kind, str):
            kind = TransactionKind(kind.lower())
        if bounds is None:
            bounds = TransactionBounds()
        elif isinstance(bounds, EpsilonLevel):
            bounds = bounds.transaction
        with self._txn_lock:
            if timestamp is None:
                timestamp = self._timestamps.next()
            txn = TransactionState(
                transaction_id=self._next_id,
                kind=kind,
                timestamp=timestamp,
                bounds=bounds,
                catalog=self.database.catalog,
                group_limits=group_limits,
                object_limits=object_limits,
                allow_inconsistent_reads=allow_inconsistent_reads,
            )
            self._next_id += 1
            self._register(
                txn,
                {
                    "transaction_id": txn.transaction_id,
                    "kind": kind.value,
                    "timestamp": timestamp,
                    "bounds": bounds,
                    "group_limits": (
                        dict(group_limits) if group_limits is not None else None
                    ),
                    "object_limits": (
                        dict(object_limits)
                        if object_limits is not None
                        else None
                    ),
                    "allow_inconsistent_reads": allow_inconsistent_reads,
                },
            )
        return txn

    def adopt(self, txn: TransactionState) -> None:
        """Register an externally-built transaction as globally active."""
        group_limits = {
            level: limit
            for level, (_usage, limit) in txn.account.level_snapshot().items()
            if level != ROOT_GROUP
        }
        with self._txn_lock:
            self._register(
                txn,
                {
                    "transaction_id": txn.transaction_id,
                    "kind": txn.kind.value,
                    "timestamp": txn.timestamp,
                    "bounds": txn.bounds,
                    "group_limits": group_limits or None,
                    "object_limits": dict(txn.object_limits) or None,
                    "allow_inconsistent_reads": (
                        txn.is_update and txn.import_account is not None
                    ),
                },
            )

    def _register(self, txn: TransactionState, descriptor: dict) -> None:
        self._active[txn.transaction_id] = txn
        self._touched[txn.transaction_id] = set()
        self._shipped[txn.transaction_id] = set()
        self._specs[txn.transaction_id] = descriptor
        self._siblings[txn.transaction_id] = {}

    def active_transactions(self) -> tuple[TransactionState, ...]:
        return tuple(self._active.values())

    # -- operations -------------------------------------------------------------

    def read(self, txn: TransactionState, object_id: int) -> Outcome:
        txn.require_active()
        self.database.get(object_id)  # unknown-object parity before any RPC
        return self._operate(txn, "read", object_id, 0.0)

    def write(
        self, txn: TransactionState, object_id: int, value: float
    ) -> Outcome:
        txn.require_active()
        if not txn.is_update:
            raise InvalidOperation(
                f"query transaction {txn.transaction_id} cannot write",
                txn.transaction_id,
            )
        self.database.get(object_id)
        return self._operate(txn, "write", object_id, float(value))

    def read_cached(
        self, txn: TransactionState, object_id: int
    ) -> Granted | None:
        """No snapshot cache in process mode — always fall back."""
        return None

    def _operate(
        self, txn: TransactionState, op: str, object_id: int, value: float
    ) -> Outcome:
        txn_id = txn.transaction_id
        shard = object_id % self.shards
        shipped = self._shipped.get(txn_id)
        if shipped is None:
            raise InvalidOperation(
                f"transaction {txn_id} is not active", txn_id
            )
        if self._local[shard] is not None:
            return self._local_op(txn, shard, op, object_id, value)
        descriptor = self._specs[txn_id] if shard not in shipped else None
        account_state = txn.account.dump_state()
        has_import = (
            txn.import_account is not None
            and txn.import_account is not txn.account
        )
        import_state = txn.import_account.dump_state() if has_import else None
        frame = (
            "op",
            (
                txn_id,
                descriptor,
                op,
                object_id,
                value,
                account_state,
                import_state,
            ),
        )
        try:
            reply = self._channels[shard].request(frame)
        except (OSError, EOFError):
            return self._shard_failed(txn, shard)
        shipped.add(shard)
        if reply[0] == "err":
            raise reply[1]
        outcome, account_state, import_state = reply[1]
        txn.account.load_state(account_state)
        if import_state is not None and has_import:
            txn.import_account.load_state(import_state)
        touched = self._touched.get(txn_id)
        if touched is not None:
            touched.add(shard)
        return self._absorb(txn, object_id, outcome, is_read=(op == "read"))

    def _local_op(
        self,
        txn: TransactionState,
        shard: int,
        op: str,
        object_id: int,
        value: float,
    ) -> Outcome:
        """Operate on a failed-over shard's in-process engine."""
        engine = self._local[shard]
        with self._local_locks[shard]:
            sibling = self._local_sibling(txn, shard)
            if op == "read":
                outcome = engine.read(sibling, object_id)
            else:
                outcome = engine.write(sibling, object_id, value)
        touched = self._touched.get(txn.transaction_id)
        if touched is not None:
            touched.add(shard)
        return self._absorb(txn, object_id, outcome, is_read=(op == "read"))

    def _local_sibling(
        self, txn: TransactionState, shard: int
    ) -> TransactionState:
        shard_map = self._siblings.get(txn.transaction_id)
        if shard_map is None:
            raise InvalidOperation(
                f"transaction {txn.transaction_id} is not active",
                txn.transaction_id,
            )
        sibling = shard_map.get(shard)
        if sibling is None:
            sibling = TransactionState(
                transaction_id=txn.transaction_id,
                kind=txn.kind,
                timestamp=txn.timestamp,
                bounds=txn.bounds,
                catalog=self.database.catalog,
            )
            # In-process again: the accounts can be shared directly, as
            # in the thread-based composite.
            sibling.account = txn.account
            sibling.import_account = txn.import_account
            sibling.object_limits = txn.object_limits
            shard_map[shard] = sibling
            self._local[shard].adopt(sibling)
        return sibling

    def _absorb(
        self,
        txn: TransactionState,
        object_id: int,
        outcome: Outcome,
        is_read: bool,
    ) -> Outcome:
        """Mirror a shard outcome onto the global state and the metrics.

        Unlike the thread-based composite — whose inner engines share the
        composite's collector — worker metrics are discarded, so the
        parent re-records each outcome exactly as a bare manager would.
        """
        if isinstance(outcome, Granted):
            if is_read:
                txn.read_set.add(object_id)
                self.metrics.record_read(outcome.esr_case)
            else:
                txn.write_set.add(object_id)
                self.metrics.record_write(outcome.esr_case)
            txn.operations += 1
            if outcome.esr_case is not None:
                txn.inconsistent_operations += 1
        elif isinstance(outcome, MustWait):
            self.metrics.record_wait()
        elif isinstance(outcome, Rejected):
            # The shard already aborted and finished the sibling it saw;
            # record as the bare manager's _reject would, then propagate
            # the abort to every other touched shard.
            self.metrics.record_rejection()
            self._finish_global(
                txn,
                TransactionStatus.ABORTED,
                outcome.reason,
                record=True,
                already_finished=object_id % self.shards,
            )
        return outcome

    # -- completion --------------------------------------------------------------

    def commit(self, txn: TransactionState) -> None:
        txn.require_active()
        self._finish_global(
            txn, TransactionStatus.COMMITTED, None, record=True
        )

    def abort(
        self, txn: TransactionState, reason: str = "client-abort"
    ) -> None:
        if txn.status is TransactionStatus.ABORTED:
            return
        if txn.status is TransactionStatus.COMMITTED:
            raise InvalidOperation(
                f"cannot abort committed transaction {txn.transaction_id}",
                txn.transaction_id,
            )
        self._finish_global(
            txn, TransactionStatus.ABORTED, reason, record=True
        )

    def _finish_global(
        self,
        txn: TransactionState,
        status: TransactionStatus,
        reason: str | None,
        record: bool,
        already_finished: int | None = None,
    ) -> None:
        """Decide the completion once, fan it out to every touched shard."""
        with self._txn_lock:
            self._completing.add(txn.transaction_id)
            touched = self._touched.pop(txn.transaction_id, set())
            local_map = self._siblings.pop(txn.transaction_id, {})
            self._shipped.pop(txn.transaction_id, None)
            self._specs.pop(txn.transaction_id, None)
            self._active.pop(txn.transaction_id, None)
        committing = status is TransactionStatus.COMMITTED
        for shard in sorted(touched):
            if shard == already_finished:
                continue
            engine = self._local[shard]
            if engine is not None:
                sibling = local_map.get(shard)
                if sibling is not None and sibling.is_active:
                    with self._local_locks[shard]:
                        engine.complete(sibling, status, reason)
                continue
            try:
                reply = self._channels[shard].request(
                    ("complete", txn.transaction_id, status.value, reason)
                )
            except (OSError, EOFError):
                # The shard's staged effects died with its worker; the
                # mirror below is the surviving committed state.
                self._failover(shard)
                continue
            if reply[0] == "err":
                continue
            if committing:
                for object_id, (value, write_ts) in reply[1].items():
                    self.database.get(object_id).adopt_committed(
                        value, write_ts
                    )
        if status is TransactionStatus.ABORTED:
            txn.abort_reason = reason
            if record:
                self.metrics.record_abort(reason or "unknown")
        elif record:
            self.metrics.record_commit(
                txn.is_query, txn.imported, txn.exported
            )
        txn.status = status
        self.waits.fire(txn.transaction_id)
        self._completing.discard(txn.transaction_id)

    # -- worker failure ----------------------------------------------------------

    def _shard_failed(self, txn: TransactionState, shard: int) -> Rejected:
        """An op hit a dead worker: fail the shard over, abort the txn."""
        self._failover(shard)
        if txn.is_active:
            self._finish_global(
                txn,
                TransactionStatus.ABORTED,
                REASON_SHARD_FAILOVER,
                record=True,
            )
        return Rejected(
            REASON_SHARD_FAILOVER,
            detail=(
                f"shard {shard} worker died; the shard continues in-process"
            ),
        )

    def _failover(self, shard: int) -> None:
        """Replace a dead worker with an in-process engine over the mirror.

        Committed state survives (the parent mirrors every commit);
        whatever lived only inside the worker — staged writes, read
        timestamps, reader registries, version history — is gone, so
        every transaction that touched the shard is aborted with
        ``"shard-failover"`` and restarts under a fresh timestamp.
        """
        with self._failover_lock:
            if self._local[shard] is not None or self._closed:
                return
            self._channels[shard].close(timeout=0.2)
            _perf.shard_failovers += 1
            engine = build_unsharded(
                self._databases[shard],
                self._spec,
                distance=self.distance,
                export_policy=self.export_policy,
                wait_policy=self.wait_policy,
            )
            engine.waits = self.waits
            self._local[shard] = engine
        for txn in list(self._active.values()):
            touched = self._touched.get(txn.transaction_id)
            if touched is not None and shard in touched and txn.is_active:
                self._finish_global(
                    txn,
                    TransactionStatus.ABORTED,
                    REASON_SHARD_FAILOVER,
                    record=True,
                    already_finished=shard,
                )

    # -- teardown ----------------------------------------------------------------

    def close(self) -> None:
        """Shut every worker down (idempotent); never leaves orphans."""
        if self._closed:
            return
        self._closed = True
        for channel in self._channels:
            channel.close()
        self._finalizer.detach()

    def __enter__(self) -> "ProcessShardedEngine":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:
        failed = len(self.failed_shards())
        degraded = f", failed_over={failed}" if failed else ""
        return (
            f"ProcessShardedEngine(protocol={self.protocol!r}, "
            f"shards={self.shards}, active={len(self._active)}, "
            f"objects={len(self.database)}{degraded})"
        )
