"""The transaction manager: begin / read / write / commit / abort.

This is the server's brain (paper section 6): it owns the database, the
concurrency-control decisions (SR or ESR), the wait registry, and the
performance counters.  It is runtime-agnostic — purely synchronous calls
that never block; waiting and retrying are the hosting runtime's job:

* :meth:`read` / :meth:`write` return a
  :class:`~repro.engine.results.Granted`,
  :class:`~repro.engine.results.MustWait` or
  :class:`~repro.engine.results.Rejected` outcome;
* a ``MustWait`` means "retry this exact operation after the blocking
  transaction completes" — subscribe via :attr:`waits`;
* a ``Rejected`` outcome has **already aborted the transaction** (the
  paper's protocol: a failed operation aborts the transaction, which the
  client resubmits under a fresh timestamp).

Protocols: ``"esr"`` runs the enhanced decisions of
:mod:`repro.engine.esr`; ``"sr"`` runs the plain strict-TSO baseline.
ESR with all bounds at zero admits only zero-divergence relaxations and is
behaviourally the SR case of the paper's experiments.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.bounds import EpsilonLevel, TransactionBounds
from repro.core.metric import DistanceFunction, absolute_distance
from repro.engine.database import Database
from repro.engine.esr import esr_read_decision, esr_write_decision
from repro.engine.history import HistoryRecorder
from repro.engine.metrics import MetricsCollector
from repro.engine.reasons import REASON_CLIENT_ABORT, REASON_CONFLICT_ABORT
from repro.engine.results import Granted, MustWait, Outcome, Rejected
from repro.engine.scheduler import WaitRegistry
from repro.engine.snapshot import SnapshotStore, snapshot_read
from repro.engine.timestamps import Timestamp, TimestampGenerator
from repro.engine.transactions import (
    TransactionKind,
    TransactionState,
    TransactionStatus,
)
from repro.engine.tso import sr_read_decision, sr_write_decision
from repro.errors import InvalidOperation, SpecificationError

__all__ = ["PROTOCOLS", "TransactionManager"]

PROTOCOLS = ("esr", "sr")


class TransactionManager:
    """Coordinates transactions over one :class:`Database`."""

    def __init__(
        self,
        database: Database,
        protocol: str = "esr",
        distance: DistanceFunction = absolute_distance,
        export_policy: str = "max",
        metrics: MetricsCollector | None = None,
        timestamps: TimestampGenerator | None = None,
        wait_policy: str = "wait",
        snapshot_cache: bool = False,
        recorder: HistoryRecorder | None = None,
        record_history: bool = False,
    ):
        if protocol not in PROTOCOLS:
            raise SpecificationError(
                f"unknown protocol {protocol!r}; choose from {PROTOCOLS}"
            )
        if wait_policy not in ("wait", "abort"):
            raise SpecificationError(
                f"unknown wait policy {wait_policy!r}; choose 'wait' or 'abort'"
            )
        self.database = database
        self.protocol = protocol
        #: The paper enforces strict ordering "by using a wait based
        #: protocol for concurrent operations that are not able to
        #: execute" (section 4) and notes it pays "some price in the form
        #: of some delay".  ``"abort"`` is the alternative it implicitly
        #: rejects — treat every such conflict like a late operation
        #: (abort with immediate restart) — kept here as an ablation.
        self.wait_policy = wait_policy
        self.distance = distance
        self.export_policy = export_policy
        #: The unified history seam: every decision is reported here and
        #: the metrics totals are *derived* from those reports (see
        #: :mod:`repro.engine.history`).  A sharded composite hands each
        #: inner engine a shard-tagged view of its shared recorder.
        if recorder is not None:
            self.recorder = recorder
        else:
            self.recorder = HistoryRecorder(metrics, record=record_history)
        self.metrics = self.recorder.metrics
        self.waits = WaitRegistry()
        self._timestamps = timestamps if timestamps is not None else TimestampGenerator()
        self._next_id = 1
        self._active: dict[int, TransactionState] = {}
        #: Opt-in snapshot read cache (ESR only): committed state is
        #: published beside the live objects so bounded-staleness query
        #: reads can be served via :meth:`read_cached` without the full
        #: engine decision path (and, in the servers, without the engine
        #: critical section).
        if snapshot_cache and protocol == "esr":
            self.snapshot: SnapshotStore | None = SnapshotStore(
                database.catalog, distance
            )
            self.snapshot.bootstrap(database)
        else:
            self.snapshot = None

    # -- lifecycle ---------------------------------------------------------------

    def begin(
        self,
        kind: TransactionKind | str,
        bounds: TransactionBounds | EpsilonLevel | None = None,
        timestamp: Timestamp | None = None,
        group_limits: Mapping[str, float] | None = None,
        object_limits: Mapping[int, float] | None = None,
        allow_inconsistent_reads: bool = False,
    ) -> TransactionState:
        """Start a transaction; assigns its id and (if needed) timestamp.

        ``allow_inconsistent_reads`` opts an *update* ET into importing
        inconsistency against its import limit (an extension beyond the
        paper, whose update ETs are always consistent); it has no effect
        on queries, which always import.
        """
        if isinstance(kind, str):
            kind = TransactionKind(kind.lower())
        if bounds is None:
            bounds = TransactionBounds()
        elif isinstance(bounds, EpsilonLevel):
            bounds = bounds.transaction
        if timestamp is None:
            timestamp = self._timestamps.next()
        txn = TransactionState(
            transaction_id=self._next_id,
            kind=kind,
            timestamp=timestamp,
            bounds=bounds,
            catalog=self.database.catalog,
            group_limits=group_limits,
            object_limits=object_limits,
            allow_inconsistent_reads=allow_inconsistent_reads,
        )
        self._next_id += 1
        self._active[txn.transaction_id] = txn
        self.recorder.begin(txn)
        return txn

    def adopt(self, txn: TransactionState) -> None:
        """Register an externally-built transaction as active here.

        Used by :class:`~repro.engine.sharded.ShardedEngine`, which
        allocates transaction ids and timestamps globally and hands each
        shard a sibling :class:`TransactionState` sharing the global
        transaction's accounts.
        """
        self._active[txn.transaction_id] = txn

    def active_transactions(self) -> tuple[TransactionState, ...]:
        return tuple(self._active.values())

    # -- operations -----------------------------------------------------------------

    def read(self, txn: TransactionState, object_id: int) -> Outcome:
        """Submit a Read; applies effects on success, aborts on rejection."""
        txn.require_active()
        obj = self.database.get(object_id)
        if self.protocol == "esr":
            outcome = esr_read_decision(obj, txn, self.distance)
        else:
            outcome = sr_read_decision(obj, txn)
        outcome = self._apply_wait_policy(outcome)
        if isinstance(outcome, Granted):
            proper = (
                obj.proper_value_for(txn.timestamp) if txn.is_query else 0.0
            )
            obj.record_read(
                txn.transaction_id, txn.timestamp, txn.is_query, proper
            )
            txn.read_set.add(object_id)
            txn.operations += 1
            if outcome.esr_case is not None:
                txn.inconsistent_operations += 1
            if txn.import_account is not None and outcome.value is not None:
                txn.import_account.observe_value(object_id, outcome.value)
            self.recorder.read(txn, object_id, outcome)
        elif isinstance(outcome, MustWait):
            self.recorder.wait(
                txn, "read", object_id, outcome.blocking_transaction
            )
        else:
            self._reject(txn, "read", object_id, outcome)
        return outcome

    def read_cached(self, txn: TransactionState, object_id: int) -> Granted | None:
        """Try to serve a query read from the snapshot cache.

        Returns a :class:`Granted` when the snapshot holds the object and
        the staleness (plus any in-flight uncommitted delta) fits the
        transaction's whole bound hierarchy, charging exactly as
        :meth:`read` would; returns ``None`` when the caller should fall
        back to :meth:`read`.  Never aborts and never waits — the cache
        is a pure fast path.  Unlike :meth:`read`, a cache hit does not
        touch the live object (no read-timestamp bump, no query-reader
        registration), so it cannot trigger Case-3 export charges.
        """
        store = self.snapshot
        if store is None:
            return None
        outcome = snapshot_read(store, txn, object_id)
        if outcome is not None:
            # The event carries the staleness the cache actually charged
            # (``outcome.inconsistency``), flagged as cache-served.
            self.recorder.read(txn, object_id, outcome, cached=True)
        return outcome

    def write(self, txn: TransactionState, object_id: int, value: float) -> Outcome:
        """Submit a Write; stages it on success, aborts on rejection."""
        txn.require_active()
        if not txn.is_update:
            raise InvalidOperation(
                f"query transaction {txn.transaction_id} cannot write",
                txn.transaction_id,
            )
        obj = self.database.get(object_id)
        if self.protocol == "esr":
            outcome = esr_write_decision(
                obj, txn, value, self.distance, self.export_policy
            )
        else:
            outcome = sr_write_decision(obj, txn)
        outcome = self._apply_wait_policy(outcome)
        if isinstance(outcome, Granted):
            obj.stage_write(txn.transaction_id, txn.timestamp, value)
            if self.snapshot is not None:
                self.snapshot.note_pending(obj)
            txn.write_set.add(object_id)
            txn.operations += 1
            if outcome.esr_case is not None:
                txn.inconsistent_operations += 1
            self.recorder.write(txn, object_id, value, outcome)
        elif isinstance(outcome, MustWait):
            self.recorder.wait(
                txn, "write", object_id, outcome.blocking_transaction
            )
        else:
            self._reject(txn, "write", object_id, outcome)
        return outcome

    def _apply_wait_policy(self, outcome: Outcome) -> Outcome:
        """Under the ``"abort"`` policy, conflicts abort instead of waiting."""
        if self.wait_policy == "abort" and isinstance(outcome, MustWait):
            return Rejected(
                REASON_CONFLICT_ABORT,
                detail=(
                    "conflicting operation aborted instead of waiting "
                    f"for transaction {outcome.blocking_transaction} "
                    "(wait_policy='abort')"
                ),
            )
        return outcome

    def _reject(
        self,
        txn: TransactionState,
        op: str,
        object_id: int | None,
        outcome: Rejected,
    ) -> None:
        self.recorder.rejection(txn, op, object_id, outcome)
        self._finish(txn, TransactionStatus.ABORTED, outcome.reason)

    # -- completion ------------------------------------------------------------------

    def commit(self, txn: TransactionState) -> None:
        """Commit: promote staged writes, release readers, wake waiters."""
        txn.require_active()
        self._promote(txn)
        self.recorder.commit(txn)
        self._finish(txn, TransactionStatus.COMMITTED, None)

    def _promote(self, txn: TransactionState) -> None:
        """Promote staged writes to committed state (the commit effects)."""
        for object_id in txn.write_set:
            obj = self.database.get(object_id)
            obj.commit_write()
            if self.snapshot is not None:
                self.snapshot.publish(obj)

    def complete(
        self,
        txn: TransactionState,
        status: TransactionStatus,
        reason: str | None = None,
    ) -> None:
        """Apply a completion decided elsewhere, without recording metrics.

        The sharded composite decides commit/abort once globally and then
        completes each shard's sibling through this hook: state effects
        (write promotion or shadow restore, reader release, lock release,
        wait wake-ups) happen per shard, while commit/abort counters are
        recorded exactly once by the composite.
        """
        if status is TransactionStatus.COMMITTED:
            self._promote(txn)
        self._finish(txn, status, reason, record=False)

    def abort(
        self, txn: TransactionState, reason: str = REASON_CLIENT_ABORT
    ) -> None:
        """Abort: restore shadow values, release readers, wake waiters.

        Idempotent for transactions the manager already aborted (a
        rejection auto-aborts; a client calling ``abort`` afterwards is a
        no-op).  Aborting a committed transaction is an error.
        """
        if txn.status is TransactionStatus.ABORTED:
            return
        if txn.status is TransactionStatus.COMMITTED:
            raise InvalidOperation(
                f"cannot abort committed transaction {txn.transaction_id}",
                txn.transaction_id,
            )
        self._finish(txn, TransactionStatus.ABORTED, reason)

    def _finish(
        self,
        txn: TransactionState,
        status: TransactionStatus,
        reason: str | None,
        record: bool = True,
    ) -> None:
        if status is TransactionStatus.ABORTED:
            for object_id in txn.write_set:
                obj = self.database.get(object_id)
                if obj.writer_id == txn.transaction_id:
                    obj.abort_write()
                    if self.snapshot is not None:
                        self.snapshot.clear_pending(obj)
            txn.abort_reason = reason
            if record:
                self.recorder.abort(txn, reason)
        if txn.is_query:
            for object_id in txn.read_set:
                self.database.get(object_id).forget_reader(txn.transaction_id)
        txn.status = status
        self._active.pop(txn.transaction_id, None)
        self.waits.fire(txn.transaction_id)

    def __repr__(self) -> str:
        return (
            f"TransactionManager(protocol={self.protocol!r}, "
            f"active={len(self._active)}, objects={len(self.database)})"
        )
