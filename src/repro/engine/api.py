"""One ``Engine`` interface over every concurrency-control manager.

The paper's point is comparing concurrency-control regimes on the same
workload; the engines themselves (enhanced-TSO ESR, strict TSO, the Wu
et al. lock-based divergence control, plain strict 2PL, and MVTO) all
speak the same begin / read / write / commit / abort vocabulary with
:class:`~repro.engine.results.Granted` / ``MustWait`` / ``Rejected``
outcomes.  This module makes that shared vocabulary explicit:

* :class:`Engine` — the structural protocol every manager satisfies
  (``TransactionManager``, ``TwoPhaseManager``, ``MVTOManager``, and the
  sharded composite :class:`~repro.engine.sharded.ShardedEngine`);
* :data:`PROTOCOL_REGISTRY` — one table mapping protocol names to their
  :class:`ProtocolSpec` (which manager family, report label, whether the
  protocol carries epsilon bounds, which options it supports).  The CLI,
  the simulator, the servers, and the report generator all derive their
  protocol lists and validation from this table instead of hand-kept
  tuples;
* :func:`validate_protocol_options` — the single place option/protocol
  combinations are checked, so every entry point (sim config, threaded
  server, asyncio server, CLI) agrees on what is invalid;
* :func:`create_engine` — the factory that builds the right manager (or
  a :class:`~repro.engine.sharded.ShardedEngine` over ``shards`` inner
  managers) from a protocol name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Protocol

from repro.core.bounds import EpsilonLevel, TransactionBounds
from repro.core.metric import DistanceFunction, absolute_distance
from repro.engine.database import Database
from repro.engine.history import HistoryRecorder
from repro.engine.manager import TransactionManager
from repro.engine.metrics import MetricsCollector
from repro.engine.mvto import MVTOManager
from repro.engine.results import Granted, Outcome
from repro.engine.scheduler import WaitRegistry
from repro.engine.timestamps import Timestamp, TimestampGenerator
from repro.engine.transactions import TransactionKind, TransactionState
from repro.engine.twopl import TwoPhaseManager
from repro.errors import SpecificationError

__all__ = [
    "Engine",
    "ProtocolSpec",
    "PROTOCOL_REGISTRY",
    "PROTOCOLS",
    "COMPARISON_ORDER",
    "protocol_spec",
    "validate_protocol_options",
    "create_engine",
]


class Engine(Protocol):
    """What every concurrency-control manager looks like.

    Structural (duck-typed): the managers do not inherit from this class;
    they simply provide the surface.  Hosts — the DES server, the
    threaded and asyncio TCP servers, :class:`~repro.runtime.LocalClient`
    — program against this interface only.
    """

    database: Database
    protocol: str
    metrics: MetricsCollector
    waits: WaitRegistry
    #: The snapshot read cache, or None when the engine has none.
    snapshot: object | None

    def begin(
        self,
        kind: TransactionKind | str,
        bounds: TransactionBounds | EpsilonLevel | None = None,
        timestamp: Timestamp | None = None,
        group_limits: Mapping[str, float] | None = None,
        object_limits: Mapping[int, float] | None = None,
        allow_inconsistent_reads: bool = False,
    ) -> TransactionState: ...

    def read(self, txn: TransactionState, object_id: int) -> Outcome: ...

    def read_cached(
        self, txn: TransactionState, object_id: int
    ) -> Granted | None: ...

    def write(
        self, txn: TransactionState, object_id: int, value: float
    ) -> Outcome: ...

    def commit(self, txn: TransactionState) -> None: ...

    def abort(
        self, txn: TransactionState, reason: str = "client-abort"
    ) -> None: ...

    def active_transactions(self) -> tuple[TransactionState, ...]: ...


@dataclass(frozen=True)
class ProtocolSpec:
    """Registry entry for one wire/sim protocol name."""

    name: str
    #: Human label used by reports; the engine-comparison table appends
    #: ", high bounds" for relaxed protocols.
    label: str
    #: Which manager implements it: ``"tso"``, ``"2pl"``, or ``"mvto"``.
    family: str
    #: Whether the protocol meters epsilon bounds at all.  Strict
    #: protocols (``sr``, ``2pl-sr``, ``mvto``) accept bounds and ignore
    #: them / treat them as zero.
    relaxed: bool
    #: The snapshot read cache meters staleness through the ESR
    #: inconsistency ledger, which only the esr protocol carries.
    supports_snapshot_cache: bool
    #: The wait/abort ablation knob exists on the TSO engines only.
    supports_wait_policy: bool
    description: str


PROTOCOL_REGISTRY: dict[str, ProtocolSpec] = {
    spec.name: spec
    for spec in (
        ProtocolSpec(
            name="esr",
            label="TSO ESR",
            family="tso",
            relaxed=True,
            supports_snapshot_cache=True,
            supports_wait_policy=True,
            description=(
                "enhanced timestamp ordering with hierarchical "
                "inconsistency bounds (the paper's protocol)"
            ),
        ),
        ProtocolSpec(
            name="sr",
            label="TSO strict (SR)",
            family="tso",
            relaxed=False,
            supports_snapshot_cache=False,
            supports_wait_policy=True,
            description="plain strict timestamp ordering (the SR baseline)",
        ),
        ProtocolSpec(
            name="2pl",
            label="2PL divergence control",
            family="2pl",
            relaxed=True,
            supports_snapshot_cache=False,
            supports_wait_policy=False,
            description="Wu et al. lock-based divergence control",
        ),
        ProtocolSpec(
            name="2pl-sr",
            label="2PL strict (SR)",
            family="2pl",
            relaxed=False,
            supports_snapshot_cache=False,
            supports_wait_policy=False,
            description="plain strict two-phase locking",
        ),
        ProtocolSpec(
            name="mvto",
            label="MVTO",
            family="mvto",
            relaxed=False,
            supports_snapshot_cache=False,
            supports_wait_policy=False,
            description=(
                "multi-version timestamp ordering (exact-but-stale reads)"
            ),
        ),
    )
}

#: Every protocol name, in CLI/choices order.
PROTOCOLS = tuple(PROTOCOL_REGISTRY)

#: The order the engine-comparison report presents protocols in:
#: strict-vs-relaxed per family, then the MVTO baseline.
COMPARISON_ORDER = ("sr", "esr", "2pl-sr", "2pl", "mvto")


def protocol_spec(protocol: str) -> ProtocolSpec:
    """Look up a protocol, raising :class:`SpecificationError` if unknown."""
    try:
        return PROTOCOL_REGISTRY[protocol]
    except KeyError:
        raise SpecificationError(
            f"unknown protocol {protocol!r}; choose from {PROTOCOLS}"
        ) from None


def validate_protocol_options(
    protocol: str,
    *,
    snapshot_cache: bool = False,
    wait_policy: str = "wait",
    shards: int = 1,
    processes: bool = False,
    shard_rpc: str = "fast",
) -> ProtocolSpec:
    """Check one protocol/options combination; all entry points call this.

    Returns the :class:`ProtocolSpec` on success so callers can reuse the
    lookup.  Raises :class:`SpecificationError` on any invalid combination
    — the sim config wraps it into its usual ``ExperimentError``.
    """
    spec = protocol_spec(protocol)
    if wait_policy not in ("wait", "abort"):
        supporting = ", ".join(
            repr(s.name)
            for s in PROTOCOL_REGISTRY.values()
            if s.supports_wait_policy
        )
        raise SpecificationError(
            f"unknown wait policy {wait_policy!r}: valid values are "
            f"'wait' (default, any protocol) and 'abort' (TSO protocols "
            f"only: {supporting})"
        )
    if wait_policy != "wait" and not spec.supports_wait_policy:
        supporting = ", ".join(
            repr(s.name)
            for s in PROTOCOL_REGISTRY.values()
            if s.supports_wait_policy
        )
        raise SpecificationError(
            f"wait_policy={wait_policy!r} is not supported by protocol "
            f"{protocol!r}: valid combinations are wait_policy='wait' with "
            f"any protocol, or wait_policy='abort' with a TSO protocol "
            f"({supporting})"
        )
    if snapshot_cache and not spec.supports_snapshot_cache:
        supporting = ", ".join(
            repr(s.name)
            for s in PROTOCOL_REGISTRY.values()
            if s.supports_snapshot_cache
        )
        raise SpecificationError(
            f"snapshot_cache=True is not supported by protocol "
            f"{protocol!r}: the cache meters staleness through the ESR "
            f"inconsistency ledger, so the only valid combination is "
            f"snapshot_cache=True with protocol {supporting}; other "
            f"protocols must use snapshot_cache=False"
        )
    if shards < 1:
        raise SpecificationError(
            f"shards must be >= 1, got {shards}: use shards=1 for a bare "
            "unsharded engine, or shards=N (N > 1) for an N-way "
            "thread- or process-sharded composite"
        )
    if processes and snapshot_cache:
        raise SpecificationError(
            "snapshot_cache=True cannot be combined with processes=True: "
            "the cache publishes from inside the engine critical section, "
            "which lives in the shard worker processes.  Valid "
            "combinations are snapshot_cache=True with thread sharding "
            "(processes=False) or process sharding without the cache"
        )
    if shard_rpc not in ("fast", "legacy"):
        raise SpecificationError(
            f"unknown shard_rpc mode {shard_rpc!r}: valid values are "
            "'fast' (delta sync + batching + binary frames, the default) "
            "and 'legacy' (per-op full-dump pickle channel)"
        )
    return spec


def create_engine(
    database: Database,
    protocol: str = "esr",
    *,
    distance: DistanceFunction = absolute_distance,
    export_policy: str = "max",
    wait_policy: str = "wait",
    snapshot_cache: bool = False,
    metrics: MetricsCollector | None = None,
    timestamps: TimestampGenerator | None = None,
    shards: int = 1,
    processes: bool | str = False,
    shard_rpc: str = "fast",
    record_history: bool = False,
) -> Engine:
    """Build the engine for ``protocol`` — the one factory every host uses.

    With ``shards > 1`` the database is partitioned by object key across
    that many inner engines behind a
    :class:`~repro.engine.sharded.ShardedEngine`; with ``shards == 1``
    the bare manager is returned unchanged (no wrapper, no locks).

    With ``processes`` truthy (and ``shards > 1``) each shard's engine
    runs in its own worker **process** behind a
    :class:`~repro.engine.procshard.ProcessShardedEngine`, escaping the
    GIL on multi-core hosts.  ``processes=True`` degrades gracefully to
    the thread-based composite when real processes cannot help (single
    core) or cannot fork — the returned engine then carries the reason
    in a ``process_degraded`` attribute.  ``processes="force"`` skips
    the single-core degradation (tests, CI smoke on small containers).

    ``shard_rpc`` selects the parent↔worker channel wire mode of the
    process-sharded engine: ``"fast"`` (default — delta account sync,
    op batching and struct-packed binary frames) or ``"legacy"`` (the
    original per-op full-dump pickle channel, kept as a measurable
    baseline for ``bench-hotpath``'s ``procshard_rpc`` microbench).
    The option is validated everywhere but only affects engines that
    actually run worker processes.
    """
    spec = validate_protocol_options(
        protocol,
        snapshot_cache=snapshot_cache,
        wait_policy=wait_policy,
        shards=shards,
        processes=bool(processes),
        shard_rpc=shard_rpc,
    )
    if shards > 1 and processes:
        from repro.engine.procshard import (
            ProcessShardedEngine,
            process_sharding_unavailable,
        )
        from repro.engine.sharded import ShardedEngine

        reason = process_sharding_unavailable()
        if processes == "force" and reason == "single-core":
            reason = None
        if reason is None:
            return ProcessShardedEngine(
                database,
                protocol,
                shards=shards,
                distance=distance,
                export_policy=export_policy,
                wait_policy=wait_policy,
                metrics=metrics,
                timestamps=timestamps,
                shard_rpc=shard_rpc,
                record_history=record_history,
            )
        engine = ShardedEngine(
            database,
            protocol,
            shards=shards,
            distance=distance,
            export_policy=export_policy,
            wait_policy=wait_policy,
            snapshot_cache=snapshot_cache,
            metrics=metrics,
            timestamps=timestamps,
            record_history=record_history,
        )
        engine.process_degraded = reason
        return engine
    if shards > 1:
        from repro.engine.sharded import ShardedEngine

        return ShardedEngine(
            database,
            protocol,
            shards=shards,
            distance=distance,
            export_policy=export_policy,
            wait_policy=wait_policy,
            snapshot_cache=snapshot_cache,
            metrics=metrics,
            timestamps=timestamps,
            record_history=record_history,
        )
    return build_unsharded(
        database,
        spec,
        distance=distance,
        export_policy=export_policy,
        wait_policy=wait_policy,
        snapshot_cache=snapshot_cache,
        metrics=metrics,
        timestamps=timestamps,
        record_history=record_history,
    )


def build_unsharded(
    database: Database,
    spec: ProtocolSpec,
    *,
    distance: DistanceFunction = absolute_distance,
    export_policy: str = "max",
    wait_policy: str = "wait",
    snapshot_cache: bool = False,
    metrics: MetricsCollector | None = None,
    timestamps: TimestampGenerator | None = None,
    recorder: HistoryRecorder | None = None,
    record_history: bool = False,
) -> Engine:
    """Build one bare (unsharded) manager for a resolved spec.

    Shared by :func:`create_engine` and the sharded composite, which uses
    it to build each shard's inner engine (passing a per-shard
    ``recorder`` view so inner-engine events carry their shard id).
    """
    if spec.family == "2pl":
        return TwoPhaseManager(
            database,
            relaxed=spec.relaxed,
            distance=distance,
            export_policy=export_policy,
            metrics=metrics,
            timestamps=timestamps,
            recorder=recorder,
            record_history=record_history,
        )
    if spec.family == "mvto":
        return MVTOManager(
            database,
            metrics=metrics,
            timestamps=timestamps,
            recorder=recorder,
            record_history=record_history,
        )
    return TransactionManager(
        database,
        protocol=spec.name,
        distance=distance,
        export_policy=export_policy,
        metrics=metrics,
        timestamps=timestamps,
        wait_policy=wait_policy,
        snapshot_cache=snapshot_cache,
        recorder=recorder,
        record_history=record_history,
    )
