"""Strict timestamp-ordering decisions — the SR baseline.

This is the classical protocol the paper enhances (section 4): basic
timestamp ordering with *strict ordering* enforced by waiting, and
abort-with-immediate-restart for late operations:

* a read that arrives with a timestamp older than the object's last write
  timestamp is **late** and rejected;
* a read of an object with a pending uncommitted write **waits** for the
  writer to finish (strictness: no dirty reads), unless the read is older
  than the pending write, in which case it is late and rejected;
* a write older than the object's read timestamp or last write timestamp
  is **late** and rejected;
* a write over a pending uncommitted write **waits** (no Thomas write
  rule — recovery relies on a single staged write per object).

Because an operation only ever waits when its timestamp is *newer* than
the blocking transaction's, all wait-for edges point young → old and no
deadlock is possible.

The functions here are pure decisions: they inspect object and transaction
state and return an :class:`~repro.engine.results.Outcome` without mutating
anything; the :class:`~repro.engine.manager.TransactionManager` applies the
effects of a :class:`Granted` outcome.
"""

from __future__ import annotations

from repro.engine.objects import DataObject
from repro.engine.results import (
    Granted,
    MustWait,
    Outcome,
    Rejected,
    REASON_LATE_READ,
    REASON_LATE_WRITE,
)
from repro.engine.transactions import TransactionState

__all__ = ["sr_read_decision", "sr_write_decision"]


def sr_read_decision(obj: DataObject, txn: TransactionState) -> Outcome:
    """Decide a read under plain strict TSO."""
    if obj.writer_id is not None and obj.writer_id != txn.transaction_id:
        if txn.timestamp > obj.writer_ts:
            # Strictness: the value this read must return is being produced
            # by an older, still-uncommitted transaction — wait for it.
            return MustWait(obj.writer_id)
        return Rejected(
            REASON_LATE_READ,
            detail=(
                f"read ts {txn.timestamp} is older than pending write "
                f"ts {obj.writer_ts} on object {obj.object_id}"
            ),
        )
    if obj.writer_id == txn.transaction_id:
        # Reading our own staged write is always consistent.
        return Granted(value=obj.uncommitted_value)
    if txn.timestamp < obj.committed_write_ts:
        return Rejected(
            REASON_LATE_READ,
            detail=(
                f"read ts {txn.timestamp} is older than committed write "
                f"ts {obj.committed_write_ts} on object {obj.object_id}"
            ),
        )
    return Granted(value=obj.committed_value)


def sr_write_decision(
    obj: DataObject, txn: TransactionState
) -> Outcome:
    """Decide a write under plain strict TSO."""
    if obj.writer_id is not None and obj.writer_id != txn.transaction_id:
        if txn.timestamp > obj.writer_ts:
            return MustWait(obj.writer_id)
        return Rejected(
            REASON_LATE_WRITE,
            detail=(
                f"write ts {txn.timestamp} is older than pending write "
                f"ts {obj.writer_ts} on object {obj.object_id}"
            ),
        )
    if txn.timestamp < obj.committed_write_ts:
        return Rejected(
            REASON_LATE_WRITE,
            detail=(
                f"write ts {txn.timestamp} is older than committed write "
                f"ts {obj.committed_write_ts} on object {obj.object_id}"
            ),
        )
    if txn.timestamp < obj.read_ts:
        return Rejected(
            REASON_LATE_WRITE,
            detail=(
                f"write ts {txn.timestamp} is older than read "
                f"ts {obj.read_ts} on object {obj.object_id}"
            ),
        )
    return Granted()
