"""Timestamps for timestamp-ordering concurrency control.

The prototype assigns each transaction a timestamp at BEGIN (restarts get a
fresh one).  Timestamps must be unique and totally ordered across all
client sites; the paper uses the standard technique of appending the
site-id to the local time, after correcting for clock skew (the skew
correction itself lives in :mod:`repro.net.clock` — the engine only needs
the ordered, unique value).

A :class:`Timestamp` is an ordered triple ``(ticks, site, seq)``:

* ``ticks`` — the (virtual) clock reading, any monotone non-decreasing
  number (simulated milliseconds in the DES, corrected wall time in the
  networked prototype);
* ``site`` — the originating site id, breaking ties between sites exactly
  as the paper's appended site-id does;
* ``seq`` — a per-generator sequence number, breaking ties within a site
  when the clock does not advance between BEGINs.
"""

from __future__ import annotations

from typing import Callable, NamedTuple

__all__ = ["Timestamp", "TimestampGenerator", "GENESIS"]


class Timestamp(NamedTuple):
    """Totally ordered transaction timestamp ``(ticks, site, seq)``."""

    ticks: float
    site: int = 0
    seq: int = 0

    def __str__(self) -> str:
        return f"{self.ticks:g}@{self.site}.{self.seq}"


#: Timestamp older than any transaction; used for initial object versions.
GENESIS = Timestamp(float("-inf"), -1, -1)


class TimestampGenerator:
    """Produces unique, strictly increasing timestamps for one site.

    ``clock`` supplies the time component (defaults to a simple counter so
    the generator is usable standalone in tests).  Uniqueness within the
    site is guaranteed by the sequence number even when the clock stalls;
    uniqueness across sites by the site id.
    """

    def __init__(self, site: int = 0, clock: Callable[[], float] | None = None):
        self.site = site
        self._clock = clock
        self._seq = 0
        self._last_ticks = float("-inf")

    def next(self) -> Timestamp:
        """Return the next timestamp, strictly greater than the previous."""
        if self._clock is not None:
            ticks = float(self._clock())
            # Guard against a clock that steps backwards (NTP adjustments on
            # a real host, or a buggy simulated clock): never emit a ticks
            # value smaller than one we already used.
            if ticks < self._last_ticks:
                ticks = self._last_ticks
        else:
            ticks = float(self._seq)
        self._last_ticks = ticks
        self._seq += 1
        return Timestamp(ticks, self.site, self._seq)

    def __repr__(self) -> str:
        return f"TimestampGenerator(site={self.site}, issued={self._seq})"
