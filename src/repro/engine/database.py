"""The in-memory database: objects, catalog, startup files.

The prototype keeps the whole database in server main memory (paper
section 6): objects are initialised from a startup data file when the
server starts, writes mutate memory in place (with shadow copies for abort
restore), and object-level limits (OIL/OEL) live with the objects.

The startup file format is line-oriented plain text::

    # comment
    <object-id> <value> [<oil> <oel>] [<group>]

where ``oil``/``oel`` may be the word ``inf`` for an unbounded limit and
``group`` attaches the object to a group declared earlier with::

    group <name> [<parent>]

Group lines may appear anywhere before the objects that use them.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Iterable, Iterator

from repro.core.bounds import ObjectBounds
from repro.core.hierarchy import GroupCatalog
from repro.engine.objects import DEFAULT_VERSION_WINDOW, DataObject
from repro.errors import SpecificationError, UnknownObjectError

__all__ = ["Database"]


def _parse_limit(token: str) -> float:
    if token.lower() in ("inf", "unbounded", "none"):
        return math.inf
    return float(token)


class Database:
    """A collection of :class:`DataObject` plus the group catalog."""

    def __init__(
        self,
        catalog: GroupCatalog | None = None,
        version_window: int = DEFAULT_VERSION_WINDOW,
    ):
        self.catalog = catalog if catalog is not None else GroupCatalog()
        self.version_window = version_window
        self._objects: dict[int, DataObject] = {}

    # -- population ----------------------------------------------------------

    def create_object(
        self,
        object_id: int,
        value: float,
        bounds: ObjectBounds | None = None,
        group: str | None = None,
    ) -> DataObject:
        """Add one object; optionally place it in a catalog group."""
        if object_id in self._objects:
            raise SpecificationError(f"object {object_id} already exists")
        obj = DataObject(object_id, value, bounds, self.version_window)
        self._objects[object_id] = obj
        if group is not None:
            self.catalog.assign(object_id, group)
        return obj

    def create_many(
        self, items: Iterable[tuple[int, float]], bounds: ObjectBounds | None = None
    ) -> None:
        """Bulk-create objects sharing one :class:`ObjectBounds`."""
        for object_id, value in items:
            self.create_object(object_id, value, bounds)

    def adopt_object(self, obj: DataObject) -> DataObject:
        """Insert an *existing* :class:`DataObject` instance, un-copied.

        The sharded engine partitions one database into per-shard views
        that alias the same objects (and share the same catalog), so a
        write through a shard is immediately visible in the full
        database.  Raises if the id is already present.
        """
        if obj.object_id in self._objects:
            raise SpecificationError(f"object {obj.object_id} already exists")
        self._objects[obj.object_id] = obj
        return obj

    @classmethod
    def from_startup_file(
        cls, path: str | Path, version_window: int = DEFAULT_VERSION_WINDOW
    ) -> "Database":
        """Build a database from a startup data file (format above)."""
        db = cls(version_window=version_window)
        with open(path, encoding="utf-8") as handle:
            for lineno, raw in enumerate(handle, start=1):
                line = raw.split("#", 1)[0].strip()
                if not line:
                    continue
                tokens = line.split()
                try:
                    db._apply_startup_line(tokens)
                except (ValueError, SpecificationError) as exc:
                    raise SpecificationError(
                        f"{path}:{lineno}: bad startup line {line!r}: {exc}"
                    ) from exc
        return db

    def _apply_startup_line(self, tokens: list[str]) -> None:
        if tokens[0].lower() == "group":
            if len(tokens) == 2:
                self.catalog.add_group(tokens[1])
            elif len(tokens) == 3:
                self.catalog.add_group(tokens[1], parent=tokens[2])
            else:
                raise SpecificationError("expected: group <name> [<parent>]")
            return
        object_id = int(tokens[0])
        value = float(tokens[1])
        bounds = None
        group = None
        rest = tokens[2:]
        if len(rest) >= 2:
            bounds = ObjectBounds(
                import_limit=_parse_limit(rest[0]),
                export_limit=_parse_limit(rest[1]),
            )
            rest = rest[2:]
        if rest:
            group = rest[0]
        self.create_object(object_id, value, bounds, group)

    def write_startup_file(self, path: str | Path) -> None:
        """Serialise the current committed state back to the file format."""
        lines = ["# repro database startup file"]
        seen_groups: list[str] = []
        for group in self.catalog.groups():
            parent = self.catalog.parent_of(group)
            if parent == "<transaction>":
                lines.append(f"group {group}")
            else:
                lines.append(f"group {group} {parent}")
            seen_groups.append(group)
        for object_id in sorted(self._objects):
            obj = self._objects[object_id]
            oil = obj.bounds.import_limit
            oel = obj.bounds.export_limit
            oil_s = "inf" if math.isinf(oil) else f"{oil:g}"
            oel_s = "inf" if math.isinf(oel) else f"{oel:g}"
            group = self.catalog.group_of(object_id)
            suffix = f" {group}" if group != "<transaction>" else ""
            lines.append(
                f"{object_id} {obj.committed_value:g} {oil_s} {oel_s}{suffix}"
            )
        Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")

    # -- access ---------------------------------------------------------------

    def get(self, object_id: int) -> DataObject:
        try:
            return self._objects[object_id]
        except KeyError:
            raise UnknownObjectError(
                f"no object with id {object_id}"
            ) from None

    def __contains__(self, object_id: int) -> bool:
        return object_id in self._objects

    def __len__(self) -> int:
        return len(self._objects)

    def object_ids(self) -> Iterator[int]:
        return iter(self._objects)

    def objects(self) -> Iterator[DataObject]:
        return iter(self._objects.values())

    def committed_snapshot(self) -> dict[int, float]:
        """``{id: committed value}`` — useful for tests and examples."""
        return {
            object_id: obj.committed_value
            for object_id, obj in self._objects.items()
        }

    def total_committed_value(self) -> float:
        """Sum of all committed values (the banking example's 'overall')."""
        return sum(obj.committed_value for obj in self._objects.values())

    def __repr__(self) -> str:
        return f"Database(objects={len(self._objects)})"
