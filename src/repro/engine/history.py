"""The unified history seam: one append-only event log per engine.

Every engine (bare managers, the thread-sharded composite, the
process-sharded engine) reports its decisions to a
:class:`HistoryRecorder` instead of poking ``MetricsCollector`` counters
directly.  The recorder *derives* the metrics from the reported events —
one choke point produces both — so the figure-level totals and the
recorded history can never disagree.

Recording is off by default and costs nothing but the derivation call:
the recorder only materialises :class:`HistoryEvent` objects when
``record=True`` (one ``None`` check per operation otherwise).  When
enabled, each event carries what the offline conformance checker
(:mod:`repro.check`) needs to replay it against a fresh ledger: the ESR
case and inconsistency charge, the shard that executed it, the begin-time
bound declarations, commit-time imported/exported divergence, and both a
wall-clock and the transaction's logical timestamp.

Sharding notes:

* the thread-sharded composite shares one recorder across its inner
  engines through :meth:`HistoryRecorder.for_shard` views, so per-object
  events are appended *inside* the owning shard's critical section and
  per-object event order matches decision order;
* the process-sharded engine records in the parent: worker decisions
  (esr case, charge, value) already travel back over the binary shard
  channel as op outcomes, and the parent's absorb path — the single
  place worker replies are applied — turns them into events tagged with
  the shard id.  Worker-side collectors stay discarded, exactly as
  their metrics always were.

Events serialise one-per-line as JSON (:class:`HistoryLog`), with a
header describing the database the history ran against (object bounds,
group catalog), which is everything the checker needs to re-run the
hierarchy admission of every charge.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import IO, TYPE_CHECKING, Any, Callable, Iterable, Mapping

from repro.core.hierarchy import ROOT_GROUP
from repro.engine.metrics import MetricsCollector
from repro.engine.reasons import REASON_UNKNOWN

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.database import Database
    from repro.engine.results import Granted, Rejected
    from repro.engine.transactions import TransactionState

__all__ = [
    "EVENT_BEGIN",
    "EVENT_READ",
    "EVENT_WRITE",
    "EVENT_WAIT",
    "EVENT_REJECT",
    "EVENT_COMMIT",
    "EVENT_ABORT",
    "HistoryEvent",
    "HistoryRecorder",
    "HistoryLog",
    "derive_metrics",
]

EVENT_BEGIN = "begin"
EVENT_READ = "read"
EVENT_WRITE = "write"
EVENT_WAIT = "wait"
EVENT_REJECT = "reject"
EVENT_COMMIT = "commit"
EVENT_ABORT = "abort"

#: Current on-disk format version (the header's ``version`` field).
HISTORY_FORMAT_VERSION = 1


@dataclass(slots=True)
class HistoryEvent:
    """One recorded engine decision.

    Only ``kind``, ``txn`` and ``wall`` are always present; the rest are
    populated per event kind (see the field comments).  Serialisation
    drops default-valued fields, so a typical read event is ~6 keys.
    """

    kind: str
    txn: int
    #: Wall-clock (or simulated-clock) seconds when the event happened.
    wall: float
    #: The transaction's logical timestamp ``(ticks, site, seq)``.
    ts: tuple[float, int, int] | None = None
    #: ``"query"`` or ``"update"`` (begin and commit events).
    txn_kind: str | None = None
    #: Which shard's engine executed the operation (None when unsharded).
    shard: int | None = None
    object_id: int | None = None
    value: float | None = None
    #: ESR relaxation case admitted, if any (read/write events).
    esr_case: str | None = None
    #: Divergence charged to the transaction's account by this operation.
    inconsistency: float = 0.0
    #: True when the read was served by the snapshot cache; the charge is
    #: then the observed staleness the cache admitted.
    cached: bool = False
    #: For wait/reject events: which operation ("read"/"write") stalled.
    op: str | None = None
    #: For wait events: the transaction being waited on.
    blocking: int | None = None
    #: For reject/abort events.
    reason: str | None = None
    detail: str | None = None
    violated_level: str | None = None
    #: Begin events: the declared bound hierarchy.
    import_limit: float | None = None
    export_limit: float | None = None
    group_limits: dict[str, float] | None = None
    object_limits: dict[int, float] | None = None
    allow_inconsistent_reads: bool = False
    #: Commit events: total divergence imported/exported by the txn.
    imported: float | None = None
    exported: float | None = None

    def to_dict(self) -> dict[str, Any]:
        """A compact dict (default-valued fields dropped)."""
        out: dict[str, Any] = {
            "kind": self.kind,
            "txn": self.txn,
            "wall": self.wall,
        }
        if self.ts is not None:
            out["ts"] = list(self.ts)
        for key in (
            "txn_kind",
            "shard",
            "object_id",
            "value",
            "esr_case",
            "op",
            "blocking",
            "reason",
            "detail",
            "violated_level",
            "import_limit",
            "export_limit",
            "group_limits",
            "object_limits",
            "imported",
            "exported",
        ):
            val = getattr(self, key)
            if val is not None:
                out[key] = val
        if self.inconsistency:
            out["inconsistency"] = self.inconsistency
        if self.cached:
            out["cached"] = True
        if self.allow_inconsistent_reads:
            out["allow_inconsistent_reads"] = True
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "HistoryEvent":
        ts = data.get("ts")
        object_limits = data.get("object_limits")
        return cls(
            kind=data["kind"],
            txn=int(data["txn"]),
            wall=float(data.get("wall", 0.0)),
            ts=tuple(ts) if ts is not None else None,
            txn_kind=data.get("txn_kind"),
            shard=data.get("shard"),
            object_id=data.get("object_id"),
            value=data.get("value"),
            esr_case=data.get("esr_case"),
            inconsistency=float(data.get("inconsistency", 0.0)),
            cached=bool(data.get("cached", False)),
            op=data.get("op"),
            blocking=data.get("blocking"),
            reason=data.get("reason"),
            detail=data.get("detail"),
            violated_level=data.get("violated_level"),
            import_limit=data.get("import_limit"),
            export_limit=data.get("export_limit"),
            group_limits=data.get("group_limits"),
            object_limits=(
                {int(k): float(v) for k, v in object_limits.items()}
                if object_limits
                else None
            ),
            allow_inconsistent_reads=bool(
                data.get("allow_inconsistent_reads", False)
            ),
            imported=data.get("imported"),
            exported=data.get("exported"),
        )


class HistoryRecorder:
    """The single recording entry point engines report events through.

    Derives the :class:`MetricsCollector` totals from the reported
    events and, when ``record=True``, appends a :class:`HistoryEvent`
    per report.  With recording off the event branch is one ``is None``
    check — the metrics derivation is the same work the engines used to
    do inline.

    Thread-safety matches the metrics collector it wraps: the sharded
    composite hands in its lock-wrapped collector, and event appends are
    single ``list.append`` calls (atomic under the GIL).
    """

    __slots__ = ("metrics", "clock", "_events")

    def __init__(
        self,
        metrics: MetricsCollector | None = None,
        record: bool = False,
        clock: Callable[[], float] = time.time,
    ):
        self.metrics = metrics if metrics is not None else MetricsCollector()
        #: Supplies the ``wall`` field of recorded events; the DES
        #: simulator points this at the simulated clock.
        self.clock = clock
        self._events: list[HistoryEvent] | None = [] if record else None

    # -- introspection -------------------------------------------------------

    @property
    def recording(self) -> bool:
        return self._events is not None

    def events(self) -> tuple[HistoryEvent, ...]:
        """The events recorded so far (empty when recording is off)."""
        if self._events is None:
            return ()
        return tuple(self._events)

    def reset(self) -> None:
        """Zero the derived metrics and drop recorded events together.

        Measurement phases reset through this (not ``metrics.reset()``)
        so the history never describes more work than the counters.
        """
        self.metrics.reset()
        if self._events is not None:
            self._events.clear()

    def for_shard(self, shard: int) -> "_ShardRecorder":
        """A view that tags every reported event with ``shard``."""
        return _ShardRecorder(self, shard)

    # -- recording hooks (one per engine decision) ---------------------------

    def begin(self, txn: "TransactionState", shard: int | None = None) -> None:
        events = self._events
        if events is None:
            return
        group_limits = _declared_group_limits(txn)
        events.append(
            HistoryEvent(
                kind=EVENT_BEGIN,
                txn=txn.transaction_id,
                wall=self.clock(),
                ts=txn.timestamp,
                txn_kind=txn.kind.value,
                shard=shard,
                import_limit=txn.bounds.import_limit,
                export_limit=txn.bounds.export_limit,
                group_limits=group_limits,
                object_limits=dict(txn.object_limits) if txn.object_limits else None,
                allow_inconsistent_reads=txn.import_account is not None
                and txn.import_account is not txn.account,
            )
        )

    def read(
        self,
        txn: "TransactionState",
        object_id: int,
        outcome: "Granted",
        cached: bool = False,
        shard: int | None = None,
    ) -> None:
        self.metrics.record_read(outcome.esr_case)
        events = self._events
        if events is None:
            return
        events.append(
            HistoryEvent(
                kind=EVENT_READ,
                txn=txn.transaction_id,
                wall=self.clock(),
                ts=txn.timestamp,
                shard=shard,
                object_id=object_id,
                value=outcome.value,
                esr_case=outcome.esr_case,
                inconsistency=outcome.inconsistency,
                cached=cached,
            )
        )

    def write(
        self,
        txn: "TransactionState",
        object_id: int,
        value: float,
        outcome: "Granted",
        shard: int | None = None,
    ) -> None:
        self.metrics.record_write(outcome.esr_case)
        events = self._events
        if events is None:
            return
        events.append(
            HistoryEvent(
                kind=EVENT_WRITE,
                txn=txn.transaction_id,
                wall=self.clock(),
                ts=txn.timestamp,
                shard=shard,
                object_id=object_id,
                value=value,
                esr_case=outcome.esr_case,
                inconsistency=outcome.inconsistency,
            )
        )

    def wait(
        self,
        txn: "TransactionState",
        op: str,
        object_id: int,
        blocking: int,
        shard: int | None = None,
    ) -> None:
        self.metrics.record_wait()
        events = self._events
        if events is None:
            return
        events.append(
            HistoryEvent(
                kind=EVENT_WAIT,
                txn=txn.transaction_id,
                wall=self.clock(),
                ts=txn.timestamp,
                shard=shard,
                object_id=object_id,
                op=op,
                blocking=blocking,
            )
        )

    def rejection(
        self,
        txn: "TransactionState",
        op: str,
        object_id: int | None,
        outcome: "Rejected",
        shard: int | None = None,
    ) -> None:
        self.metrics.record_rejection()
        events = self._events
        if events is None:
            return
        events.append(
            HistoryEvent(
                kind=EVENT_REJECT,
                txn=txn.transaction_id,
                wall=self.clock(),
                ts=txn.timestamp,
                shard=shard,
                object_id=object_id,
                op=op,
                reason=outcome.reason,
                detail=outcome.detail or None,
                violated_level=outcome.violated_level,
            )
        )

    def commit(
        self,
        txn: "TransactionState",
        imported: float | None = None,
        exported: float | None = None,
        shard: int | None = None,
    ) -> None:
        if imported is None:
            imported = txn.imported
        if exported is None:
            exported = txn.exported
        self.metrics.record_commit(txn.is_query, imported, exported)
        events = self._events
        if events is None:
            return
        events.append(
            HistoryEvent(
                kind=EVENT_COMMIT,
                txn=txn.transaction_id,
                wall=self.clock(),
                ts=txn.timestamp,
                txn_kind=txn.kind.value,
                shard=shard,
                imported=imported,
                exported=exported,
            )
        )

    def abort(
        self,
        txn: "TransactionState",
        reason: str | None,
        shard: int | None = None,
    ) -> None:
        self.metrics.record_abort(reason or REASON_UNKNOWN)
        events = self._events
        if events is None:
            return
        events.append(
            HistoryEvent(
                kind=EVENT_ABORT,
                txn=txn.transaction_id,
                wall=self.clock(),
                ts=txn.timestamp,
                txn_kind=txn.kind.value,
                shard=shard,
                reason=reason or REASON_UNKNOWN,
            )
        )


def _declared_group_limits(txn: "TransactionState") -> dict[str, float] | None:
    """The group limits a transaction declared at BEGIN, if any.

    Recovered from the account's ledger (the single place they live);
    the root entry is the transaction limit, which begin events carry
    separately as ``import_limit``/``export_limit``.
    """
    ledger = getattr(txn.account, "_ledger", None)
    if ledger is None:
        return None
    declared = ledger._limits
    if not declared or (len(declared) == 1 and ROOT_GROUP in declared):
        return None  # only the root entry — nothing beyond the txn limit
    limits = {
        group: limit
        for group, limit in declared.items()
        if group != ROOT_GROUP
    }
    return limits or None


class _ShardRecorder:
    """A :class:`HistoryRecorder` view tagging events with one shard id.

    The sharded composites hand one of these to each inner engine so
    events report which shard's critical section produced them; all
    state (metrics, the event list) lives in the shared parent recorder.
    """

    __slots__ = ("_recorder", "_shard", "metrics")

    def __init__(self, recorder: HistoryRecorder, shard: int):
        self._recorder = recorder
        self._shard = shard
        self.metrics = recorder.metrics

    @property
    def recording(self) -> bool:
        return self._recorder.recording

    @property
    def clock(self) -> Callable[[], float]:
        return self._recorder.clock

    def for_shard(self, shard: int) -> "_ShardRecorder":
        return _ShardRecorder(self._recorder, shard)

    def begin(self, txn, shard: int | None = None) -> None:
        self._recorder.begin(txn, shard=self._shard)

    def read(self, txn, object_id, outcome, cached=False, shard=None) -> None:
        self._recorder.read(
            txn, object_id, outcome, cached=cached, shard=self._shard
        )

    def write(self, txn, object_id, value, outcome, shard=None) -> None:
        self._recorder.write(
            txn, object_id, value, outcome, shard=self._shard
        )

    def wait(self, txn, op, object_id, blocking, shard=None) -> None:
        self._recorder.wait(txn, op, object_id, blocking, shard=self._shard)

    def rejection(self, txn, op, object_id, outcome, shard=None) -> None:
        self._recorder.rejection(
            txn, op, object_id, outcome, shard=self._shard
        )

    def commit(self, txn, imported=None, exported=None, shard=None) -> None:
        self._recorder.commit(
            txn, imported=imported, exported=exported, shard=self._shard
        )

    def abort(self, txn, reason, shard=None) -> None:
        self._recorder.abort(txn, reason, shard=self._shard)


@dataclass
class HistoryLog:
    """A recorded history plus the context needed to replay it.

    The header captures the static facts replay depends on: the protocol
    name, the per-object server-side bounds (OIL/OEL), and the group
    catalog (groups with parents, object→group assignment).  Everything
    dynamic is in the events.
    """

    header: dict[str, Any] = field(default_factory=dict)
    events: list[HistoryEvent] = field(default_factory=list)

    # -- construction --------------------------------------------------------

    @classmethod
    def from_engine(cls, engine: Any) -> "HistoryLog":
        """Collect the recorded history out of a live engine."""
        recorder = getattr(engine, "recorder", None)
        events = list(recorder.events()) if recorder is not None else []
        return cls(
            header=describe_engine(engine),
            events=events,
        )

    # -- (de)serialisation ---------------------------------------------------

    def dump(self, fp: IO[str]) -> None:
        """Write header + one event per line as JSON lines."""
        json.dump(self.header, fp, separators=(",", ":"))
        fp.write("\n")
        for event in self.events:
            json.dump(event.to_dict(), fp, separators=(",", ":"))
            fp.write("\n")

    def dumps(self) -> str:
        lines = [json.dumps(self.header, separators=(",", ":"))]
        lines.extend(
            json.dumps(event.to_dict(), separators=(",", ":"))
            for event in self.events
        )
        return "\n".join(lines) + "\n"

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fp:
            self.dump(fp)

    @classmethod
    def loads(cls, text: str) -> "HistoryLog":
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            return cls()
        header = json.loads(lines[0])
        events = [HistoryEvent.from_dict(json.loads(line)) for line in lines[1:]]
        return cls(header=header, events=events)

    @classmethod
    def load(cls, path: str) -> "HistoryLog":
        with open(path, "r", encoding="utf-8") as fp:
            return cls.loads(fp.read())

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return (
            f"HistoryLog(events={len(self.events)}, "
            f"protocol={self.header.get('protocol')!r})"
        )


def describe_engine(engine: Any) -> dict[str, Any]:
    """Build a :class:`HistoryLog` header for a live engine."""
    database: "Database" = engine.database
    catalog = database.catalog
    groups: dict[str, str | None] = {}
    for name in catalog.groups():
        if name == ROOT_GROUP:
            continue
        parent = catalog.parent_of(name)
        groups[name] = None if parent == ROOT_GROUP else parent
    assignment: dict[str, str] = {}
    bounds: dict[str, list[float]] = {}
    for obj in database.objects():
        bounds[str(obj.object_id)] = [
            obj.bounds.import_limit,
            obj.bounds.export_limit,
        ]
        group = catalog.group_of(obj.object_id)
        if group != ROOT_GROUP:
            assignment[str(obj.object_id)] = group
    return {
        "version": HISTORY_FORMAT_VERSION,
        "protocol": getattr(engine, "protocol", None),
        "shards": getattr(engine, "shards", 1),
        "groups": groups,
        "assignment": assignment,
        "object_bounds": bounds,
    }


def derive_metrics(events: Iterable[HistoryEvent]) -> MetricsCollector:
    """Re-derive metrics totals from a recorded event stream.

    This is the checker's cross-validation tool: because live engines
    derive their collectors through the same per-event hooks, replaying
    the events through a fresh collector must land on identical totals.
    """
    metrics = MetricsCollector()
    for event in events:
        if event.kind == EVENT_READ:
            metrics.record_read(event.esr_case)
        elif event.kind == EVENT_WRITE:
            metrics.record_write(event.esr_case)
        elif event.kind == EVENT_WAIT:
            metrics.record_wait()
        elif event.kind == EVENT_REJECT:
            metrics.record_rejection()
        elif event.kind == EVENT_COMMIT:
            metrics.record_commit(
                event.txn_kind == "query",
                event.imported or 0.0,
                event.exported or 0.0,
            )
        elif event.kind == EVENT_ABORT:
            metrics.record_abort(event.reason or REASON_UNKNOWN)
    return metrics
