"""ESR-enhanced timestamp-ordering decisions (paper Figure 3).

The enhancement admits, subject to the inconsistency bounds, three kinds of
operations that plain strict TSO would reject or delay:

**Case 1 — late read of committed data.**  A query read arrives with a
timestamp older than the object's last committed write.  SR rejects it;
ESR lets it read the *present* (newer) value, charging the distance to the
*proper* value (the newest committed write older than the query).

**Case 2 — read of uncommitted data.**  A query read finds a pending
uncommitted write.  SR waits (or rejects, if the read is also late); ESR
lets it read the staged value immediately, charging the distance to the
proper value.

**Case 3 — late write past a query read.**  An update's write arrives with
a timestamp older than the object's read timestamp, where that read came
from a query ET.  SR rejects it; ESR lets the write proceed, charging the
update's export account with the divergence this write exports to the
still-uncommitted query readers of the object (maximum over readers under
the paper's policy).

Update-transaction *reads* are consistent by default — their writes
depend on their reads — and follow the plain SR decision; as an opt-in
extension, an update ET that declares a non-zero import limit reads
through conflicts like a query (see :mod:`repro.engine.transactions`).
Write-write conflicts are never relaxed.

Admission charges the transaction's inconsistency account (object level,
then every group on the object's path, then the transaction level) as a
side effect; a rejected admission leaves the account untouched.
"""

from __future__ import annotations

from repro.core.divergence import export_divergence, import_divergence
from repro.core.metric import DistanceFunction, absolute_distance
from repro.engine.objects import DataObject
from repro.engine.results import (
    CASE_LATE_READ,
    CASE_LATE_WRITE,
    CASE_READ_UNCOMMITTED,
    Granted,
    MustWait,
    Outcome,
    Rejected,
    REASON_BOUND_VIOLATION,
    REASON_LATE_READ,
    REASON_LATE_WRITE,
)
from repro.engine.transactions import TransactionState
from repro.engine.tso import sr_read_decision

__all__ = ["esr_read_decision", "esr_write_decision"]


def esr_read_decision(
    obj: DataObject,
    txn: TransactionState,
    distance: DistanceFunction = absolute_distance,
) -> Outcome:
    """Decide a read under ESR-enhanced TSO.

    Query ETs import against their TIL.  Update ETs are consistent by
    default (the paper's setting — their writes depend on their reads)
    and fall through to the plain SR decision; an update ET that declared
    a non-zero import limit carries an import account and reads through
    conflicts the same way a query does (the paper's section 1 notes this
    possibility without evaluating it).
    """
    account = txn.import_account
    if account is None:
        return sr_read_decision(obj, txn)

    oil = txn.effective_object_limit(obj.object_id, obj.bounds.import_limit)

    if obj.writer_id is not None and obj.writer_id != txn.transaction_id:
        # Case 2: a concurrent update has an uncommitted write staged.
        present = obj.uncommitted_value
        proper = obj.proper_value_for(txn.timestamp)
        d = import_divergence(present, proper, distance)
        charge = account.admit(obj.object_id, d, oil)
        if charge.admitted:
            case = CASE_READ_UNCOMMITTED if d > 0 else None
            return Granted(value=present, inconsistency=d, esr_case=case)
        # Bound violated: fall back to the SR behaviour — wait if the read
        # is younger than the pending write (the writer may yet abort and
        # restore a readable value), reject if it is late anyway.
        if txn.timestamp > obj.writer_ts:
            return MustWait(obj.writer_id)
        return Rejected(
            REASON_BOUND_VIOLATION,
            detail=(
                f"uncommitted read of object {obj.object_id} carries "
                f"inconsistency {d:g} past the {charge.violated_level} limit "
                f"(uncommitted write by transaction {obj.writer_id}, "
                f"delta {distance(present, obj.committed_value):g})"
            ),
            violated_level=charge.violated_level,
        )

    if obj.writer_id == txn.transaction_id:
        return Granted(value=obj.uncommitted_value)

    if txn.timestamp < obj.committed_write_ts:
        # Case 1: the read is late — a newer write already committed.
        present = obj.committed_value
        proper = obj.proper_value_for(txn.timestamp)
        d = import_divergence(present, proper, distance)
        charge = account.admit(obj.object_id, d, oil)
        if charge.admitted:
            case = CASE_LATE_READ if d > 0 else None
            return Granted(value=present, inconsistency=d, esr_case=case)
        if charge.violated_level is not None:
            return Rejected(
                REASON_BOUND_VIOLATION,
                detail=(
                    f"late read of object {obj.object_id} carries "
                    f"inconsistency {d:g} past the "
                    f"{charge.violated_level} limit"
                ),
                violated_level=charge.violated_level,
            )
        return Rejected(
            REASON_LATE_READ,
            detail=(
                f"read ts {txn.timestamp} is older than committed write "
                f"ts {obj.committed_write_ts} on object {obj.object_id}"
            ),
        )

    # In-order read of committed data: consistent, nothing to charge.
    return Granted(value=obj.committed_value)


def esr_write_decision(
    obj: DataObject,
    txn: TransactionState,
    new_value: float,
    distance: DistanceFunction = absolute_distance,
    export_policy: str = "max",
) -> Outcome:
    """Decide a write under ESR-enhanced TSO (update ETs only).

    The only relaxed situation is case 3 — a write late with respect to a
    *query* read.  Write-write conflicts and writes late with respect to
    committed writes follow the SR decision unchanged.
    """
    if obj.writer_id is not None and obj.writer_id != txn.transaction_id:
        if txn.timestamp > obj.writer_ts:
            return MustWait(obj.writer_id)
        return Rejected(
            REASON_LATE_WRITE,
            detail=(
                f"write ts {txn.timestamp} is older than pending write "
                f"ts {obj.writer_ts} on object {obj.object_id}"
            ),
        )
    if txn.timestamp < obj.committed_write_ts:
        return Rejected(
            REASON_LATE_WRITE,
            detail=(
                f"write ts {txn.timestamp} is older than committed write "
                f"ts {obj.committed_write_ts} on object {obj.object_id}"
            ),
        )
    if txn.timestamp < obj.read_ts:
        if not obj.last_reader_was_query:
            # The newer read came from an update ET; update reads are
            # consistent, so this conflict cannot be relaxed.
            return Rejected(
                REASON_LATE_WRITE,
                detail=(
                    f"write ts {txn.timestamp} is older than an update-ET "
                    f"read ts {obj.read_ts} on object {obj.object_id}"
                ),
            )
        # Case 3: the write would export inconsistency to the concurrent
        # (still uncommitted) query readers of this object.
        oel = txn.effective_object_limit(obj.object_id, obj.bounds.export_limit)
        d = export_divergence(
            new_value, obj.query_readers.values(), distance, export_policy
        )
        charge = txn.account.admit(obj.object_id, d, oel)
        if charge.admitted:
            case = CASE_LATE_WRITE if d > 0 else None
            return Granted(inconsistency=d, esr_case=case)
        return Rejected(
            REASON_BOUND_VIOLATION,
            detail=(
                f"late write on object {obj.object_id} exports "
                f"inconsistency {d:g} past the {charge.violated_level} limit"
            ),
            violated_level=charge.violated_level,
        )
    # In-order write with no pending conflict.
    return Granted()
