"""In-process runtime: run transactions directly against an engine.

The simulator and the networked prototype are full runtimes with their
own notion of blocking.  For library users, tests, and examples that just
want ESR semantics over an in-memory database *in the current thread*,
:class:`LocalClient` provides the same surface as
:class:`~repro.net.client.RemoteConnection` without any transport:

* :meth:`LocalClient.begin` returns a :class:`LocalSession` whose
  blocking ``read``/``write`` satisfy the :class:`~repro.lang.eval.
  Session` protocol (so parsed programs run via :func:`repro.lang.eval.
  execute`), raising :class:`~repro.errors.TransactionAborted` on
  rejection;
* a strict-ordering wait cannot be serviced on a single thread — the
  blocking transaction is necessarily driven by *this same thread* — so
  it raises :class:`WouldBlock` naming the blocker, and the caller
  decides (typically: finish the blocker, then retry);
* :meth:`LocalClient.run_program` implements the paper's client loop,
  resubmitting with a fresh timestamp until the program commits.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.bounds import EpsilonLevel, TransactionBounds
from repro.engine.api import Engine, create_engine
from repro.engine.database import Database
from repro.engine.reasons import (
    REASON_AGGREGATE_BOUND,
    REASON_CLIENT_ABORT,
    REASON_RETRY_EXHAUSTED,
)
from repro.engine.results import Granted, MustWait, Rejected
from repro.engine.transactions import TransactionState
from repro.errors import TransactionAborted, TransactionError
from repro.lang.ast import Program
from repro.lang.compiler import compile_program
from repro.lang.eval import ExecutionResult, execute

__all__ = ["WouldBlock", "LocalSession", "LocalClient"]


class WouldBlock(TransactionError):
    """Strict ordering demands a wait that one thread cannot perform.

    ``blocking_transaction`` identifies the transaction whose completion
    would unblock the operation; finish it and retry.
    """

    def __init__(self, message: str, transaction_id: int, blocking_transaction: int):
        super().__init__(message, transaction_id)
        self.blocking_transaction = blocking_transaction


class LocalSession:
    """One in-process transaction (a blocking Session for programs)."""

    def __init__(self, manager: Engine, txn: TransactionState):
        self._manager = manager
        self.txn = txn

    @property
    def transaction_id(self) -> int:
        return self.txn.transaction_id

    @property
    def inconsistency(self) -> float:
        """Total inconsistency this transaction has imported/exported."""
        return self.txn.account.total

    def read(self, object_id: int) -> float:
        outcome = self._manager.read(self.txn, object_id)
        if isinstance(outcome, Granted):
            assert outcome.value is not None
            return outcome.value
        if isinstance(outcome, MustWait):
            raise WouldBlock(
                f"read of object {object_id} must wait for transaction "
                f"{outcome.blocking_transaction}",
                self.txn.transaction_id,
                outcome.blocking_transaction,
            )
        assert isinstance(outcome, Rejected)
        raise TransactionAborted(
            outcome.detail or f"read of object {object_id} rejected",
            self.txn.transaction_id,
            reason=outcome.reason,
        )

    def write(self, object_id: int, value: float) -> None:
        outcome = self._manager.write(self.txn, object_id, value)
        if isinstance(outcome, Granted):
            return
        if isinstance(outcome, MustWait):
            raise WouldBlock(
                f"write of object {object_id} must wait for transaction "
                f"{outcome.blocking_transaction}",
                self.txn.transaction_id,
                outcome.blocking_transaction,
            )
        assert isinstance(outcome, Rejected)
        raise TransactionAborted(
            outcome.detail or f"write of object {object_id} rejected",
            self.txn.transaction_id,
            reason=outcome.reason,
        )

    def aggregate_guard(self, name: str, object_ids: list[int]) -> None:
        """The paper's section 5.3.2 check for non-sum aggregates.

        Computes the aggregate's result inconsistency from the min/max
        values this transaction viewed per object and aborts the
        transaction if it exceeds the TIL.  Called automatically by the
        program interpreter before producing ``avg``/``min``/``max``
        results; usable directly by hand-written queries too.
        """
        from repro.core.aggregates import aggregate_bounds

        ranges = {}
        for object_id in object_ids:
            value_range = self.txn.account.value_range(object_id)
            if value_range is None:
                continue
            ranges[object_id] = value_range
        if not ranges:
            return
        envelope = aggregate_bounds(name, ranges)
        limit = self.txn.bounds.import_limit
        if not envelope.within(limit):
            self._manager.abort(self.txn, REASON_AGGREGATE_BOUND)
            raise TransactionAborted(
                f"{name} result inconsistency {envelope.inconsistency:g} "
                f"exceeds TIL {limit:g}",
                self.txn.transaction_id,
                reason=REASON_AGGREGATE_BOUND,
            )

    def commit(self) -> None:
        self._manager.commit(self.txn)

    def abort(self, reason: str = REASON_CLIENT_ABORT) -> None:
        self._manager.abort(self.txn, reason)

    def __enter__(self) -> "LocalSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self.txn.is_active:
            return
        if exc_type is None:
            self.commit()
        else:
            self.abort()


class LocalClient:
    """A convenience front-end over an engine for in-process use.

    Accepts any registry protocol (``esr``/``sr``/``2pl``/``2pl-sr``/
    ``mvto``) and the :func:`repro.engine.api.create_engine` options —
    including ``shards=N`` for a sharded engine.
    """

    def __init__(self, database: Database, protocol: str = "esr", **engine_kwargs):
        self.manager = create_engine(database, protocol, **engine_kwargs)

    @property
    def database(self) -> Database:
        return self.manager.database

    def history(self) -> "HistoryLog":
        """The recorded history so far (empty unless the client was
        built with ``record_history=True``)."""
        from repro.engine.history import HistoryLog

        return HistoryLog.from_engine(self.manager)

    def begin(
        self,
        kind: str,
        bounds: TransactionBounds | EpsilonLevel | float = 0.0,
        group_limits: Mapping[str, float] | None = None,
        object_limits: Mapping[int, float] | None = None,
    ) -> LocalSession:
        """Begin a transaction; ``bounds`` may be a limit number, a
        :class:`TransactionBounds`, or an :class:`EpsilonLevel`."""
        if isinstance(bounds, (int, float)):
            if kind == "query":
                bounds = TransactionBounds(import_limit=float(bounds))
            else:
                bounds = TransactionBounds(export_limit=float(bounds))
        txn = self.manager.begin(
            kind, bounds, group_limits=group_limits, object_limits=object_limits
        )
        return LocalSession(self.manager, txn)

    def run_program(
        self, program: Program, max_attempts: int = 1000
    ) -> tuple[ExecutionResult, int]:
        """Resubmit ``program`` until it commits; returns (result, restarts)."""
        compiled = compile_program(program)
        restarts = 0
        for _ in range(max_attempts):
            session = self.begin(
                compiled.kind,
                compiled.bounds,
                group_limits=compiled.group_limits,
                object_limits=compiled.object_limits,
            )
            try:
                result = execute(program, session)
            except TransactionAborted:
                restarts += 1
                continue
            if result.aborted_by_program:
                session.abort()
            else:
                session.commit()
            return result, restarts
        raise TransactionAborted(
            f"program did not commit within {max_attempts} attempts",
            reason=REASON_RETRY_EXHAUSTED,
        )
