"""Client library for the networked prototype.

:class:`RemoteConnection` is one client site: it holds the TCP
connection, synchronises its virtual clock against the server at connect
time, and generates site-stamped timestamps.  :class:`RemoteTransaction`
exposes blocking ``read``/``write`` — satisfying the
:class:`~repro.lang.eval.Session` protocol, so parsed transaction
programs run against a live server via :func:`repro.lang.eval.execute` —
and raises :class:`~repro.errors.TransactionAborted` when the server
rejects an operation.  :meth:`RemoteConnection.run_program` adds the
paper's client loop: resubmit with a fresh timestamp until commit.
"""

from __future__ import annotations

import socket
import time
from typing import Any

from repro.core.bounds import EpsilonLevel, TransactionBounds
from repro.engine.timestamps import Timestamp, TimestampGenerator
from repro.errors import ProtocolError, TransactionAborted
from repro.lang.ast import Program
from repro.lang.compiler import compile_program
from repro.lang.eval import ExecutionResult, execute
from repro.net.clock import VirtualClock
from repro.net.protocol import CODECS, JSON_CODEC, LineReader

__all__ = ["RemoteConnection", "RemoteTransaction"]


class RemoteTransaction:
    """A live transaction on a remote server (a blocking Session)."""

    def __init__(
        self,
        connection: "RemoteConnection",
        txn_id: int,
        kind: str,
        limit: float = 0.0,
    ):
        self._connection = connection
        self.txn_id = txn_id
        self.kind = kind
        self.limit = limit
        self.finished = False
        #: Inconsistency imported/exported so far, as reported per op.
        self.inconsistency = 0.0
        # Min/max viewed per object, for the section 5.3.2 aggregate check.
        self._ranges: dict[int, tuple[float, float]] = {}

    def read(self, object_id: int) -> float:
        response = self._connection._request(
            {"op": "read", "txn": self.txn_id, "object": object_id}
        )
        self._check(response)
        self.inconsistency += float(response.get("inconsistency") or 0.0)
        value = float(response["value"])
        low, high = self._ranges.get(object_id, (value, value))
        self._ranges[object_id] = (min(low, value), max(high, value))
        return value

    def aggregate_guard(self, name: str, object_ids: list[int]) -> None:
        """Client-side section 5.3.2 check for non-sum aggregates."""
        from repro.core.accounting import ValueRange
        from repro.core.aggregates import aggregate_bounds

        ranges = {}
        for object_id in object_ids:
            pair = self._ranges.get(object_id)
            if pair is None:
                continue
            value_range = ValueRange(pair[0])
            value_range.observe(pair[1])
            ranges[object_id] = value_range
        if not ranges:
            return
        envelope = aggregate_bounds(name, ranges)
        if not envelope.within(self.limit):
            self.abort()
            raise TransactionAborted(
                f"{name} result inconsistency {envelope.inconsistency:g} "
                f"exceeds TIL {self.limit:g}",
                transaction_id=self.txn_id,
                reason="aggregate-bound-violation",
            )

    def write(self, object_id: int, value: float) -> None:
        response = self._connection._request(
            {"op": "write", "txn": self.txn_id, "object": object_id, "value": value}
        )
        self._check(response)
        self.inconsistency += float(response.get("inconsistency") or 0.0)

    def commit(self) -> None:
        response = self._connection._request(
            {"op": "commit", "txn": self.txn_id}
        )
        self._check(response)
        self.finished = True

    def abort(self) -> None:
        if self.finished:
            return
        response = self._connection._request({"op": "abort", "txn": self.txn_id})
        self._check(response)
        self.finished = True

    def _check(self, response: dict[str, Any]) -> None:
        if response.get("ok"):
            return
        error = response.get("error")
        if error == "aborted":
            self.finished = True
            raise TransactionAborted(
                response.get("detail") or "transaction aborted by server",
                transaction_id=self.txn_id,
                reason=response.get("reason"),
            )
        raise ProtocolError(
            f"server error {error!r}: {response.get('detail')!r}"
        )

    def __enter__(self) -> "RemoteTransaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self.finished:
            if exc_type is None:
                self.commit()
            else:
                try:
                    self.abort()
                except (ProtocolError, OSError):
                    pass


class RemoteConnection:
    """One client site connected to a transaction server."""

    def __init__(
        self,
        host: str,
        port: int,
        site: int = 1,
        timeout: float = 60.0,
        codec: str = "json",
    ):
        if codec not in CODECS:
            raise ValueError(
                f"unknown codec {codec!r}; choose from {sorted(CODECS)}"
            )
        self.site = site
        self._sock = socket.create_connection((host, port), timeout=timeout)
        # Requests are tiny; don't let Nagle hold one back for an ACK.
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._codec = JSON_CODEC
        self._reader = LineReader(self._sock)
        self._next_id = 0
        #: The codec actually in effect after negotiation.  Stays
        #: ``"json"`` when the server declines (or predates) ``hello``.
        self.negotiated_codec = "json"
        self.clock = VirtualClock()
        self._synchronize_clock()
        if codec != JSON_CODEC.name:
            self._negotiate_codec(codec)
        self._timestamps = TimestampGenerator(site=site, clock=self.clock.now)

    # -- plumbing -----------------------------------------------------------------

    def _negotiate_codec(self, name: str) -> None:
        # An old server answers hello with ``unknown-op`` — not ok, so the
        # connection simply stays on JSON and everything keeps working.
        response = self._request({"op": "hello", "codecs": [name]})
        if response.get("ok") and response.get("codec") == name:
            self._codec = CODECS[name]
            self._reader = self._codec.make_reader(
                self._sock, self._reader.buffer
            )
            self.negotiated_codec = name

    def _request(self, message: dict[str, Any]) -> dict[str, Any]:
        codec = self._codec
        rid = None
        if codec is not JSON_CODEC:
            # Binary fixed layouts carry a correlation id; this client is
            # strictly serial, so tag each request and verify the echo.
            self._next_id += 1
            rid = self._next_id
            message = dict(message)
            message["id"] = rid
        self._sock.sendall(codec.encode_request(message))
        response = self._reader.read_message()
        if response is None:
            raise ProtocolError("server closed the connection")
        if rid is not None:
            echoed = response.pop("id", None)
            if echoed != rid:
                raise ProtocolError(
                    f"response id {echoed!r} does not match request id {rid}"
                )
        return response

    def _synchronize_clock(self) -> None:
        sent = time.time()
        response = self._request({"op": "time"})
        received = time.time()
        if not response.get("ok"):
            raise ProtocolError("server refused the time request")
        self.clock.synchronize(float(response["time"]), sent, received)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "RemoteConnection":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- transactions ----------------------------------------------------------------

    def begin(
        self,
        kind: str,
        bounds: TransactionBounds | EpsilonLevel | float = 0.0,
        group_limits: dict[str, float] | None = None,
        object_limits: dict[int, float] | None = None,
        timestamp: Timestamp | None = None,
    ) -> RemoteTransaction:
        """Begin a transaction; ``bounds`` may be a limit number, a
        :class:`TransactionBounds`, or an :class:`EpsilonLevel`.

        ``timestamp`` overrides the synchronized-clock timestamp — tests
        use it to pin the ordering between transactions from different
        connections, whose clocks may disagree by a few milliseconds.
        """
        if isinstance(bounds, EpsilonLevel):
            bounds = bounds.transaction
        if isinstance(bounds, TransactionBounds):
            limit = bounds.import_limit if kind == "query" else bounds.export_limit
        else:
            limit = float(bounds)
        if timestamp is None:
            timestamp = self._timestamps.next()
        response = self._request(
            {
                "op": "begin",
                "kind": kind,
                "limit": limit,
                "timestamp": list(timestamp),
                "group_limits": group_limits or {},
                "object_limits": {
                    str(k): v for k, v in (object_limits or {}).items()
                },
            }
        )
        if not response.get("ok"):
            raise ProtocolError(
                f"begin failed: {response.get('error')!r} "
                f"{response.get('detail')!r}"
            )
        return RemoteTransaction(self, int(response["txn"]), kind, limit=limit)

    def run_program(
        self,
        program: Program,
        max_retries: int = 1000,
        backoff_base: float = 0.001,
        backoff_cap: float = 0.25,
        backoff_seed: int | None = None,
    ) -> tuple[ExecutionResult, int]:
        """The paper's client loop: resubmit until the program commits.

        Aborted attempts back off with capped exponential delays —
        ``min(backoff_cap, backoff_base * 2**attempt)`` scaled by a
        deterministic jitter factor in [0.5, 1.0) drawn from a
        ``random.Random`` seeded with ``backoff_seed`` (default: this
        connection's site id, so concurrent sites desynchronise without
        losing reproducibility) — instead of resubmitting in a tight
        loop.  After ``max_retries`` aborted attempts the final
        :class:`~repro.errors.TransactionAborted` is raised with reason
        ``"retry-exhausted"``.

        Returns the final :class:`ExecutionResult` and the number of
        aborted attempts that preceded the commit.
        """
        import random

        compiled = compile_program(program)
        jitter = random.Random(
            self.site if backoff_seed is None else backoff_seed
        )
        restarts = 0
        while True:
            txn = self.begin(
                compiled.kind,
                compiled.bounds,
                group_limits=compiled.group_limits,
                object_limits=compiled.object_limits,
            )
            try:
                result = execute(program, txn)
            except TransactionAborted:
                restarts += 1
                if restarts > max_retries:
                    raise TransactionAborted(
                        f"program did not commit within {max_retries} retries",
                        reason="retry-exhausted",
                    ) from None
                delay = min(
                    backoff_cap, backoff_base * (2.0 ** (restarts - 1))
                )
                time.sleep(delay * (0.5 + 0.5 * jitter.random()))
                continue
            if result.aborted_by_program:
                txn.abort()
            else:
                txn.commit()
            return result, restarts
