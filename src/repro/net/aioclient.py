"""Asyncio client with request pipelining for the transaction servers.

:class:`AsyncRemoteConnection` keeps one TCP connection and allows any
number of concurrent requests on it: every request is tagged with a
correlation ``id``, a single reader task matches responses back to their
futures, and callers simply ``await connection.request(...)`` from as
many tasks as they like.  Against the asyncio server responses may
arrive out of order (independent transactions overtake a parked wait);
against the threaded server they arrive in order — either way the ``id``
does the matching, so the same client drives both.

:class:`AsyncRemoteTransaction` mirrors the synchronous
:class:`~repro.net.client.RemoteTransaction` with ``async`` operations.
The load generator behind ``repro bench-net`` multiplexes many such
transactions per connection to fill the pipeline.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any

from repro.core.bounds import EpsilonLevel, TransactionBounds
from repro.engine.timestamps import Timestamp, TimestampGenerator
from repro.errors import ProtocolError, TransactionAborted
from repro.net.clock import VirtualClock
from repro.net.protocol import MAX_LINE_BYTES, decode_message, encode_message

__all__ = ["AsyncRemoteConnection", "AsyncRemoteTransaction", "connect"]


class AsyncRemoteTransaction:
    """A live transaction on a remote server (an awaitable session)."""

    def __init__(
        self,
        connection: "AsyncRemoteConnection",
        txn_id: int,
        kind: str,
        limit: float = 0.0,
    ):
        self._connection = connection
        self.txn_id = txn_id
        self.kind = kind
        self.limit = limit
        self.finished = False
        #: Inconsistency imported/exported so far, as reported per op.
        self.inconsistency = 0.0

    async def read(self, object_id: int) -> float:
        response = await self._connection.request(
            {"op": "read", "txn": self.txn_id, "object": object_id}
        )
        self._check(response)
        self.inconsistency += float(response.get("inconsistency") or 0.0)
        return float(response["value"])

    async def write(self, object_id: int, value: float) -> None:
        response = await self._connection.request(
            {"op": "write", "txn": self.txn_id, "object": object_id, "value": value}
        )
        self._check(response)
        self.inconsistency += float(response.get("inconsistency") or 0.0)

    async def commit(self) -> None:
        response = await self._connection.request(
            {"op": "commit", "txn": self.txn_id}
        )
        self._check(response)
        self.finished = True

    async def abort(self) -> None:
        if self.finished:
            return
        response = await self._connection.request(
            {"op": "abort", "txn": self.txn_id}
        )
        self._check(response)
        self.finished = True

    def _check(self, response: dict[str, Any]) -> None:
        if response.get("ok"):
            return
        error = response.get("error")
        if error == "aborted":
            self.finished = True
            raise TransactionAborted(
                response.get("detail") or "transaction aborted by server",
                transaction_id=self.txn_id,
                reason=response.get("reason"),
            )
        raise ProtocolError(
            f"server error {error!r}: {response.get('detail')!r}"
        )


class AsyncRemoteConnection:
    """One pipelined client connection; build via :func:`connect`."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        site: int = 1,
    ):
        self.site = site
        self._reader = reader
        self._writer = writer
        self._next_id = 0
        self._pending: dict[int, asyncio.Future] = {}
        self._outbuf: list[bytes] = []
        self._flush_scheduled = False
        self._closed = False
        self.clock = VirtualClock()
        self._timestamps: TimestampGenerator | None = None
        self._reader_task = asyncio.create_task(self._read_responses())

    # -- plumbing --------------------------------------------------------------

    async def request(self, message: dict[str, Any]) -> dict[str, Any]:
        """Send one request; resolves when its tagged response arrives.

        Any number of requests may be outstanding concurrently — this is
        the pipelining primitive.
        """
        if self._closed:
            raise ProtocolError("connection is closed")
        loop = asyncio.get_running_loop()
        self._next_id += 1
        correlation = self._next_id
        future: asyncio.Future = loop.create_future()
        self._pending[correlation] = future
        try:
            # Coalesce writes: buffer the encoded request and flush once
            # per loop tick, so concurrent sessions on this connection
            # share one syscall instead of paying one each.
            self._outbuf.append(encode_message({**message, "id": correlation}))
            if not self._flush_scheduled:
                self._flush_scheduled = True
                loop.call_soon(self._flush)
            return await future
        finally:
            self._pending.pop(correlation, None)

    def _flush(self) -> None:
        self._flush_scheduled = False
        if self._closed or not self._outbuf:
            return
        payload = b"".join(self._outbuf)
        self._outbuf.clear()
        self._writer.write(payload)

    async def _read_responses(self) -> None:
        try:
            while True:
                line = await self._reader.readuntil(b"\n")
                response = decode_message(line.rstrip(b"\n"))
                future = self._pending.get(response.get("id"))
                if future is not None and not future.done():
                    future.set_result(response)
        except (
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            ConnectionError,
            OSError,
            ProtocolError,
        ) as exc:
            self._fail_pending(exc)
        except asyncio.CancelledError:
            self._fail_pending(None)
            raise

    def _fail_pending(self, cause: BaseException | None) -> None:
        self._closed = True
        error = ProtocolError("server closed the connection")
        if cause is not None:
            error.__cause__ = cause
        for future in self._pending.values():
            if not future.done():
                future.set_exception(error)
        self._pending.clear()

    async def close(self) -> None:
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "AsyncRemoteConnection":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    # -- clock sync and transactions -------------------------------------------

    async def synchronize_clock(self) -> None:
        sent = time.time()
        response = await self.request({"op": "time"})
        received = time.time()
        if not response.get("ok"):
            raise ProtocolError("server refused the time request")
        self.clock.synchronize(float(response["time"]), sent, received)
        self._timestamps = TimestampGenerator(
            site=self.site, clock=self.clock.now
        )

    async def begin(
        self,
        kind: str,
        bounds: TransactionBounds | EpsilonLevel | float = 0.0,
        group_limits: dict[str, float] | None = None,
        object_limits: dict[int, float] | None = None,
        timestamp: Timestamp | None = None,
    ) -> AsyncRemoteTransaction:
        """Begin a transaction (same semantics as the sync client)."""
        if isinstance(bounds, EpsilonLevel):
            bounds = bounds.transaction
        if isinstance(bounds, TransactionBounds):
            limit = bounds.import_limit if kind == "query" else bounds.export_limit
        else:
            limit = float(bounds)
        if timestamp is None:
            if self._timestamps is None:
                raise ProtocolError(
                    "clock not synchronized; call synchronize_clock() first "
                    "or pass an explicit timestamp"
                )
            timestamp = self._timestamps.next()
        response = await self.request(
            {
                "op": "begin",
                "kind": kind,
                "limit": limit,
                "timestamp": list(timestamp),
                "group_limits": group_limits or {},
                "object_limits": {
                    str(k): v for k, v in (object_limits or {}).items()
                },
            }
        )
        if not response.get("ok"):
            raise ProtocolError(
                f"begin failed: {response.get('error')!r} "
                f"{response.get('detail')!r}"
            )
        return AsyncRemoteTransaction(
            self, int(response["txn"]), kind, limit=limit
        )


async def connect(
    host: str, port: int, site: int = 1, timeout: float = 60.0
) -> AsyncRemoteConnection:
    """Open a pipelined connection and synchronise its virtual clock."""
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port, limit=MAX_LINE_BYTES + 1),
        timeout,
    )
    connection = AsyncRemoteConnection(reader, writer, site=site)
    await connection.synchronize_clock()
    return connection
