"""Asyncio client with request pipelining for the transaction servers.

:class:`AsyncRemoteConnection` keeps one TCP connection and allows any
number of concurrent requests on it: every request is tagged with a
correlation ``id``, a single reader task matches responses back to their
futures, and callers simply ``await connection.request(...)`` from as
many tasks as they like.  Against the asyncio server responses may
arrive out of order (independent transactions overtake a parked wait);
against the threaded server they arrive in order — either way the ``id``
does the matching, so the same client drives both.

:class:`AsyncRemoteTransaction` mirrors the synchronous
:class:`~repro.net.client.RemoteTransaction` with ``async`` operations.
The load generator behind ``repro bench-net`` multiplexes many such
transactions per connection to fill the pipeline.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any

from repro.core.bounds import EpsilonLevel, TransactionBounds
from repro.engine.timestamps import Timestamp, TimestampGenerator
from repro.errors import ProtocolError, TransactionAborted
from repro.net.clock import VirtualClock
from repro.net.protocol import (
    CODECS,
    JSON_CODEC,
    MAX_FRAME_BYTES,
    MAX_LINE_BYTES,
    Codec,
    decode_message,
)

__all__ = ["AsyncRemoteConnection", "AsyncRemoteTransaction", "connect"]


class AsyncRemoteTransaction:
    """A live transaction on a remote server (an awaitable session)."""

    def __init__(
        self,
        connection: "AsyncRemoteConnection",
        txn_id: int,
        kind: str,
        limit: float = 0.0,
    ):
        self._connection = connection
        self.txn_id = txn_id
        self.kind = kind
        self.limit = limit
        self.finished = False
        #: Inconsistency imported/exported so far, as reported per op.
        self.inconsistency = 0.0

    async def read(self, object_id: int) -> float:
        response = await self._connection.request(
            {"op": "read", "txn": self.txn_id, "object": object_id}
        )
        self._check(response)
        self.inconsistency += float(response.get("inconsistency") or 0.0)
        return float(response["value"])

    async def write(self, object_id: int, value: float) -> None:
        response = await self._connection.request(
            {"op": "write", "txn": self.txn_id, "object": object_id, "value": value}
        )
        self._check(response)
        self.inconsistency += float(response.get("inconsistency") or 0.0)

    async def commit(self) -> None:
        response = await self._connection.request(
            {"op": "commit", "txn": self.txn_id}
        )
        self._check(response)
        self.finished = True

    async def abort(self) -> None:
        if self.finished:
            return
        response = await self._connection.request(
            {"op": "abort", "txn": self.txn_id}
        )
        self._check(response)
        self.finished = True

    def _check(self, response: dict[str, Any]) -> None:
        if response.get("ok"):
            return
        error = response.get("error")
        if error == "aborted":
            self.finished = True
            raise TransactionAborted(
                response.get("detail") or "transaction aborted by server",
                transaction_id=self.txn_id,
                reason=response.get("reason"),
            )
        raise ProtocolError(
            f"server error {error!r}: {response.get('detail')!r}"
        )


class AsyncRemoteConnection:
    """One pipelined client connection; build via :func:`connect`."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        site: int = 1,
    ):
        self.site = site
        self._reader = reader
        self._writer = writer
        self._next_id = 0
        self._pending: dict[int, asyncio.Future] = {}
        self._outbuf: list[bytes] = []
        self._flush_scheduled = False
        self._closed = False
        self._codec: Codec = JSON_CODEC
        self._binary = False
        # In-flight negotiation: the reader task switches framing the
        # moment it sees the hello response with this id, *before* its
        # next read — binary response bytes may follow immediately.
        self._hello_id: int | None = None
        self._want_codec: Codec | None = None
        #: The codec actually in effect after negotiation.
        self.negotiated_codec = "json"
        self.clock = VirtualClock()
        self._timestamps: TimestampGenerator | None = None
        self._reader_task = asyncio.create_task(self._read_responses())

    # -- plumbing --------------------------------------------------------------

    async def request(self, message: dict[str, Any]) -> dict[str, Any]:
        """Send one request; resolves when its tagged response arrives.

        Any number of requests may be outstanding concurrently — this is
        the pipelining primitive.
        """
        if self._closed:
            raise ProtocolError("connection is closed")
        loop = asyncio.get_running_loop()
        self._next_id += 1
        correlation = self._next_id
        future: asyncio.Future = loop.create_future()
        self._pending[correlation] = future
        try:
            # Coalesce writes: buffer the encoded request and flush once
            # per loop tick, so concurrent sessions on this connection
            # share one syscall instead of paying one each.
            self._outbuf.append(
                self._codec.encode_request({**message, "id": correlation})
            )
            if not self._flush_scheduled:
                self._flush_scheduled = True
                loop.call_soon(self._flush)
            return await future
        finally:
            self._pending.pop(correlation, None)

    def _flush(self) -> None:
        self._flush_scheduled = False
        if self._closed or not self._outbuf:
            return
        payload = b"".join(self._outbuf)
        self._outbuf.clear()
        self._writer.write(payload)

    async def _read_responses(self) -> None:
        try:
            while True:
                if self._binary:
                    header = await self._reader.readexactly(4)
                    size = int.from_bytes(header, "little")
                    if size < 1 or size > MAX_FRAME_BYTES:
                        raise ProtocolError(
                            f"binary frame of {size} bytes exceeds "
                            f"{MAX_FRAME_BYTES} bytes"
                        )
                    frame = await self._reader.readexactly(size)
                    response = self._codec.decode(frame)
                else:
                    line = await self._reader.readuntil(b"\n")
                    response = decode_message(line.rstrip(b"\n"))
                rid = response.get("id")
                if self._hello_id is not None and rid == self._hello_id:
                    self._finish_negotiation(response)
                future = self._pending.get(rid)
                if future is not None and not future.done():
                    future.set_result(response)
        except (
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            ConnectionError,
            OSError,
            ProtocolError,
        ) as exc:
            self._fail_pending(exc)
        except asyncio.CancelledError:
            self._fail_pending(None)
            raise

    def _finish_negotiation(self, response: dict[str, Any]) -> None:
        """Reader-side half of :meth:`negotiate_codec`: apply the switch
        between this response and the next read."""
        want = self._want_codec
        self._hello_id = None
        self._want_codec = None
        if (
            want is not None
            and response.get("ok")
            and response.get("codec") == want.name
        ):
            self._codec = want
            self._binary = True
            self.negotiated_codec = want.name

    async def negotiate_codec(self, name: str) -> str:
        """Negotiate the wire codec; returns the name actually in effect.

        Must run on a quiet connection (no requests in flight): the
        framing switch applies to every byte after the hello response,
        so an earlier response still travelling as a JSON line would be
        misparsed.  An old server answers ``unknown-op`` and the
        connection simply stays on JSON.
        """
        if name not in CODECS:
            raise ValueError(
                f"unknown codec {name!r}; choose from {sorted(CODECS)}"
            )
        if name == self._codec.name:
            return self.negotiated_codec
        if self._pending:
            raise ProtocolError(
                "codec negotiation requires a quiet connection "
                f"({len(self._pending)} requests in flight)"
            )
        self._want_codec = CODECS[name]
        # request() assigns ids with a synchronous pre-increment, so the
        # hello's id is knowable before the call.
        self._hello_id = self._next_id + 1
        await self.request({"op": "hello", "codecs": [name]})
        return self.negotiated_codec

    def _fail_pending(self, cause: BaseException | None) -> None:
        self._closed = True
        error = ProtocolError("server closed the connection")
        if cause is not None:
            error.__cause__ = cause
        for future in self._pending.values():
            if not future.done():
                future.set_exception(error)
        self._pending.clear()

    async def close(self) -> None:
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "AsyncRemoteConnection":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    # -- clock sync and transactions -------------------------------------------

    async def synchronize_clock(self) -> None:
        sent = time.time()
        response = await self.request({"op": "time"})
        received = time.time()
        if not response.get("ok"):
            raise ProtocolError("server refused the time request")
        self.clock.synchronize(float(response["time"]), sent, received)
        self._timestamps = TimestampGenerator(
            site=self.site, clock=self.clock.now
        )

    async def begin(
        self,
        kind: str,
        bounds: TransactionBounds | EpsilonLevel | float = 0.0,
        group_limits: dict[str, float] | None = None,
        object_limits: dict[int, float] | None = None,
        timestamp: Timestamp | None = None,
    ) -> AsyncRemoteTransaction:
        """Begin a transaction (same semantics as the sync client)."""
        if isinstance(bounds, EpsilonLevel):
            bounds = bounds.transaction
        if isinstance(bounds, TransactionBounds):
            limit = bounds.import_limit if kind == "query" else bounds.export_limit
        else:
            limit = float(bounds)
        if timestamp is None:
            if self._timestamps is None:
                raise ProtocolError(
                    "clock not synchronized; call synchronize_clock() first "
                    "or pass an explicit timestamp"
                )
            timestamp = self._timestamps.next()
        response = await self.request(
            {
                "op": "begin",
                "kind": kind,
                "limit": limit,
                "timestamp": list(timestamp),
                "group_limits": group_limits or {},
                "object_limits": {
                    str(k): v for k, v in (object_limits or {}).items()
                },
            }
        )
        if not response.get("ok"):
            raise ProtocolError(
                f"begin failed: {response.get('error')!r} "
                f"{response.get('detail')!r}"
            )
        return AsyncRemoteTransaction(
            self, int(response["txn"]), kind, limit=limit
        )


async def connect(
    host: str,
    port: int,
    site: int = 1,
    timeout: float = 60.0,
    codec: str = "json",
) -> AsyncRemoteConnection:
    """Open a pipelined connection and synchronise its virtual clock.

    ``codec="binary-1"`` negotiates the binary wire codec after clock
    sync; the connection stays on JSON when the server declines.
    """
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port, limit=MAX_LINE_BYTES + 1),
        timeout,
    )
    connection = AsyncRemoteConnection(reader, writer, site=site)
    await connection.synchronize_clock()
    if codec != "json":
        await connection.negotiate_codec(codec)
    return connection
