"""Virtual clock synchronisation for client sites (paper section 6).

"As there was a two minute range of variation between the local system
clocks of the different client sites, to ensure that the timestamps from
all the sites are given a fair treatment, a correction factor was applied
to the local time to achieve virtual clock synchronization."

:class:`VirtualClock` implements that correction: given the local clock
and a reference reading obtained from the server (with the request's
round-trip time), it estimates the local offset the same way a simple
NTP exchange does — reference time minus the local midpoint of the
exchange — and serves corrected readings thereafter.  Uniqueness across
sites is still guaranteed by the site-id component of
:class:`~repro.engine.timestamps.Timestamp`.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.engine.timestamps import TimestampGenerator

__all__ = ["VirtualClock", "synchronized_generator"]


class VirtualClock:
    """A local clock corrected towards a reference clock."""

    def __init__(self, local_clock: Callable[[], float] | None = None):
        self._local = local_clock if local_clock is not None else time.time
        self.offset = 0.0
        self.synchronized = False

    def synchronize(
        self, reference_reading: float, request_sent_at: float, response_at: float
    ) -> float:
        """Apply one reference exchange; returns the estimated offset.

        ``reference_reading`` is the server's clock value; the two local
        readings bracket the exchange.  The server is assumed to have
        read its clock at the local midpoint, so
        ``offset = reference - midpoint``.
        """
        midpoint = (request_sent_at + response_at) / 2.0
        self.offset = reference_reading - midpoint
        self.synchronized = True
        return self.offset

    def now(self) -> float:
        """The corrected local time."""
        return self._local() + self.offset

    def __repr__(self) -> str:
        state = f"offset={self.offset:+.6f}" if self.synchronized else "unsynchronized"
        return f"VirtualClock({state})"


def synchronized_generator(site: int, clock: VirtualClock) -> TimestampGenerator:
    """A timestamp generator driven by a (corrected) virtual clock."""
    return TimestampGenerator(site=site, clock=clock.now)
