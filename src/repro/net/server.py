"""The networked transaction server: a threaded TCP host for the engine.

This is the "real" counterpart of the simulator — a multithreaded server
(one thread per client connection, like the paper's thread-per-RPC
prototype) fronting one :class:`~repro.engine.manager.TransactionManager`.
It is kept as the *fidelity baseline*: one request, one response, one
thread per connection.  The high-throughput sibling is
:mod:`repro.net.aioserver`; both speak the identical wire protocol (a
shared conformance suite holds them to it) and both build responses via
:mod:`repro.net.requests`.

Concurrency discipline: the engine is single-threaded by design, so every
manager call happens under one mutex (the scheduler's critical section).
Strict-ordering waits must *not* hold that mutex — a blocked operation
registers a ``threading.Event`` with the wait registry, releases the
mutex, sleeps on the event, and retries once the blocking transaction
completes.  Because waiters only wait on older transactions, this cannot
deadlock; a timeout (the ``wait_timeout`` constructor/CLI parameter)
guards against a client that dies while holding an uncommitted write.

Pipelining note: this server reads one request at a time per connection
and answers before reading the next, so pipelined clients get their
responses strictly in request order.

Codec note: every connection starts in JSON line mode; a ``hello``
request negotiates the wire codec (:func:`repro.net.protocol.
negotiate_hello`) and the connection switches framing immediately after
the (JSON) hello response.  ``codecs=None`` disables negotiation
entirely — the server then behaves byte-for-byte like a pre-negotiation
build (``hello`` falls through to dispatch and earns ``unknown-op``),
which is how the tests emulate an old server.
"""

from __future__ import annotations

import contextlib
import socket
import socketserver
import threading
from typing import Any

from repro.engine.api import create_engine
from repro.engine.database import Database
from repro.engine.reasons import REASON_CLIENT_DISCONNECTED
from repro.engine.transactions import TransactionState
from repro.errors import ProtocolError
from repro.net.protocol import (
    JSON_CODEC,
    SUPPORTED_CODECS,
    Codec,
    LineTooLong,
    negotiate_hello,
)
from repro.net.requests import (
    NeedsWait,
    abort_on_timeout,
    attach_id,
    retry_operation,
    submit_request,
    try_cached_read,
)

__all__ = ["TransactionServer", "serve_forever", "WAIT_TIMEOUT_SECONDS"]

#: Default upper bound on one strict-ordering wait; transactions normally
#: finish in milliseconds, so hitting this means the blocker's client is
#: gone.  Override per server via the ``wait_timeout`` parameter.
WAIT_TIMEOUT_SECONDS = 30.0


class _Handler(socketserver.StreamRequestHandler):
    """One client connection: a request/response loop."""

    server: "TransactionServer"

    def handle(self) -> None:
        # Small responses must not sit in Nagle's buffer waiting for the
        # client's delayed ACK — a pipelining client would otherwise see
        # ~40ms stalls between back-to-back responses.
        self.connection.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        codec: Codec = JSON_CODEC
        reader = codec.make_reader(self.connection)
        # Transactions begun on this connection, so a dropped client's
        # in-flight transaction can be aborted on disconnect.
        sessions: dict[int, TransactionState] = {}
        try:
            while True:
                try:
                    message = reader.read_message()
                except LineTooLong as exc:
                    self._send(
                        codec,
                        {"ok": False, "error": "too_large", "detail": str(exc)},
                    )
                    return
                except ProtocolError as exc:
                    self._send(
                        codec,
                        {"ok": False, "error": "protocol", "detail": str(exc)},
                    )
                    return
                if message is None:
                    return
                if self.server.codecs is not None and message.get("op") == "hello":
                    # Negotiate, answer on the *current* codec, then switch
                    # framing — handing any already-buffered bytes to the
                    # new reader losslessly.
                    codec, reader = self._negotiate(codec, message, reader)
                    continue
                response = self.server.dispatch(message, sessions)
                self._send(codec, attach_id(response, message))
        except (ConnectionError, BrokenPipeError, OSError):
            pass
        finally:
            self.server.abandon(sessions)

    def _negotiate(self, codec: Codec, message: dict[str, Any], reader):
        chosen, response = negotiate_hello(message, self.server.codecs)
        self._send(codec, attach_id(response, message))
        if chosen is not codec:
            reader = chosen.make_reader(self.connection, reader.buffer)
            codec = chosen
        return codec, reader

    def _send(self, codec: Codec, response: dict[str, Any]) -> None:
        self.connection.sendall(codec.encode_response(response))


class TransactionServer(socketserver.ThreadingTCPServer):
    """A TCP transaction server around one database."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        database: Database,
        address: tuple[str, int] = ("127.0.0.1", 0),
        protocol: str = "esr",
        export_policy: str = "max",
        wait_timeout: float = WAIT_TIMEOUT_SECONDS,
        wait_policy: str = "wait",
        snapshot_cache: bool = False,
        shards: int = 1,
        processes: bool | str = False,
        shard_rpc: str = "fast",
        codecs: tuple[str, ...] | None = SUPPORTED_CODECS,
        record_history: bool = False,
    ):
        # Build (and validate) the engine before binding the socket, so
        # a bad protocol/option combination never leaks a bound port —
        # and, in process mode, so the shard workers fork before any
        # serving thread exists.
        self.manager = create_engine(
            database,
            protocol,
            export_policy=export_policy,
            wait_policy=wait_policy,
            snapshot_cache=snapshot_cache,
            shards=shards,
            processes=processes,
            shard_rpc=shard_rpc,
            record_history=record_history,
        )
        super().__init__(address, _Handler)
        #: Upper bound on one strict-ordering wait (see module constant).
        self.wait_timeout = wait_timeout
        #: Codecs offered to ``hello`` negotiation; None disables it
        #: (the connection then behaves like a pre-negotiation server).
        self.codecs = codecs
        # A thread-safe engine (the sharded composite) takes its own
        # per-shard locks, replacing the global engine mutex with
        # fine-grained critical sections; the bare managers still need
        # the single mutex.
        if getattr(self.manager, "thread_safe", False):
            self._mutex: Any = contextlib.nullcontext()
        else:
            self._mutex = threading.Lock()

    @property
    def port(self) -> int:
        return self.server_address[1]

    def server_close(self) -> None:
        """Close the listener, then the engine's worker processes."""
        super().server_close()
        close = getattr(self.manager, "close", None)
        if close is not None:
            close()

    # -- request dispatch ------------------------------------------------------

    def dispatch(
        self, message: dict[str, Any], sessions: dict[int, TransactionState]
    ) -> dict[str, Any]:
        """Execute one request, blocking this thread through any waits."""
        # Snapshot-cache fast path: bounded-staleness reads are answered
        # from immutable published records without taking the mutex at
        # all.  Per-transaction ordering holds because one connection (and
        # therefore one transaction) is served by one handler thread
        # sequentially.  A None falls through to the engine path below.
        cached = try_cached_read(self.manager, message, sessions)
        if cached is not None:
            return cached
        with self._mutex:
            result = submit_request(self.manager, message, sessions)
            waiter = self._register_wait(result)
        while isinstance(result, NeedsWait):
            if not waiter.wait(self.wait_timeout):
                with self._mutex:
                    return abort_on_timeout(self.manager, result)
            with self._mutex:
                result = retry_operation(self.manager, result)
                waiter = self._register_wait(result)
        return result

    def _register_wait(
        self, result: dict[str, Any] | NeedsWait
    ) -> threading.Event | None:
        """Register a wait event while still holding the mutex."""
        if not isinstance(result, NeedsWait):
            return None
        return self.manager.waits.wait_event(
            result.blocking_transaction,
            waiter_transaction=result.txn.transaction_id,
        )

    # -- connection cleanup ----------------------------------------------------

    def abandon(self, sessions: dict[int, TransactionState]) -> None:
        """Abort whatever a disconnected client left active."""
        with self._mutex:
            for txn in sessions.values():
                if txn.is_active:
                    self.manager.abort(txn, REASON_CLIENT_DISCONNECTED)
        sessions.clear()

    def history(self) -> "HistoryLog":
        """The recorded history so far (empty when recording is off)."""
        from repro.engine.history import HistoryLog

        return HistoryLog.from_engine(self.manager)


def serve_forever(
    database: Database,
    host: str = "127.0.0.1",
    port: int = 0,
    protocol: str = "esr",
    export_policy: str = "max",
    wait_timeout: float = WAIT_TIMEOUT_SECONDS,
    wait_policy: str = "wait",
    snapshot_cache: bool = False,
    shards: int = 1,
    processes: bool | str = False,
    shard_rpc: str = "fast",
    codecs: tuple[str, ...] | None = SUPPORTED_CODECS,
    record_history: bool = False,
) -> TransactionServer:
    """Start a server on a background thread; returns it (bound and live)."""
    server = TransactionServer(
        database,
        (host, port),
        protocol=protocol,
        export_policy=export_policy,
        wait_timeout=wait_timeout,
        wait_policy=wait_policy,
        snapshot_cache=snapshot_cache,
        shards=shards,
        processes=processes,
        shard_rpc=shard_rpc,
        codecs=codecs,
        record_history=record_history,
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server
