"""The networked transaction server: a threaded TCP host for the engine.

This is the "real" counterpart of the simulator — a multithreaded server
(one thread per client connection, like the paper's thread-per-RPC
prototype) fronting one :class:`~repro.engine.manager.TransactionManager`.

Concurrency discipline: the engine is single-threaded by design, so every
manager call happens under one mutex (the scheduler's critical section).
Strict-ordering waits must *not* hold that mutex — a blocked operation
registers a ``threading.Event`` with the wait registry, releases the
mutex, sleeps on the event, and retries once the blocking transaction
completes.  Because waiters only wait on older transactions, this cannot
deadlock; a generous timeout guards against a client that dies while
holding an uncommitted write.
"""

from __future__ import annotations

import socketserver
import threading
import time
from typing import Any

from repro.engine.database import Database
from repro.engine.manager import TransactionManager
from repro.engine.results import Granted, MustWait, Rejected
from repro.engine.timestamps import Timestamp
from repro.engine.transactions import TransactionState
from repro.errors import InvalidOperation, ProtocolError, UnknownObjectError
from repro.net.protocol import LineReader, recv_message, send_message

__all__ = ["TransactionServer", "serve_forever"]

#: Upper bound on one strict-ordering wait; transactions normally finish
#: in milliseconds, so hitting this means the blocker's client is gone.
WAIT_TIMEOUT_SECONDS = 30.0


class _Handler(socketserver.StreamRequestHandler):
    """One client connection: a request/response loop."""

    server: "TransactionServer"

    def handle(self) -> None:
        reader = LineReader(self.connection)
        # Transactions begun on this connection, so a dropped client's
        # in-flight transaction can be aborted on disconnect.
        sessions: dict[int, TransactionState] = {}
        try:
            while True:
                try:
                    message = recv_message(reader)
                except ProtocolError as exc:
                    send_message(
                        self.connection,
                        {"ok": False, "error": "protocol", "detail": str(exc)},
                    )
                    return
                if message is None:
                    return
                response = self.server.dispatch(message, sessions)
                send_message(self.connection, response)
        except (ConnectionError, BrokenPipeError, OSError):
            pass
        finally:
            self.server.abandon(sessions)


class TransactionServer(socketserver.ThreadingTCPServer):
    """A TCP transaction server around one database."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        database: Database,
        address: tuple[str, int] = ("127.0.0.1", 0),
        protocol: str = "esr",
        export_policy: str = "max",
        wait_timeout: float = WAIT_TIMEOUT_SECONDS,
        wait_policy: str = "wait",
    ):
        super().__init__(address, _Handler)
        self.manager = TransactionManager(
            database,
            protocol=protocol,
            export_policy=export_policy,
            wait_policy=wait_policy,
        )
        #: Upper bound on one strict-ordering wait (see module constant).
        self.wait_timeout = wait_timeout
        self._mutex = threading.Lock()

    @property
    def port(self) -> int:
        return self.server_address[1]

    # -- request dispatch ------------------------------------------------------

    def dispatch(
        self, message: dict[str, Any], sessions: dict[int, TransactionState]
    ) -> dict[str, Any]:
        op = message.get("op")
        try:
            if op == "time":
                return {"ok": True, "time": time.time()}
            if op == "begin":
                return self._do_begin(message, sessions)
            if op in ("read", "write", "commit", "abort"):
                txn = sessions.get(message.get("txn", -1))
                if txn is None:
                    return {
                        "ok": False,
                        "error": "unknown-transaction",
                        "detail": f"no transaction {message.get('txn')!r} "
                        "on this connection",
                    }
                if op == "read":
                    return self._do_read(txn, message)
                if op == "write":
                    return self._do_write(txn, message)
                if op == "commit":
                    with self._mutex:
                        self.manager.commit(txn)
                    sessions.pop(txn.transaction_id, None)
                    return {"ok": True}
                with self._mutex:
                    self.manager.abort(txn)
                sessions.pop(txn.transaction_id, None)
                return {"ok": True}
            return {
                "ok": False,
                "error": "unknown-op",
                "detail": f"unknown operation {op!r}",
            }
        except (InvalidOperation, UnknownObjectError) as exc:
            return {"ok": False, "error": "invalid", "detail": str(exc)}
        except (KeyError, TypeError, ValueError) as exc:
            return {"ok": False, "error": "bad-request", "detail": str(exc)}

    def _do_begin(
        self, message: dict[str, Any], sessions: dict[int, TransactionState]
    ) -> dict[str, Any]:
        from repro.core.bounds import TransactionBounds

        kind = message["kind"]
        limit = float(message.get("limit", 0.0))
        if kind == "query":
            bounds = TransactionBounds(import_limit=limit)
        else:
            bounds = TransactionBounds(export_limit=limit)
        raw_ts = message.get("timestamp")
        timestamp = Timestamp(*raw_ts) if raw_ts is not None else None
        group_limits = {
            str(k): float(v)
            for k, v in (message.get("group_limits") or {}).items()
        }
        object_limits = {
            int(k): float(v)
            for k, v in (message.get("object_limits") or {}).items()
        }
        with self._mutex:
            txn = self.manager.begin(
                kind,
                bounds,
                timestamp=timestamp,
                group_limits=group_limits,
                object_limits=object_limits,
            )
        sessions[txn.transaction_id] = txn
        return {"ok": True, "txn": txn.transaction_id}

    def _do_read(
        self, txn: TransactionState, message: dict[str, Any]
    ) -> dict[str, Any]:
        object_id = int(message["object"])
        while True:
            with self._mutex:
                outcome = self.manager.read(txn, object_id)
                waiter = self._waiter_for(outcome, txn)
            if waiter is not None:
                if not waiter.wait(self.wait_timeout):
                    with self._mutex:
                        self.manager.abort(txn, "wait-timeout")
                    return {
                        "ok": False,
                        "error": "aborted",
                        "reason": "wait-timeout",
                    }
                continue
            if isinstance(outcome, Granted):
                return {
                    "ok": True,
                    "value": outcome.value,
                    "inconsistency": outcome.inconsistency,
                    "esr_case": outcome.esr_case,
                }
            assert isinstance(outcome, Rejected)
            return {
                "ok": False,
                "error": "aborted",
                "reason": outcome.reason,
                "detail": outcome.detail,
            }

    def _do_write(
        self, txn: TransactionState, message: dict[str, Any]
    ) -> dict[str, Any]:
        object_id = int(message["object"])
        value = float(message["value"])
        while True:
            with self._mutex:
                outcome = self.manager.write(txn, object_id, value)
                waiter = self._waiter_for(outcome, txn)
            if waiter is not None:
                if not waiter.wait(self.wait_timeout):
                    with self._mutex:
                        self.manager.abort(txn, "wait-timeout")
                    return {
                        "ok": False,
                        "error": "aborted",
                        "reason": "wait-timeout",
                    }
                continue
            if isinstance(outcome, Granted):
                return {
                    "ok": True,
                    "inconsistency": outcome.inconsistency,
                    "esr_case": outcome.esr_case,
                }
            assert isinstance(outcome, Rejected)
            return {
                "ok": False,
                "error": "aborted",
                "reason": outcome.reason,
                "detail": outcome.detail,
            }

    def _waiter_for(
        self, outcome: object, txn: TransactionState
    ) -> threading.Event | None:
        """Register a wait event while still holding the mutex."""
        if not isinstance(outcome, MustWait):
            return None
        event = threading.Event()
        self.manager.waits.subscribe(
            outcome.blocking_transaction,
            event.set,
            waiter_transaction=txn.transaction_id,
        )
        return event

    # -- connection cleanup --------------------------------------------------------

    def abandon(self, sessions: dict[int, TransactionState]) -> None:
        """Abort whatever a disconnected client left active."""
        with self._mutex:
            for txn in sessions.values():
                if txn.is_active:
                    self.manager.abort(txn, "client-disconnected")
        sessions.clear()


def serve_forever(
    database: Database,
    host: str = "127.0.0.1",
    port: int = 0,
    protocol: str = "esr",
    export_policy: str = "max",
    wait_timeout: float = WAIT_TIMEOUT_SECONDS,
    wait_policy: str = "wait",
) -> TransactionServer:
    """Start a server on a background thread; returns it (bound and live)."""
    server = TransactionServer(
        database,
        (host, port),
        protocol=protocol,
        export_policy=export_policy,
        wait_timeout=wait_timeout,
        wait_policy=wait_policy,
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server
