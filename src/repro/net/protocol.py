"""The wire protocol of the networked prototype.

One JSON object per line over TCP (a faithful stand-in for the paper's
synchronous RPC library): the client sends a request, the server answers
with exactly one response before the client sends the next request.

Requests (``op`` selects the operation — the prototype's five basic
operations plus ``time`` for virtual clock synchronisation)::

    {"op": "time"}
    {"op": "begin", "kind": "query"|"update", "limit": <TIL or TEL>,
     "timestamp": [ticks, site, seq],
     "group_limits": {...}, "object_limits": {...}}
    {"op": "read",  "txn": <id>, "object": <oid>}
    {"op": "write", "txn": <id>, "object": <oid>, "value": <v>}
    {"op": "commit", "txn": <id>}
    {"op": "abort",  "txn": <id>}

Responses always carry ``ok``; failures carry ``error`` (a short code)
and ``detail``.  A rejected operation answers
``{"ok": false, "error": "aborted", "reason": ...}`` — the transaction is
already aborted server-side and the client should resubmit with a fresh
timestamp.
"""

from __future__ import annotations

import json
import socket
from typing import Any

from repro.errors import ProtocolError

__all__ = [
    "encode_message",
    "decode_message",
    "send_message",
    "recv_message",
    "LineReader",
]

#: Protect the server from absurd lines (a sane request is < 1 KiB).
MAX_LINE_BYTES = 1 << 20


def encode_message(message: dict[str, Any]) -> bytes:
    """Serialise one protocol message to a newline-terminated JSON line."""
    try:
        return (json.dumps(message, separators=(",", ":")) + "\n").encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"unencodable message {message!r}: {exc}") from exc


def decode_message(line: bytes) -> dict[str, Any]:
    """Parse one JSON line into a message dict."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed protocol line: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"protocol message must be a JSON object, got {type(message).__name__}"
        )
    return message


def send_message(sock: socket.socket, message: dict[str, Any]) -> None:
    sock.sendall(encode_message(message))


class LineReader:
    """Buffered newline-delimited reader over a socket."""

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._buffer = b""

    def read_line(self) -> bytes | None:
        """The next complete line (without newline), or None at EOF."""
        while b"\n" not in self._buffer:
            if len(self._buffer) > MAX_LINE_BYTES:
                raise ProtocolError("protocol line exceeds maximum length")
            chunk = self._sock.recv(65536)
            if not chunk:
                if self._buffer:
                    raise ProtocolError("connection closed mid-line")
                return None
            self._buffer += chunk
        line, self._buffer = self._buffer.split(b"\n", 1)
        return line


def recv_message(reader: LineReader) -> dict[str, Any] | None:
    """The next message from the reader, or None at a clean EOF."""
    line = reader.read_line()
    if line is None:
        return None
    return decode_message(line)
