"""The wire protocol of the networked prototype.

One JSON object per line over TCP (a faithful stand-in for the paper's
synchronous RPC library): the client sends a request, the server answers
with exactly one response before the client sends the next request.

Requests (``op`` selects the operation — the prototype's five basic
operations plus ``time`` for virtual clock synchronisation)::

    {"op": "time"}
    {"op": "begin", "kind": "query"|"update", "limit": <TIL or TEL>,
     "timestamp": [ticks, site, seq],
     "group_limits": {...}, "object_limits": {...}}
    {"op": "read",  "txn": <id>, "object": <oid>}
    {"op": "write", "txn": <id>, "object": <oid>, "value": <v>}
    {"op": "commit", "txn": <id>}
    {"op": "abort",  "txn": <id>}

Responses always carry ``ok``; failures carry ``error`` (a short code)
and ``detail``.  A rejected operation answers
``{"ok": false, "error": "aborted", "reason": ...}`` — the transaction is
already aborted server-side and the client should resubmit with a fresh
timestamp.
"""

from __future__ import annotations

import json
import math
import socket
from typing import Any

from repro.errors import ProtocolError

__all__ = [
    "encode_message",
    "encode_response",
    "decode_message",
    "send_message",
    "recv_message",
    "LineReader",
    "LineTooLong",
    "MAX_LINE_BYTES",
]

#: Protect the server from absurd lines.  A sane request is well under a
#: kilobyte, but ``begin`` may carry per-object limit maps, so the cap is
#: a generous 1 MiB; anything past it answers ``{"error": "too_large"}``
#: and the connection is closed.
MAX_LINE_BYTES = 1 << 20


class LineTooLong(ProtocolError):
    """A protocol line exceeded :data:`MAX_LINE_BYTES`.

    Distinguished from other :class:`~repro.errors.ProtocolError` cases so
    servers can answer a structured ``{"error": "too_large"}`` before
    disconnecting rather than a generic protocol failure.
    """


def encode_message(message: dict[str, Any]) -> bytes:
    """Serialise one protocol message to a newline-terminated JSON line."""
    try:
        return (json.dumps(message, separators=(",", ":")) + "\n").encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"unencodable message {message!r}: {exc}") from exc


def encode_response(response: dict[str, Any]) -> bytes:
    """:func:`encode_message` with fast paths for the hot response shapes.

    Read/begin/commit responses dominate server output; formatting them
    directly skips the generic JSON encoder.  Every fast path is
    byte-identical to ``encode_message`` (compact separators, insertion
    key order, ``repr`` floats — which is exactly what ``json.dumps``
    emits) and anything that does not match a known shape precisely falls
    through to the generic encoder.
    """
    if response.get("ok") is True:
        keys = tuple(response)
        if keys == ("ok", "value", "inconsistency", "esr_case", "id"):
            value = response["value"]
            inconsistency = response["inconsistency"]
            tag = response["id"]
            if (
                type(value) is float
                and type(inconsistency) is float
                and type(tag) is int
                and response["esr_case"] is None
                and math.isfinite(value)
                and math.isfinite(inconsistency)
            ):
                return (
                    b'{"ok":true,"value":%s,"inconsistency":%s,'
                    b'"esr_case":null,"id":%d}\n'
                    % (repr(value).encode(), repr(inconsistency).encode(), tag)
                )
        elif keys == ("ok", "value", "inconsistency", "esr_case"):
            value = response["value"]
            inconsistency = response["inconsistency"]
            if (
                type(value) is float
                and type(inconsistency) is float
                and response["esr_case"] is None
                and math.isfinite(value)
                and math.isfinite(inconsistency)
            ):
                return (
                    b'{"ok":true,"value":%s,"inconsistency":%s,'
                    b'"esr_case":null}\n'
                    % (repr(value).encode(), repr(inconsistency).encode())
                )
        elif keys == ("ok", "txn", "id"):
            txn = response["txn"]
            tag = response["id"]
            if type(txn) is int and type(tag) is int:
                return b'{"ok":true,"txn":%d,"id":%d}\n' % (txn, tag)
        elif keys == ("ok", "txn"):
            txn = response["txn"]
            if type(txn) is int:
                return b'{"ok":true,"txn":%d}\n' % txn
        elif keys == ("ok", "id"):
            tag = response["id"]
            if type(tag) is int:
                return b'{"ok":true,"id":%d}\n' % tag
        elif keys == ("ok",):
            return b'{"ok":true}\n'
    return encode_message(response)


def decode_message(line: bytes) -> dict[str, Any]:
    """Parse one JSON line into a message dict.

    The two hottest requests on the wire — ``read`` and ``commit`` as the
    reference clients format them — are matched byte-exactly and parsed
    without the JSON machinery; any other byte sequence (reordered keys,
    whitespace, extra fields) takes the general parser, so the accepted
    language is unchanged.
    """
    if line.startswith(b'{"op":"read","txn":') and line.endswith(b"}"):
        cut1 = line.find(b',"object":', 19)
        cut2 = line.find(b',"id":', cut1 + 10) if cut1 > 0 else -1
        if cut2 > 0:
            txn = line[19:cut1]
            obj = line[cut1 + 10 : cut2]
            tag = line[cut2 + 6 : -1]
            if txn.isdigit() and obj.isdigit() and tag.isdigit():
                return {
                    "op": "read",
                    "txn": int(txn),
                    "object": int(obj),
                    "id": int(tag),
                }
    elif line.startswith(b'{"op":"commit","txn":') and line.endswith(b"}"):
        cut1 = line.find(b',"id":', 21)
        if cut1 > 0:
            txn = line[21:cut1]
            tag = line[cut1 + 6 : -1]
            if txn.isdigit() and tag.isdigit():
                return {"op": "commit", "txn": int(txn), "id": int(tag)}
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed protocol line: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"protocol message must be a JSON object, got {type(message).__name__}"
        )
    return message


def send_message(sock: socket.socket, message: dict[str, Any]) -> None:
    sock.sendall(encode_response(message))


class LineReader:
    """Buffered newline-delimited reader over a socket."""

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._buffer = b""

    def read_line(self) -> bytes | None:
        """The next complete line (without newline), or None at EOF."""
        while b"\n" not in self._buffer:
            if len(self._buffer) > MAX_LINE_BYTES:
                raise LineTooLong(
                    f"protocol line exceeds {MAX_LINE_BYTES} bytes"
                )
            chunk = self._sock.recv(65536)
            if not chunk:
                if self._buffer:
                    raise ProtocolError("connection closed mid-line")
                return None
            self._buffer += chunk
        line, self._buffer = self._buffer.split(b"\n", 1)
        return line


def recv_message(reader: LineReader) -> dict[str, Any] | None:
    """The next message from the reader, or None at a clean EOF."""
    line = reader.read_line()
    if line is None:
        return None
    return decode_message(line)
