"""The wire protocol of the networked prototype.

The *base* codec is one JSON object per line over TCP (a faithful
stand-in for the paper's synchronous RPC library): the client sends a
request, the server answers with exactly one response before the client
sends the next request.

Requests (``op`` selects the operation — the prototype's five basic
operations plus ``time`` for virtual clock synchronisation)::

    {"op": "time"}
    {"op": "begin", "kind": "query"|"update", "limit": <TIL or TEL>,
     "timestamp": [ticks, site, seq],
     "group_limits": {...}, "object_limits": {...}}
    {"op": "read",  "txn": <id>, "object": <oid>}
    {"op": "write", "txn": <id>, "object": <oid>, "value": <v>}
    {"op": "commit", "txn": <id>}
    {"op": "abort",  "txn": <id>}

Responses always carry ``ok``; failures carry ``error`` (a short code)
and ``detail``.  A rejected operation answers
``{"ok": false, "error": "aborted", "reason": ...}`` — the transaction is
already aborted server-side and the client should resubmit with a fresh
timestamp.

Beside JSON lives a negotiated **binary codec** (``binary-1``):
length-prefixed frames with struct-packed fixed layouts for the hot
shapes (begin/read/write/commit/abort and their ok/txn/value responses)
and a tagged JSON-payload frame for the long tail (``time``, limit maps,
errors).  Every connection *starts* in JSON line mode; a client that
wants binary sends ``{"op": "hello", "codecs": ["binary-1"]}`` as its
first request and switches after the (JSON) response confirms the codec
— so JSON-only clients keep working byte-for-byte unchanged, and a
binary-capable client against an old server simply sees ``unknown-op``
and stays on JSON.  The codecs are exposed as a small registry
(:data:`CODECS`, :func:`negotiate_hello`), and each codec carries its
own canonical-read fast path for the servers' snapshot-cache inline
answers (:meth:`Codec.parse_canonical_read` /
:meth:`Codec.encode_read_outcome`) — the byte-level regex fast path that
used to live in the asyncio server is now just the JSON codec's
implementation of that hook.  The frame layouts are documented in
``docs/protocol.md``.
"""

from __future__ import annotations

import json
import math
import re
import socket
import struct
from typing import Any

from repro import perf
from repro.errors import ProtocolError

__all__ = [
    "encode_message",
    "encode_response",
    "decode_message",
    "send_message",
    "recv_message",
    "LineReader",
    "BinaryFrameReader",
    "LineTooLong",
    "MAX_LINE_BYTES",
    "MAX_FRAME_BYTES",
    "Codec",
    "JsonCodec",
    "BinaryCodec",
    "JSON_CODEC",
    "BINARY_CODEC",
    "CODECS",
    "SUPPORTED_CODECS",
    "negotiate_hello",
    "FRAME_BEGIN",
    "FRAME_READ",
    "FRAME_WRITE",
    "FRAME_COMMIT",
    "FRAME_ABORT",
    "FRAME_JSON",
    "FRAME_OK",
    "FRAME_OK_TXN",
    "FRAME_OK_VALUE",
    "FRAME_OK_WRITE",
]

#: Protect the server from absurd lines.  A sane request is well under a
#: kilobyte, but ``begin`` may carry per-object limit maps, so the cap is
#: a generous 1 MiB; anything past it answers ``{"error": "too_large"}``
#: and the connection is closed.
MAX_LINE_BYTES = 1 << 20

#: The same cap for one binary frame (length prefix + type + payload).
MAX_FRAME_BYTES = MAX_LINE_BYTES


class LineTooLong(ProtocolError):
    """A protocol line (or binary frame) exceeded the 1 MiB cap.

    Distinguished from other :class:`~repro.errors.ProtocolError` cases so
    servers can answer a structured ``{"error": "too_large"}`` before
    disconnecting rather than a generic protocol failure.
    """


def encode_message(message: dict[str, Any]) -> bytes:
    """Serialise one protocol message to a newline-terminated JSON line."""
    try:
        return (json.dumps(message, separators=(",", ":")) + "\n").encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"unencodable message {message!r}: {exc}") from exc


def encode_response(response: dict[str, Any]) -> bytes:
    """:func:`encode_message` with fast paths for the hot response shapes.

    Read/begin/commit responses dominate server output; formatting them
    directly skips the generic JSON encoder.  Every fast path is
    byte-identical to ``encode_message`` (compact separators, insertion
    key order, ``repr`` floats — which is exactly what ``json.dumps``
    emits) and anything that does not match a known shape precisely falls
    through to the generic encoder.
    """
    if response.get("ok") is True:
        keys = tuple(response)
        if keys == ("ok", "value", "inconsistency", "esr_case", "id"):
            value = response["value"]
            inconsistency = response["inconsistency"]
            tag = response["id"]
            if (
                type(value) is float
                and type(inconsistency) is float
                and type(tag) is int
                and response["esr_case"] is None
                and math.isfinite(value)
                and math.isfinite(inconsistency)
            ):
                return (
                    b'{"ok":true,"value":%s,"inconsistency":%s,'
                    b'"esr_case":null,"id":%d}\n'
                    % (repr(value).encode(), repr(inconsistency).encode(), tag)
                )
        elif keys == ("ok", "value", "inconsistency", "esr_case"):
            value = response["value"]
            inconsistency = response["inconsistency"]
            if (
                type(value) is float
                and type(inconsistency) is float
                and response["esr_case"] is None
                and math.isfinite(value)
                and math.isfinite(inconsistency)
            ):
                return (
                    b'{"ok":true,"value":%s,"inconsistency":%s,'
                    b'"esr_case":null}\n'
                    % (repr(value).encode(), repr(inconsistency).encode())
                )
        elif keys == ("ok", "txn", "id"):
            txn = response["txn"]
            tag = response["id"]
            if type(txn) is int and type(tag) is int:
                return b'{"ok":true,"txn":%d,"id":%d}\n' % (txn, tag)
        elif keys == ("ok", "txn"):
            txn = response["txn"]
            if type(txn) is int:
                return b'{"ok":true,"txn":%d}\n' % txn
        elif keys == ("ok", "id"):
            tag = response["id"]
            if type(tag) is int:
                return b'{"ok":true,"id":%d}\n' % tag
        elif keys == ("ok",):
            return b'{"ok":true}\n'
    return encode_message(response)


def decode_message(line: bytes) -> dict[str, Any]:
    """Parse one JSON line into a message dict.

    The two hottest requests on the wire — ``read`` and ``commit`` as the
    reference clients format them — are matched byte-exactly and parsed
    without the JSON machinery; any other byte sequence (reordered keys,
    whitespace, extra fields) takes the general parser, so the accepted
    language is unchanged.
    """
    if line.startswith(b'{"op":"read","txn":') and line.endswith(b"}"):
        cut1 = line.find(b',"object":', 19)
        cut2 = line.find(b',"id":', cut1 + 10) if cut1 > 0 else -1
        if cut2 > 0:
            txn = line[19:cut1]
            obj = line[cut1 + 10 : cut2]
            tag = line[cut2 + 6 : -1]
            if txn.isdigit() and obj.isdigit() and tag.isdigit():
                return {
                    "op": "read",
                    "txn": int(txn),
                    "object": int(obj),
                    "id": int(tag),
                }
    elif line.startswith(b'{"op":"commit","txn":') and line.endswith(b"}"):
        cut1 = line.find(b',"id":', 21)
        if cut1 > 0:
            txn = line[21:cut1]
            tag = line[cut1 + 6 : -1]
            if txn.isdigit() and tag.isdigit():
                return {"op": "commit", "txn": int(txn), "id": int(tag)}
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed protocol line: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"protocol message must be a JSON object, got {type(message).__name__}"
        )
    return message


def send_message(sock: socket.socket, message: dict[str, Any]) -> None:
    sock.sendall(encode_response(message))


class LineReader:
    """Buffered newline-delimited reader over a socket."""

    def __init__(self, sock: socket.socket, initial: bytes = b""):
        self._sock = sock
        self._buffer = initial

    @property
    def buffer(self) -> bytes:
        """Bytes received but not yet consumed (handed to the binary
        frame reader when a connection switches codecs mid-stream)."""
        return self._buffer

    def read_message(self) -> dict[str, Any] | None:
        """The next decoded message, or None at a clean EOF."""
        line = self.read_line()
        if line is None:
            return None
        return decode_message(line)

    def read_line(self) -> bytes | None:
        """The next complete line (without newline), or None at EOF."""
        while b"\n" not in self._buffer:
            if len(self._buffer) > MAX_LINE_BYTES:
                raise LineTooLong(
                    f"protocol line exceeds {MAX_LINE_BYTES} bytes"
                )
            chunk = self._sock.recv(65536)
            if not chunk:
                if self._buffer:
                    raise ProtocolError("connection closed mid-line")
                return None
            self._buffer += chunk
        line, self._buffer = self._buffer.split(b"\n", 1)
        return line


def recv_message(reader: LineReader) -> dict[str, Any] | None:
    """The next message from the reader, or None at a clean EOF."""
    line = reader.read_line()
    if line is None:
        return None
    return decode_message(line)


# -- the binary codec (``binary-1``) -------------------------------------------
#
# Frame = u32le size | u8 type | payload, where ``size`` counts the type
# byte plus the payload (so ``size >= 1``) and is capped at
# :data:`MAX_FRAME_BYTES`.  Fixed layouts are little-endian structs; the
# correlation ``id`` is always the *last* field, so load generators can
# pull it without decoding the rest.  Anything that does not fit a fixed
# layout rides a :data:`FRAME_JSON` frame whose payload is the message
# dict as compact UTF-8 JSON — same language as the line protocol, just
# length-prefixed.

FRAME_BEGIN = 0x01
FRAME_READ = 0x02
FRAME_WRITE = 0x03
FRAME_COMMIT = 0x04
FRAME_ABORT = 0x05
#: Long-tail frame, either direction: payload is one JSON message object.
FRAME_JSON = 0x0F
FRAME_OK = 0x81
FRAME_OK_TXN = 0x82
FRAME_OK_VALUE = 0x83
FRAME_OK_WRITE = 0x84

#: ``esr_case`` enum for the fixed response layouts (index = wire code).
#: An unknown case string falls back to the JSON frame.
ESR_CASES: tuple[str | None, ...] = (
    None,
    "late-read-committed",
    "read-uncommitted",
    "late-write",
)
_CASE_CODE = {case: code for code, case in enumerate(ESR_CASES)}

_U64_MAX = (1 << 64) - 1
_I32_MIN, _I32_MAX = -(1 << 31), (1 << 31) - 1

# Payload structs (after the type byte) ...
_ST_READ = struct.Struct("<QQQ")  # txn, object, id
_ST_WRITE = struct.Struct("<QQdQ")  # txn, object, value, id
_ST_TXN_ID = struct.Struct("<QQ")  # txn, id (commit/abort, and ok+txn)
_ST_BEGIN = struct.Struct("<BBddiiQ")  # kind, flags, limit, ticks, site, seq, id
_ST_ID = struct.Struct("<Q")  # id (bare ok)
_ST_VALUE = struct.Struct("<ddBQ")  # value, inconsistency, case, id
_ST_WROTE = struct.Struct("<dBQ")  # inconsistency, case, id
# ... and whole-frame packers (size + type + payload in one pack call).
_PK_READ = struct.Struct("<IBQQQ")
_PK_WRITE = struct.Struct("<IBQQdQ")
_PK_TXN_ID = struct.Struct("<IBQQ")
_PK_BEGIN = struct.Struct("<IBBBddiiQ")
_PK_ID = struct.Struct("<IBQ")
_PK_VALUE = struct.Struct("<IBddBQ")
_PK_WROTE = struct.Struct("<IBdBQ")

_BEGIN_HAS_TIMESTAMP = 0x01
_KIND_NAMES = ("query", "update")


def _is_u64(value: Any) -> bool:
    return type(value) is int and 0 <= value <= _U64_MAX


def _json_frame(message: dict[str, Any]) -> bytes:
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    return (
        (len(payload) + 1).to_bytes(4, "little")
        + bytes((FRAME_JSON,))
        + payload
    )


class Codec:
    """One wire codec: framing plus message encode/decode.

    The registry (:data:`CODECS`) maps negotiable codec names to codec
    objects; both servers, both clients and the bench load generator go
    through this interface, so a new codec is one class and one registry
    entry.  ``parse_canonical_read`` / ``encode_read_outcome`` are the
    snapshot-cache inline-answer fast path: given one raw frame, extract
    ``(txn, object, id)`` of a canonical read request without a full
    decode, and format a cache-hit response without a dict round trip.
    """

    name: str = "?"
    version: int = 0

    def encode_request(self, message: dict[str, Any]) -> bytes:
        raise NotImplementedError

    def encode_response(self, response: dict[str, Any]) -> bytes:
        raise NotImplementedError

    def make_reader(self, sock: socket.socket, initial: bytes = b""):
        raise NotImplementedError

    def parse_canonical_read(self, frame: bytes):
        """``(txn, object, id|None)`` for a canonical read frame, else None."""
        raise NotImplementedError

    def encode_read_outcome(self, outcome, rid) -> bytes:
        """A cache-hit read response for ``parse_canonical_read``'s id."""
        raise NotImplementedError


class JsonCodec(Codec):
    """The line-delimited JSON codec (the default wire)."""

    name = "json"
    version = 0

    def encode_request(self, message: dict[str, Any]) -> bytes:
        return encode_message(message)

    def encode_response(self, response: dict[str, Any]) -> bytes:
        return encode_response(response)

    def make_reader(self, sock: socket.socket, initial: bytes = b"") -> LineReader:
        return LineReader(sock, initial)

    # The exact read-request bytes every pipelining client emits.  A hit
    # skips ``json.loads`` *and* ``json.dumps`` for the whole round trip;
    # any other key order or extra key falls back to the generic decode.
    _READ_LINE = re.compile(
        rb'\{"op":"read","txn":(\d+),"object":(\d+)(?:,"id":(\d+))?\}'
    )

    def parse_canonical_read(self, frame: bytes):
        match = self._READ_LINE.fullmatch(frame)
        if match is None:
            return None
        rid = match.group(3)
        return (
            int(match.group(1)),
            int(match.group(2)),
            int(rid) if rid is not None else None,
        )

    def encode_read_outcome(self, outcome, rid) -> bytes:
        # ``%a`` of a finite float is its ``repr`` — exactly what
        # ``json.dumps`` emits, so this is byte-identical to the encoder.
        case = (
            b'"' + outcome.esr_case.encode("ascii") + b'"'
            if outcome.esr_case is not None
            else b"null"
        )
        if rid is None:
            return b'{"ok":true,"value":%a,"inconsistency":%a,"esr_case":%b}\n' % (
                outcome.value,
                outcome.inconsistency,
                case,
            )
        return (
            b'{"ok":true,"value":%a,"inconsistency":%a,"esr_case":%b,"id":%d}\n'
            % (outcome.value, outcome.inconsistency, case, rid)
        )


class BinaryCodec(Codec):
    """The length-prefixed binary codec (``binary-1``)."""

    name = "binary-1"
    version = 1

    # -- packers (also used raw by the bench load generator) -------------------

    @staticmethod
    def pack_read(txn: int, object_id: int, rid: int) -> bytes:
        return _PK_READ.pack(25, FRAME_READ, txn, object_id, rid)

    @staticmethod
    def pack_write(txn: int, object_id: int, value: float, rid: int) -> bytes:
        return _PK_WRITE.pack(33, FRAME_WRITE, txn, object_id, value, rid)

    @staticmethod
    def pack_commit(txn: int, rid: int) -> bytes:
        return _PK_TXN_ID.pack(17, FRAME_COMMIT, txn, rid)

    @staticmethod
    def pack_abort(txn: int, rid: int) -> bytes:
        return _PK_TXN_ID.pack(17, FRAME_ABORT, txn, rid)

    @staticmethod
    def pack_begin(
        kind: int,
        limit: float,
        rid: int,
        timestamp: tuple[float, int, int] | None = None,
    ) -> bytes:
        if timestamp is None:
            return _PK_BEGIN.pack(35, FRAME_BEGIN, kind, 0, limit, 0.0, 0, 0, rid)
        ticks, site, seq = timestamp
        return _PK_BEGIN.pack(
            35, FRAME_BEGIN, kind, _BEGIN_HAS_TIMESTAMP, limit, ticks, site, seq, rid
        )

    # -- message encode --------------------------------------------------------

    def encode_request(self, message: dict[str, Any]) -> bytes:
        perf.counters.net_codec_binary_frames_encoded += 1
        op = message.get("op")
        rid = message.get("id")
        if _is_u64(rid):
            try:
                if op == "read":
                    txn, obj = message["txn"], message["object"]
                    if _is_u64(txn) and _is_u64(obj):
                        return self.pack_read(txn, obj, rid)
                elif op == "write":
                    txn, obj = message["txn"], message["object"]
                    value = message["value"]
                    if (
                        _is_u64(txn)
                        and _is_u64(obj)
                        and type(value) in (int, float)
                    ):
                        return self.pack_write(txn, obj, value, rid)
                elif op == "commit":
                    txn = message["txn"]
                    if _is_u64(txn):
                        return self.pack_commit(txn, rid)
                elif op == "abort":
                    txn = message["txn"]
                    if _is_u64(txn):
                        return self.pack_abort(txn, rid)
                elif op == "begin":
                    frame = self._try_pack_begin(message, rid)
                    if frame is not None:
                        return frame
            except KeyError:
                pass
        perf.counters.net_codec_json_fallbacks += 1
        return _json_frame(message)

    @staticmethod
    def _try_pack_begin(message: dict[str, Any], rid: int) -> bytes | None:
        if message.get("group_limits") or message.get("object_limits"):
            return None
        extra = set(message) - {
            "op", "kind", "limit", "timestamp", "group_limits",
            "object_limits", "id",
        }
        if extra:
            return None
        try:
            kind = _KIND_NAMES.index(message["kind"])
        except (ValueError, TypeError, KeyError):
            return None
        limit = message.get("limit", 0.0)
        if type(limit) not in (int, float):
            return None
        timestamp = message.get("timestamp")
        if timestamp is None:
            return BinaryCodec.pack_begin(kind, limit, rid)
        if (
            len(timestamp) == 3
            and type(timestamp[0]) in (int, float)
            and math.isfinite(timestamp[0])
            and type(timestamp[1]) is int
            and _I32_MIN <= timestamp[1] <= _I32_MAX
            and type(timestamp[2]) is int
            and _I32_MIN <= timestamp[2] <= _I32_MAX
        ):
            return BinaryCodec.pack_begin(
                kind, limit, rid, (timestamp[0], timestamp[1], timestamp[2])
            )
        return None

    def encode_response(self, response: dict[str, Any]) -> bytes:
        perf.counters.net_codec_binary_frames_encoded += 1
        if response.get("ok") is True:
            keys = tuple(response)
            if keys == ("ok", "value", "inconsistency", "esr_case", "id"):
                case = _CASE_CODE.get(response["esr_case"], -1)
                rid = response["id"]
                if case >= 0 and _is_u64(rid):
                    return _PK_VALUE.pack(
                        26,
                        FRAME_OK_VALUE,
                        response["value"],
                        response["inconsistency"],
                        case,
                        rid,
                    )
            elif keys == ("ok", "inconsistency", "esr_case", "id"):
                case = _CASE_CODE.get(response["esr_case"], -1)
                rid = response["id"]
                if case >= 0 and _is_u64(rid):
                    return _PK_WROTE.pack(
                        18, FRAME_OK_WRITE, response["inconsistency"], case, rid
                    )
            elif keys == ("ok", "txn", "id"):
                txn, rid = response["txn"], response["id"]
                if _is_u64(txn) and _is_u64(rid):
                    return _PK_TXN_ID.pack(17, FRAME_OK_TXN, txn, rid)
            elif keys == ("ok", "id"):
                rid = response["id"]
                if _is_u64(rid):
                    return _PK_ID.pack(9, FRAME_OK, rid)
        perf.counters.net_codec_json_fallbacks += 1
        return _json_frame(response)

    # -- message decode --------------------------------------------------------

    def decode(self, frame: bytes) -> dict[str, Any]:
        """One frame body (type byte + payload) to its message dict."""
        perf.counters.net_codec_binary_frames_decoded += 1
        if not frame:
            raise ProtocolError("empty binary frame")
        kind = frame[0]
        size = len(frame) - 1
        if kind == FRAME_READ:
            if size != _ST_READ.size:
                raise ProtocolError(f"read frame payload must be 24 bytes, got {size}")
            txn, obj, rid = _ST_READ.unpack_from(frame, 1)
            return {"op": "read", "txn": txn, "object": obj, "id": rid}
        if kind == FRAME_WRITE:
            if size != _ST_WRITE.size:
                raise ProtocolError(f"write frame payload must be 32 bytes, got {size}")
            txn, obj, value, rid = _ST_WRITE.unpack_from(frame, 1)
            return {"op": "write", "txn": txn, "object": obj, "value": value, "id": rid}
        if kind in (FRAME_COMMIT, FRAME_ABORT):
            if size != _ST_TXN_ID.size:
                raise ProtocolError(
                    f"commit/abort frame payload must be 16 bytes, got {size}"
                )
            txn, rid = _ST_TXN_ID.unpack_from(frame, 1)
            op = "commit" if kind == FRAME_COMMIT else "abort"
            return {"op": op, "txn": txn, "id": rid}
        if kind == FRAME_BEGIN:
            if size != _ST_BEGIN.size:
                raise ProtocolError(f"begin frame payload must be 34 bytes, got {size}")
            k, flags, limit, ticks, site, seq, rid = _ST_BEGIN.unpack_from(frame, 1)
            if k >= len(_KIND_NAMES):
                raise ProtocolError(f"begin frame has unknown kind {k}")
            message: dict[str, Any] = {
                "op": "begin",
                "kind": _KIND_NAMES[k],
                "limit": limit,
                "id": rid,
            }
            if flags & _BEGIN_HAS_TIMESTAMP:
                message["timestamp"] = [ticks, site, seq]
            return message
        if kind == FRAME_OK:
            if size != _ST_ID.size:
                raise ProtocolError(f"ok frame payload must be 8 bytes, got {size}")
            (rid,) = _ST_ID.unpack_from(frame, 1)
            return {"ok": True, "id": rid}
        if kind == FRAME_OK_TXN:
            if size != _ST_TXN_ID.size:
                raise ProtocolError(f"ok+txn frame payload must be 16 bytes, got {size}")
            txn, rid = _ST_TXN_ID.unpack_from(frame, 1)
            return {"ok": True, "txn": txn, "id": rid}
        if kind == FRAME_OK_VALUE:
            if size != _ST_VALUE.size:
                raise ProtocolError(f"value frame payload must be 25 bytes, got {size}")
            value, inconsistency, case, rid = _ST_VALUE.unpack_from(frame, 1)
            if case >= len(ESR_CASES):
                raise ProtocolError(f"value frame has unknown esr case {case}")
            return {
                "ok": True,
                "value": value,
                "inconsistency": inconsistency,
                "esr_case": ESR_CASES[case],
                "id": rid,
            }
        if kind == FRAME_OK_WRITE:
            if size != _ST_WROTE.size:
                raise ProtocolError(f"write-ok frame payload must be 17 bytes, got {size}")
            inconsistency, case, rid = _ST_WROTE.unpack_from(frame, 1)
            if case >= len(ESR_CASES):
                raise ProtocolError(f"write-ok frame has unknown esr case {case}")
            return {
                "ok": True,
                "inconsistency": inconsistency,
                "esr_case": ESR_CASES[case],
                "id": rid,
            }
        if kind == FRAME_JSON:
            perf.counters.net_codec_json_fallbacks += 1
            try:
                message = json.loads(frame[1:].decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ProtocolError(f"malformed JSON frame payload: {exc}") from exc
            if not isinstance(message, dict):
                raise ProtocolError(
                    "JSON frame payload must be an object, got "
                    f"{type(message).__name__}"
                )
            return message
        raise ProtocolError(f"unknown binary frame type 0x{kind:02x}")

    def make_reader(
        self, sock: socket.socket, initial: bytes = b""
    ) -> "BinaryFrameReader":
        return BinaryFrameReader(self, sock, initial)

    def parse_canonical_read(self, frame: bytes):
        if len(frame) == 25 and frame[0] == FRAME_READ:
            return _ST_READ.unpack_from(frame, 1)
        return None

    def encode_read_outcome(self, outcome, rid) -> bytes:
        case = _CASE_CODE.get(outcome.esr_case, -1)
        if case >= 0 and _is_u64(rid):
            perf.counters.net_codec_binary_frames_encoded += 1
            return _PK_VALUE.pack(
                26, FRAME_OK_VALUE, outcome.value, outcome.inconsistency, case, rid
            )
        response: dict[str, Any] = {
            "ok": True,
            "value": outcome.value,
            "inconsistency": outcome.inconsistency,
            "esr_case": outcome.esr_case,
        }
        if rid is not None:
            response["id"] = rid
        return self.encode_response(response)


class BinaryFrameReader:
    """Buffered length-prefixed frame reader over a socket."""

    def __init__(self, codec: BinaryCodec, sock: socket.socket, initial: bytes = b""):
        self._codec = codec
        self._sock = sock
        self._buffer = initial

    @property
    def buffer(self) -> bytes:
        return self._buffer

    def read_message(self) -> dict[str, Any] | None:
        """The next decoded message, or None at a clean EOF."""
        frame = self.read_frame()
        if frame is None:
            return None
        return self._codec.decode(frame)

    def read_frame(self) -> bytes | None:
        """The next frame body (type + payload), or None at EOF."""
        while True:
            buffered = len(self._buffer)
            if buffered >= 4:
                size = int.from_bytes(self._buffer[:4], "little")
                if size < 1 or size > MAX_FRAME_BYTES:
                    raise LineTooLong(
                        f"binary frame of {size} bytes exceeds "
                        f"{MAX_FRAME_BYTES} bytes"
                    )
                if buffered >= 4 + size:
                    frame = self._buffer[4 : 4 + size]
                    self._buffer = self._buffer[4 + size :]
                    return frame
            chunk = self._sock.recv(65536)
            if not chunk:
                if self._buffer:
                    raise ProtocolError("connection closed mid-frame")
                return None
            self._buffer += chunk


JSON_CODEC = JsonCodec()
BINARY_CODEC = BinaryCodec()

#: The codec registry: negotiable name -> codec singleton.
CODECS: dict[str, Codec] = {
    JSON_CODEC.name: JSON_CODEC,
    BINARY_CODEC.name: BINARY_CODEC,
}

#: Codecs a stock server offers, in preference order.
SUPPORTED_CODECS = (BINARY_CODEC.name, JSON_CODEC.name)


def negotiate_hello(
    message: dict[str, Any],
    supported: tuple[str, ...] = SUPPORTED_CODECS,
) -> tuple[Codec, dict[str, Any]]:
    """Answer one ``hello`` request; returns ``(chosen codec, response)``.

    The client's ``codecs`` list is walked in *client* preference order;
    the first name the server supports wins.  When nothing matches (or
    the list is missing/malformed) the connection stays on JSON and the
    downgrade is counted — the client keeps working either way.
    """
    requested = message.get("codecs")
    if not isinstance(requested, (list, tuple)):
        requested = []
    chosen: Codec = JSON_CODEC
    for name in requested:
        if isinstance(name, str) and name in supported and name in CODECS:
            chosen = CODECS[name]
            break
    if chosen is JSON_CODEC and any(
        name != JSON_CODEC.name for name in requested
    ):
        perf.counters.net_codec_negotiation_downgrades += 1
    return chosen, {
        "ok": True,
        "codec": chosen.name,
        "version": chosen.version,
    }
