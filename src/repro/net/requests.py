"""Runtime-agnostic request handling shared by both network servers.

The threaded server (:mod:`repro.net.server`) and the asyncio server
(:mod:`repro.net.aioserver`) speak the identical wire protocol, enforced
by building every response through this module.  What differs between
them is *waiting*: the engine answers
:class:`~repro.engine.results.MustWait` synchronously, and each runtime
parks the blocked operation its own way (a ``threading.Event`` on a
worker thread, an ``asyncio.Event`` on the loop).  So the split is:

* :func:`submit_request` — parse one request, run it against any
  :class:`~repro.engine.api.Engine`, and return either a complete
  response dict or a :class:`NeedsWait` marker;
* :func:`retry_operation` — re-run a parked operation after its blocker
  completed (again a response or another :class:`NeedsWait`);
* :func:`abort_on_timeout` — give up on a parked operation whose blocker
  never finished.

Callers must serialise all three against the engine (the threaded
server's mutex, or the asyncio server's single-threaded loop) — unless
the engine declares ``thread_safe`` (the sharded composite), which takes
its own per-shard locks internally.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

from repro.core.bounds import TransactionBounds
from repro.engine.api import Engine
from repro.engine.results import Granted, MustWait, Rejected
from repro.engine.timestamps import Timestamp
from repro.engine.transactions import TransactionState
from repro.errors import InvalidOperation, UnknownObjectError

__all__ = [
    "NeedsWait",
    "submit_request",
    "submit_batch",
    "retry_operation",
    "abort_on_timeout",
    "attach_id",
    "try_cached_read",
]


@dataclass
class NeedsWait:
    """A read/write that must park until ``blocking_transaction`` finishes."""

    txn: TransactionState
    op: str  # "read" | "write"
    object_id: int
    value: float | None
    blocking_transaction: int


def attach_id(response: dict[str, Any], message: dict[str, Any]) -> dict[str, Any]:
    """Echo the request's correlation ``id`` (if any) onto the response.

    Pipelining clients tag requests with an ``id`` and match responses by
    it; requests without one get their responses untagged, which keeps the
    one-at-a-time protocol byte-identical to the pre-pipelining wire.
    Mutates in place — every response dict is freshly built per request.
    """
    if "id" in message:
        response["id"] = message["id"]
    return response


def try_cached_read(
    manager: Engine,
    message: dict[str, Any],
    sessions: dict[int, TransactionState],
) -> dict[str, Any] | None:
    """Serve a read from the snapshot cache, bypassing the engine path.

    Returns a complete response dict on a cache hit, or ``None`` when the
    request is not a cacheable read (wrong op, unknown transaction,
    malformed object id) or the cache declined (unpublished object, bound
    does not fit, read-your-writes) — the caller then falls through to
    the normal :func:`submit_request` path, which re-executes the read
    under the engine critical section.

    The hit path never mutates the live database and never aborts, so —
    unlike :func:`submit_request` — callers may invoke it *outside* the
    engine critical section, provided operations of one transaction stay
    ordered (both servers already serialise per connection).
    """
    if manager.snapshot is None or message.get("op") != "read":
        return None
    txn = sessions.get(message.get("txn", -1))
    if txn is None:
        return None
    try:
        object_id = int(message["object"])
    except (KeyError, TypeError, ValueError):
        return None
    outcome = manager.read_cached(txn, object_id)
    if outcome is None:
        return None
    return {
        "ok": True,
        "value": outcome.value,
        "inconsistency": outcome.inconsistency,
        "esr_case": outcome.esr_case,
    }


def submit_request(
    manager: Engine,
    message: dict[str, Any],
    sessions: dict[int, TransactionState],
) -> dict[str, Any] | NeedsWait:
    """Execute one request; never blocks (waits surface as NeedsWait)."""
    op = message.get("op")
    try:
        if op in ("read", "write", "commit", "abort"):
            txn = sessions.get(message.get("txn", -1))
            if txn is None:
                return {
                    "ok": False,
                    "error": "unknown-transaction",
                    "detail": f"no transaction {message.get('txn')!r} "
                    "on this connection",
                }
            if op == "read":
                return _resolve(
                    manager,
                    NeedsWait(txn, "read", int(message["object"]), None, -1),
                )
            if op == "write":
                return _resolve(
                    manager,
                    NeedsWait(
                        txn,
                        "write",
                        int(message["object"]),
                        float(message["value"]),
                        -1,
                    ),
                )
            if op == "commit":
                manager.commit(txn)
                sessions.pop(txn.transaction_id, None)
                return {"ok": True}
            manager.abort(txn)
            sessions.pop(txn.transaction_id, None)
            return {"ok": True}
        if op == "begin":
            return _do_begin(manager, message, sessions)
        if op == "time":
            return {"ok": True, "time": time.time()}
        return {
            "ok": False,
            "error": "unknown-op",
            "detail": f"unknown operation {op!r}",
        }
    except (InvalidOperation, UnknownObjectError) as exc:
        return {"ok": False, "error": "invalid", "detail": str(exc)}
    except (KeyError, TypeError, ValueError) as exc:
        return {"ok": False, "error": "bad-request", "detail": str(exc)}


def submit_batch(
    manager: Engine,
    messages: list[dict[str, Any]],
    sessions: dict[int, TransactionState],
) -> list[dict[str, Any] | NeedsWait]:
    """Execute several requests of one connection, in order.

    The asyncio server's off-loop dispatch hands a whole drained tick's
    worth of one connection's messages to the executor lane in a single
    hop, so the per-submission thread handoff amortises across the
    group; a process-sharded engine underneath additionally coalesces
    the group's shard RPCs into shared batch frames.  Semantics are
    exactly ``[submit_request(m) for m in messages]`` — one reply per
    message, order preserved, waits surfacing as :class:`NeedsWait`.
    """
    return [submit_request(manager, m, sessions) for m in messages]


def retry_operation(
    manager: Engine, pending: NeedsWait
) -> dict[str, Any] | NeedsWait:
    """Re-run a parked operation once its blocker has completed."""
    try:
        return _resolve(manager, pending)
    except (InvalidOperation, UnknownObjectError) as exc:
        return {"ok": False, "error": "invalid", "detail": str(exc)}


def abort_on_timeout(
    manager: Engine, pending: NeedsWait
) -> dict[str, Any]:
    """Abort a parked operation whose blocker never finished."""
    manager.abort(pending.txn, "wait-timeout")
    return {"ok": False, "error": "aborted", "reason": "wait-timeout"}


def _resolve(
    manager: Engine, pending: NeedsWait
) -> dict[str, Any] | NeedsWait:
    txn = pending.txn
    if pending.op == "read":
        outcome = manager.read(txn, pending.object_id)
    else:
        outcome = manager.write(txn, pending.object_id, pending.value)
    if isinstance(outcome, MustWait):
        pending.blocking_transaction = outcome.blocking_transaction
        return pending
    if isinstance(outcome, Granted):
        if pending.op == "read":
            return {
                "ok": True,
                "value": outcome.value,
                "inconsistency": outcome.inconsistency,
                "esr_case": outcome.esr_case,
            }
        return {
            "ok": True,
            "inconsistency": outcome.inconsistency,
            "esr_case": outcome.esr_case,
        }
    assert isinstance(outcome, Rejected)
    return {
        "ok": False,
        "error": "aborted",
        "reason": outcome.reason,
        "detail": outcome.detail,
    }


def _do_begin(
    manager: Engine,
    message: dict[str, Any],
    sessions: dict[int, TransactionState],
) -> dict[str, Any]:
    kind = message["kind"]
    limit = float(message.get("limit", 0.0))
    if kind == "query":
        bounds = TransactionBounds(import_limit=limit)
    else:
        bounds = TransactionBounds(export_limit=limit)
    raw_ts = message.get("timestamp")
    timestamp = Timestamp(*raw_ts) if raw_ts is not None else None
    raw_groups = message.get("group_limits")
    group_limits = (
        {str(k): float(v) for k, v in raw_groups.items()} if raw_groups else {}
    )
    raw_objects = message.get("object_limits")
    object_limits = (
        {int(k): float(v) for k, v in raw_objects.items()} if raw_objects else {}
    )
    txn = manager.begin(
        kind,
        bounds,
        timestamp=timestamp,
        group_limits=group_limits,
        object_limits=object_limits,
    )
    sessions[txn.transaction_id] = txn
    return {"ok": True, "txn": txn.transaction_id}
