"""The networked prototype: a threaded TCP server and its client library."""

from repro.net.client import RemoteConnection, RemoteTransaction
from repro.net.clock import VirtualClock, synchronized_generator
from repro.net.protocol import (
    LineReader,
    decode_message,
    encode_message,
    recv_message,
    send_message,
)
from repro.net.server import TransactionServer, serve_forever

__all__ = [
    "RemoteConnection",
    "RemoteTransaction",
    "VirtualClock",
    "synchronized_generator",
    "LineReader",
    "decode_message",
    "encode_message",
    "recv_message",
    "send_message",
    "TransactionServer",
    "serve_forever",
]
