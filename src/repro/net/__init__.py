"""The networked prototype: threaded and asyncio TCP servers + clients.

Two servers, one wire protocol: :class:`TransactionServer` is the
thread-per-connection fidelity baseline from the paper;
:class:`AsyncTransactionServer` is the high-throughput asyncio layer
(pipelining, batched dispatch, write coalescing — see
``docs/networking.md``).
"""

from repro.net.aioclient import AsyncRemoteConnection, AsyncRemoteTransaction, connect
from repro.net.aioserver import AsyncTransactionServer, serve_in_thread
from repro.net.client import RemoteConnection, RemoteTransaction
from repro.net.clock import VirtualClock, synchronized_generator
from repro.net.protocol import (
    LineReader,
    decode_message,
    encode_message,
    recv_message,
    send_message,
)
from repro.net.server import TransactionServer, serve_forever

__all__ = [
    "AsyncRemoteConnection",
    "AsyncRemoteTransaction",
    "AsyncTransactionServer",
    "connect",
    "serve_in_thread",
    "RemoteConnection",
    "RemoteTransaction",
    "VirtualClock",
    "synchronized_generator",
    "LineReader",
    "decode_message",
    "encode_message",
    "recv_message",
    "send_message",
    "TransactionServer",
    "serve_forever",
]
