"""The high-throughput asyncio transaction server.

Same engine, same wire protocol as the threaded server
(:mod:`repro.net.server`), different serving architecture.  The engine is
single-threaded by design; here the event loop *is* the critical section
— every :class:`~repro.engine.manager.TransactionManager` call happens on
the loop thread, so the threaded server's global mutex disappears
entirely.  Three throughput levers ride on top:

**Pipelining.**  Clients may keep many requests in flight per connection.
Requests carry a correlation ``id`` which the response echoes; responses
for *independent* transactions may return out of order (a parked
strict-ordering wait delays only its own response).  Requests without an
``id`` are answered untagged, so one-at-a-time clients — including the
existing :class:`~repro.net.client.RemoteConnection` — work unchanged.

**Batched dispatch.**  The transport layer is a callback-based
:class:`asyncio.Protocol` (no stream-reader coroutine per connection):
``data_received`` splits a chunk into requests and appends them to one
shared queue, and a single dispatcher task drains the *entire* queue per
loop tick, running it against the manager in one pass — per-request
overhead is amortised across the batch.  Strict-ordering waits become
``asyncio.Event`` subscriptions on the wait registry (no blocked
threads): a parked operation lives in its own small task that retries
when the blocker completes and aborts on ``wait_timeout``.

**Write coalescing and backpressure.**  Responses are buffered per
connection and flushed once per batch — many responses, one syscall.
Backpressure is two-sided: a connection that exceeds its in-flight
window (``max_inflight`` requests awaiting responses) has its socket
reads paused until responses drain, and a slow *reader* that backs up
the transport write buffer (``pause_writing``) causes responses to be
held in the connection's buffer — itself bounded by the window — until
the transport drains.

**Off-loop shard executors** (``shards > 1``).  With a sharded engine
(:class:`~repro.engine.sharded.ShardedEngine`) the loop is no longer the
critical section — the engine takes its own per-shard locks.  The
dispatcher then stops running engine calls inline: each request is handed
to one of ``shards`` single-thread executor *lanes*.  A connection is
pinned to one lane (round-robin), so a pipelined client's responses keep
request order — the same wire contract as the threaded server — while
different connections execute engine calls concurrently across lanes.
Completion callbacks marshal responses back onto the loop, which
remains the only thread that touches transports and buffers.  Wait
events are loop-affine but may be fired from executor threads, so the
sharded mode wraps them in :class:`_LoopEvent` (``set`` via
``call_soon_threadsafe``).

**Codec negotiation.**  Every connection starts in JSON line mode; a
``hello`` request may switch it to the length-prefixed binary codec
(:mod:`repro.net.protocol`), after which ``data_received`` parses frames
instead of lines — including a binary edition of the snapshot-cache
inline fast path that never builds a dict on a cache hit.  The switch is
lossless mid-chunk (binary bytes may contain ``0x0A``, so the line split
is undone exactly before the frame parser takes over).

**uvloop (optional).**  :class:`AsyncServerThread` runs its loop under
uvloop when the optional extra is importable (``pip install
repro[speed]``), falling back to stock asyncio silently otherwise;
``loop_implementation`` reports which one actually ran.

Observability: ``repro.perf.counters`` tallies requests batched, batches
drained, coalesced flushes, backpressure stalls, and ``net_codec_*``
frame/negotiation counts.
"""

from __future__ import annotations

import asyncio
import functools
import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from repro import perf
from repro.engine.api import Engine, create_engine
from repro.engine.database import Database
from repro.engine.reasons import REASON_CLIENT_DISCONNECTED
from repro.errors import ProtocolError
from repro.net.protocol import (
    BINARY_CODEC,
    JSON_CODEC,
    MAX_FRAME_BYTES,
    MAX_LINE_BYTES,
    SUPPORTED_CODECS,
    Codec,
    decode_message,
    negotiate_hello,
)
from repro.net.requests import (
    NeedsWait,
    abort_on_timeout,
    attach_id,
    retry_operation,
    submit_batch,
    submit_request,
    try_cached_read,
)
from repro.net.server import WAIT_TIMEOUT_SECONDS

try:  # optional accelerator: a drop-in libuv event loop
    import uvloop as _uvloop
except ImportError:  # pragma: no cover - environment-dependent
    _uvloop = None

__all__ = [
    "AsyncTransactionServer",
    "AsyncServerThread",
    "serve_in_thread",
    "uvloop_available",
]

#: Per-connection cap on requests accepted but not yet answered.
DEFAULT_MAX_INFLIGHT = 128


def uvloop_available() -> bool:
    """Whether the optional ``uvloop`` extra is importable here."""
    return _uvloop is not None


class _Failure:
    """A framing-level failure, queued so it answers in request order."""

    __slots__ = ("error", "detail")

    def __init__(self, error: str, detail: str):
        self.error = error
        self.detail = detail


class _LoopEvent:
    """An awaitable event whose ``set()`` is safe from any thread.

    The sharded engine fires wait-registry callbacks from whichever
    executor thread completes the blocking transaction; a plain
    ``asyncio.Event.set`` from a foreign thread races the loop.  This
    wrapper marshals the set through ``call_soon_threadsafe`` while
    ``wait()`` stays a normal loop-side await.
    """

    __slots__ = ("_event", "_loop")

    def __init__(self, loop: asyncio.AbstractEventLoop):
        self._event = asyncio.Event()
        self._loop = loop

    def set(self) -> None:
        self._loop.call_soon_threadsafe(self._event.set)

    async def wait(self) -> None:
        await self._event.wait()


class _Connection(asyncio.Protocol):
    """One client connection: line framing, sessions, response buffer."""

    __slots__ = (
        "server",
        "transport",
        "buffer",
        "sessions",
        "out",
        "inflight",
        "pending_ops",
        "read_paused",
        "write_paused",
        "flush_pending",
        "failed",
        "closing",
        "closed",
        "lane",
        "codec",
        "binary",
    )

    def __init__(self, server: "AsyncTransactionServer"):
        self.server = server
        self.transport: asyncio.Transport | None = None
        self.buffer = b""
        #: Wire codec in effect (starts JSON; ``hello`` may switch it).
        self.codec: Codec = JSON_CODEC
        self.binary = False  # codec is length-prefixed, not line-framed
        self.sessions: dict[int, Any] = {}
        self.out: list[bytes] = []
        self.inflight = 0
        #: Per-transaction count of requests queued for dispatch but not
        #: yet answered.  The inline cache fast path must not answer a
        #: read while an earlier operation of the *same* transaction is
        #: still queued — that would reorder the transaction's own
        #: execution (e.g. a read overtaking its own pending write).
        self.pending_ops: dict[int, int] = {}
        self.read_paused = False
        self.write_paused = False
        self.flush_pending = False
        self.failed = False  # framing failure queued; ignore further input
        self.closing = False  # error reply buffered; close once flushed
        self.closed = False
        #: Off-loop shard-executor mode: the FIFO lane serving this
        #: connection's engine calls (assigned round-robin on first use).
        self.lane: ThreadPoolExecutor | None = None

    # -- transport callbacks ---------------------------------------------------

    def connection_made(self, transport: asyncio.BaseTransport) -> None:
        self.transport = transport
        self.server._connections.add(self)

    def connection_lost(self, exc: Exception | None) -> None:
        self.closed = True
        self.server._connections.discard(self)
        self.server._abandon(self)

    def pause_writing(self) -> None:
        # Slow reader: hold responses in self.out (bounded by the
        # in-flight window) instead of growing the transport buffer.
        self.write_paused = True

    def resume_writing(self) -> None:
        self.write_paused = False
        self.flush_now()

    def eof_received(self) -> bool | None:
        if self.buffer and not self.failed:
            self.fail(
                "protocol",
                "connection closed mid-frame"
                if self.binary
                else "connection closed mid-line",
            )
        # Keep the transport open while an error response is still in
        # flight through the dispatch queue; flush_now() closes it.
        return self.failed

    def data_received(self, data: bytes) -> None:
        if self.failed:
            return
        if self.binary:
            self._binary_data(data)
        else:
            self._line_data(data)

    def _line_data(self, data: bytes) -> None:
        buffer = self.buffer + data
        if b"\n" not in data:
            if len(buffer) > MAX_LINE_BYTES:
                self.buffer = b""
                self.fail(
                    "too_large",
                    f"protocol line exceeds {MAX_LINE_BYTES} bytes",
                )
                return
            self.buffer = buffer
            return
        lines = buffer.split(b"\n")
        self.buffer = buffer = lines.pop()
        if len(buffer) > MAX_LINE_BYTES:
            self.fail(
                "too_large", f"protocol line exceeds {MAX_LINE_BYTES} bytes"
            )
            return
        server = self.server
        queue = server._queue
        manager = server.manager
        cache = manager.snapshot is not None
        pending_ops = self.pending_ops
        codec = self.codec
        queued = 0
        answered_inline = False
        for index, line in enumerate(lines):
            if len(line) > MAX_LINE_BYTES:
                self.fail(
                    "too_large",
                    f"protocol line exceeds {MAX_LINE_BYTES} bytes",
                )
                return
            if cache:
                # Inline fast path: answer a bounded-staleness read right
                # here, before batched dispatch — zero queue, zero tick,
                # and for the canonical wire shape zero JSON (the line is
                # parsed and the response formatted at the byte level).
                # Only when no earlier op of the same transaction is
                # still queued (per-transaction order must hold; ops of
                # *other* transactions may be overtaken, which pipelining
                # already allows).  Inline answers never count against
                # the in-flight window.
                parsed = codec.parse_canonical_read(line)
                if parsed is not None:
                    txn_id, object_id, rid = parsed
                    if not pending_ops.get(txn_id, 0):
                        txn = self.sessions.get(txn_id)
                        outcome = (
                            manager.read_cached(txn, object_id)
                            if txn is not None
                            else None
                        )
                        if outcome is not None:
                            self.out.append(
                                codec.encode_read_outcome(outcome, rid)
                            )
                            answered_inline = True
                            continue
            try:
                message = decode_message(line)
            except ProtocolError as exc:
                self.fail("protocol", str(exc))
                return
            if server.codecs is not None and message.get("op") == "hello":
                # Negotiate, answer on the current (JSON) codec, then —
                # on a switch — hand the remaining bytes of this chunk
                # to the binary parser losslessly: binary frames may
                # contain 0x0A, so the split must be undone exactly.
                chosen, response = negotiate_hello(message, server.codecs)
                self.out.append(codec.encode_response(attach_id(response, message)))
                answered_inline = True
                if chosen is not codec:
                    self.codec = chosen
                    self.binary = True
                    rest = b"\n".join(lines[index + 1 :] + [self.buffer])
                    self.buffer = b""
                    self._finish_ingest(queued, answered_inline)
                    if rest:
                        self._binary_data(rest)
                    return
                continue
            if cache and not pending_ops.get(message.get("txn", -1), 0):
                # Same fast path for read messages in any other wire
                # shape (different key order, extra keys): decoded
                # normally, still answered before dispatch.
                response = try_cached_read(manager, message, self.sessions)
                if response is not None:
                    self.out.append(
                        codec.encode_response(attach_id(response, message))
                    )
                    answered_inline = True
                    continue
            txn = message.get("txn")
            if txn is not None:
                pending_ops[txn] = pending_ops.get(txn, 0) + 1
            queue.append((self, message))
            queued += 1
        self._finish_ingest(queued, answered_inline)

    def _binary_data(self, data: bytes) -> None:
        buffer = self.buffer + data
        server = self.server
        queue = server._queue
        manager = server.manager
        cache = manager.snapshot is not None
        pending_ops = self.pending_ops
        codec = self.codec
        counters = perf.counters
        queued = 0
        answered_inline = False
        pos = 0
        end = len(buffer)
        while end - pos >= 4:
            size = int.from_bytes(buffer[pos : pos + 4], "little")
            if size < 1 or size > MAX_FRAME_BYTES:
                self.buffer = b""
                self._finish_ingest(queued, answered_inline)
                self.fail(
                    "too_large",
                    f"binary frame of {size} bytes exceeds "
                    f"{MAX_FRAME_BYTES} bytes",
                )
                return
            if end - pos - 4 < size:
                break
            frame = buffer[pos + 4 : pos + 4 + size]
            pos += 4 + size
            if cache:
                # Inline fast path, binary edition: a canonical read
                # frame is three struct fields — no dict is ever built
                # on a cache hit.
                parsed = codec.parse_canonical_read(frame)
                if parsed is not None:
                    txn_id, object_id, rid = parsed
                    if not pending_ops.get(txn_id, 0):
                        txn = self.sessions.get(txn_id)
                        outcome = (
                            manager.read_cached(txn, object_id)
                            if txn is not None
                            else None
                        )
                        if outcome is not None:
                            # The decode counter normally ticks inside
                            # codec.decode, which this path bypasses.
                            counters.net_codec_binary_frames_decoded += 1
                            self.out.append(
                                codec.encode_read_outcome(outcome, rid)
                            )
                            answered_inline = True
                            continue
            try:
                message = codec.decode(frame)
            except ProtocolError as exc:
                self.buffer = b""
                self._finish_ingest(queued, answered_inline)
                self.fail("protocol", str(exc))
                return
            if server.codecs is not None and message.get("op") == "hello":
                chosen, response = negotiate_hello(message, server.codecs)
                self.out.append(codec.encode_response(attach_id(response, message)))
                answered_inline = True
                if chosen is not codec:
                    self.codec = chosen
                    self.binary = False
                    self.buffer = b""
                    self._finish_ingest(queued, answered_inline)
                    rest = buffer[pos:]
                    if rest:
                        self._line_data(rest)
                    return
                continue
            if cache and not pending_ops.get(message.get("txn", -1), 0):
                response = try_cached_read(manager, message, self.sessions)
                if response is not None:
                    self.out.append(
                        codec.encode_response(attach_id(response, message))
                    )
                    answered_inline = True
                    continue
            txn = message.get("txn")
            if txn is not None:
                pending_ops[txn] = pending_ops.get(txn, 0) + 1
            queue.append((self, message))
            queued += 1
        self.buffer = buffer[pos:]
        self._finish_ingest(queued, answered_inline)

    def _finish_ingest(self, queued: int, answered_inline: bool) -> None:
        """Shared post-chunk bookkeeping for both framing modes."""
        self.inflight += queued
        if self.inflight >= self.server.max_inflight and not self.read_paused:
            # In-flight window full: stop reading until responses drain.
            perf.counters.net_backpressure_stalls += 1
            self.read_paused = True
            self.transport.pause_reading()
        if queued:
            self.server._queue_ready.set()
        if answered_inline:
            # The dispatcher only flushes connections it answers, so the
            # inline responses need their own (idempotent, coalesced)
            # flush — e.g. when nothing was queued, or every queued
            # request parked on a wait.
            self.schedule_flush()

    # -- response path ---------------------------------------------------------

    def note_answered(self, message: dict[str, Any]) -> None:
        """Drop one queued-op claim for the message's transaction."""
        txn = message.get("txn")
        if txn is None:
            return
        count = self.pending_ops.get(txn, 0) - 1
        if count > 0:
            self.pending_ops[txn] = count
        else:
            self.pending_ops.pop(txn, None)

    def enqueue(self, response: dict[str, Any]) -> None:
        """Buffer one response; reopens the read window if it was full."""
        if self.inflight > 0:
            self.inflight -= 1
        if self.read_paused and self.inflight < self.server.max_inflight:
            self.read_paused = False
            if not self.closed:
                self.transport.resume_reading()
        if self.closed:
            return
        self.out.append(self.codec.encode_response(response))

    def flush_now(self) -> None:
        """Write the buffered responses in one transport write."""
        self.flush_pending = False
        if self.closed or self.write_paused or not self.out:
            return
        if len(self.out) > 1:
            perf.counters.net_flushes_coalesced += 1
        payload = b"".join(self.out)
        self.out.clear()
        self.transport.write(payload)
        if self.closing:
            self.closed = True
            self.transport.close()

    def schedule_flush(self) -> None:
        if self.flush_pending or self.closed:
            return
        self.flush_pending = True
        self.server._loop.call_soon(self.flush_now)

    def fail(self, error: str, detail: str) -> None:
        """Queue a framing-level failure; the dispatcher answers it in
        order after any requests already queued, then the connection
        closes once the error has been flushed."""
        if self.failed:
            return
        self.failed = True
        self.server._queue.append((self, _Failure(error, detail)))
        self.server._queue_ready.set()


class AsyncTransactionServer:
    """An asyncio TCP transaction server around one database.

    Usage (on a running loop)::

        server = AsyncTransactionServer(database, wait_timeout=5.0)
        await server.start(host, port)
        ...
        await server.aclose()

    From synchronous code use :func:`serve_in_thread`, which runs the
    whole server on a dedicated loop thread.
    """

    def __init__(
        self,
        database: Database,
        protocol: str = "esr",
        export_policy: str = "max",
        wait_timeout: float = WAIT_TIMEOUT_SECONDS,
        wait_policy: str = "wait",
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        snapshot_cache: bool = False,
        shards: int = 1,
        processes: bool | str = False,
        shard_rpc: str = "fast",
        codecs: tuple[str, ...] | None = SUPPORTED_CODECS,
        record_history: bool = False,
    ):
        self.manager: Engine = create_engine(
            database,
            protocol,
            export_policy=export_policy,
            wait_policy=wait_policy,
            snapshot_cache=snapshot_cache,
            shards=shards,
            processes=processes,
            shard_rpc=shard_rpc,
            record_history=record_history,
        )
        #: Upper bound on one strict-ordering wait, in seconds.
        self.wait_timeout = wait_timeout
        self.max_inflight = max_inflight
        #: Codecs offered to ``hello`` negotiation; None disables it
        #: (the connection then behaves like a pre-negotiation server).
        self.codecs = codecs
        self._queue: deque[tuple[_Connection, dict[str, Any]]] = deque()
        self._connections: set[_Connection] = set()
        self._queue_ready: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.base_events.Server | None = None
        self._dispatcher: asyncio.Task | None = None
        self._waiters: set[asyncio.Task] = set()
        # Off-loop dispatch lanes (sharded mode only): one single-thread
        # executor per shard; each connection is pinned to one lane
        # (round-robin) so its responses keep request order while
        # different connections run engine calls concurrently.  None
        # means classic mode: the loop itself is the engine critical
        # section.
        if getattr(self.manager, "thread_safe", False) and shards > 1:
            self._lanes: list[ThreadPoolExecutor] | None = [
                ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix=f"aio-shard-{i}"
                )
                for i in range(shards)
            ]
        else:
            self._lanes = None
        self._lane_rr = 0

    @property
    def port(self) -> int:
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    # -- lifecycle -------------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._loop = asyncio.get_running_loop()
        self._queue_ready = asyncio.Event()
        self._server = await self._loop.create_server(
            lambda: _Connection(self), host, port
        )
        self._dispatcher = asyncio.create_task(self._dispatch_loop())

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for conn in list(self._connections):
            conn.flush_now()
            if conn.transport is not None:
                conn.transport.close()
        for task in (self._dispatcher, *self._waiters):
            if task is not None:
                task.cancel()
        await asyncio.gather(
            *(t for t in (self._dispatcher, *self._waiters) if t is not None),
            return_exceptions=True,
        )
        if self._lanes is not None:
            # Join the lane threads: wait=False leaked one thread per
            # shard per serve/close cycle (an in-flight engine call kept
            # its worker alive past aclose, and repeated cycles in one
            # process accumulated them).  The lanes are single-thread
            # executors whose queued work is cancelled, so the join is
            # bounded by the one engine call still running.
            for lane in self._lanes:
                lane.shutdown(wait=True, cancel_futures=True)
        close = getattr(self.manager, "close", None)
        if close is not None:
            close()

    def _abandon(self, conn: _Connection) -> None:
        """Abort whatever a disconnected client left active."""
        for txn in conn.sessions.values():
            if txn.is_active:
                self.manager.abort(txn, REASON_CLIENT_DISCONNECTED)
        conn.sessions.clear()

    def history(self) -> "HistoryLog":
        """The recorded history so far (empty when recording is off)."""
        from repro.engine.history import HistoryLog

        return HistoryLog.from_engine(self.manager)

    # -- batched dispatch ------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        counters = perf.counters
        queue = self._queue
        ready = self._queue_ready
        manager = self.manager
        while True:
            await ready.wait()
            ready.clear()
            if not queue:
                continue
            # Drain in place — readers hold a reference to this deque.
            batch = list(queue)
            queue.clear()
            counters.net_batches_drained += 1
            counters.net_requests_batched += len(batch)
            touched: dict[int, _Connection] = {}
            # Off-loop mode groups each drained tick's messages by
            # connection and pays ONE executor hop per group (instead of
            # one per message): the lane runs submit_batch over the
            # group, and a process-sharded engine underneath coalesces
            # the concurrent lanes' shard RPCs into shared batch frames.
            # Per-connection request order is preserved — a group keeps
            # its messages in arrival order and every group of one
            # connection lands on that connection's FIFO lane.
            groups: dict[int, tuple[_Connection, list[dict[str, Any]]]] = {}
            for conn, message in batch:
                if type(message) is _Failure:
                    # Flush this connection's pending group first so the
                    # failure reply keeps its position in the lane order.
                    pending = groups.pop(id(conn), None)
                    if pending is not None:
                        self._submit_group(*pending)
                    conn.out.append(
                        conn.codec.encode_response(
                            {
                                "ok": False,
                                "error": message.error,
                                "detail": message.detail,
                            }
                        )
                    )
                    conn.closing = True
                    touched[id(conn)] = conn
                    continue
                if self._lanes is not None:
                    group = groups.get(id(conn))
                    if group is None:
                        groups[id(conn)] = (conn, [message])
                    else:
                        group[1].append(message)
                    continue
                result = submit_request(manager, message, conn.sessions)
                if type(result) is NeedsWait:
                    # Subscribe *now*, synchronously — the blocker could
                    # complete during any await between decision and
                    # subscription, and the wake-up would be missed.
                    event = self._subscribe(result)
                    self._spawn_waiter(conn, message, result, event)
                else:
                    conn.note_answered(message)
                    if "id" in message:
                        result["id"] = message["id"]
                    conn.enqueue(result)
                    touched[id(conn)] = conn
            for conn, messages in groups.values():
                self._submit_group(conn, messages)
            for conn in touched.values():
                conn.flush_now()

    def _submit_group(
        self, conn: _Connection, messages: list[dict[str, Any]]
    ) -> None:
        """One executor hop for one connection's drained-tick messages."""
        future = self._loop.run_in_executor(
            self._lane_for(conn),
            submit_batch,
            self.manager,
            messages,
            conn.sessions,
        )
        future.add_done_callback(
            functools.partial(self._offloop_batch_done, conn, messages)
        )

    def _lane_for(self, conn: _Connection) -> ThreadPoolExecutor:
        """Pick the FIFO lane for one request: one lane per connection,
        assigned round-robin on first use.

        Routing by connection (rather than by transaction id) keeps the
        wire contract intact — a pipelined client receives its responses
        strictly in request order, the same as on the threaded server —
        because every request of one connection shares one FIFO lane.
        Per-transaction ordering follows for free: a transaction lives
        on exactly one connection.  Parallelism comes from concurrent
        connections landing on different lanes, which is how the load
        arrives in practice.
        """
        assert self._lanes is not None
        if conn.lane is None:
            conn.lane = self._lanes[self._lane_rr % len(self._lanes)]
            self._lane_rr += 1
        return conn.lane

    def _offloop_done(
        self,
        conn: _Connection,
        message: dict[str, Any],
        future: "asyncio.Future[dict[str, Any] | NeedsWait]",
    ) -> None:
        """Loop-side completion of an off-loop engine call."""
        if future.cancelled():
            return
        result = future.result()
        if type(result) is NeedsWait:
            event = self._subscribe(result)
            self._spawn_waiter(conn, message, result, event)
            return
        conn.note_answered(message)
        conn.enqueue(attach_id(result, message))
        conn.schedule_flush()

    def _offloop_batch_done(
        self,
        conn: _Connection,
        messages: list[dict[str, Any]],
        future: "asyncio.Future[list[dict[str, Any] | NeedsWait]]",
    ) -> None:
        """Loop-side completion of one connection's off-loop batch."""
        if future.cancelled():
            return
        results = future.result()
        flush = False
        for message, result in zip(messages, results):
            if type(result) is NeedsWait:
                event = self._subscribe(result)
                self._spawn_waiter(conn, message, result, event)
                continue
            conn.note_answered(message)
            conn.enqueue(attach_id(result, message))
            flush = True
        if flush:
            conn.schedule_flush()

    def _subscribe(self, pending: NeedsWait) -> Any:
        # In sharded mode the registry fires callbacks from executor
        # threads, so the event's set() must marshal onto the loop.
        factory = (
            (lambda: _LoopEvent(self._loop))
            if self._lanes is not None
            else asyncio.Event
        )
        return self.manager.waits.wait_event(
            pending.blocking_transaction,
            waiter_transaction=pending.txn.transaction_id,
            factory=factory,
        )

    def _spawn_waiter(
        self,
        conn: _Connection,
        message: dict[str, Any],
        pending: NeedsWait,
        event: Any,
    ) -> None:
        task = asyncio.create_task(
            self._wait_and_retry(conn, message, pending, event)
        )
        self._waiters.add(task)
        task.add_done_callback(self._waiters.discard)

    async def _wait_and_retry(
        self,
        conn: _Connection,
        message: dict[str, Any],
        pending: NeedsWait,
        event: Any,
    ) -> None:
        """One parked operation: wake on the blocker, retry, or time out."""
        while True:
            try:
                await asyncio.wait_for(event.wait(), self.wait_timeout)
            except asyncio.TimeoutError:
                response = await self._run_engine_call(
                    conn, message, abort_on_timeout, pending
                )
                break
            result = await self._run_engine_call(
                conn, message, retry_operation, pending
            )
            if type(result) is NeedsWait:
                event = self._subscribe(result)
                continue
            response = result
            break
        conn.note_answered(message)
        conn.enqueue(attach_id(response, message))
        conn.schedule_flush()

    async def _run_engine_call(
        self, conn: _Connection, message: dict[str, Any], fn, pending: NeedsWait
    ):
        """Run a retry/abort engine call where this server runs them: on
        the connection's lane in sharded mode, inline on the loop (the
        classic critical section) otherwise."""
        if self._lanes is None:
            return fn(self.manager, pending)
        return await self._loop.run_in_executor(
            self._lane_for(conn), fn, self.manager, pending
        )


# -- running on a background thread -------------------------------------------


class AsyncServerThread:
    """An :class:`AsyncTransactionServer` on its own loop thread.

    The synchronous counterpart of :func:`repro.net.server.serve_forever`:
    construction blocks until the server is bound, ``port`` is readable
    from any thread, and :meth:`shutdown` stops the loop and joins the
    thread.  Client code (tests, the bench-net load generator, the CLI)
    talks to it over TCP exactly as to the threaded server.
    """

    def __init__(
        self,
        server: AsyncTransactionServer,
        host: str,
        port: int,
        use_uvloop: bool | None = None,
    ):
        self.server = server
        # None = auto: take uvloop when the optional extra is importable.
        # True degrades gracefully too — the request is best-effort, and
        # ``loop_implementation`` reports what actually ran.
        self._use_uvloop = uvloop_available() if use_uvloop is None else (
            use_uvloop and uvloop_available()
        )
        #: ``"uvloop"`` or ``"asyncio"`` — the loop that actually ran.
        self.loop_implementation = "uvloop" if self._use_uvloop else "asyncio"
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, args=(host, port), daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise self._startup_error

    def _run(self, host: str, port: int) -> None:
        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            try:
                await self.server.start(host, port)
            except BaseException as exc:  # bind failures surface in __init__
                self._startup_error = exc
                self._ready.set()
                return
            self._ready.set()
            await self._stop.wait()
            await self.server.aclose()

        if self._use_uvloop:
            # asyncio.run grew loop_factory only in 3.12; Runner has it
            # since 3.11 and is otherwise the same machinery.
            with asyncio.Runner(loop_factory=_uvloop.new_event_loop) as runner:
                runner.run(main())
        else:
            asyncio.run(main())

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def manager(self) -> Engine:
        return self.server.manager

    def shutdown(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=10.0)


def serve_in_thread(
    database: Database,
    host: str = "127.0.0.1",
    port: int = 0,
    protocol: str = "esr",
    export_policy: str = "max",
    wait_timeout: float = WAIT_TIMEOUT_SECONDS,
    wait_policy: str = "wait",
    max_inflight: int = DEFAULT_MAX_INFLIGHT,
    snapshot_cache: bool = False,
    shards: int = 1,
    processes: bool | str = False,
    shard_rpc: str = "fast",
    codecs: tuple[str, ...] | None = SUPPORTED_CODECS,
    use_uvloop: bool | None = None,
    record_history: bool = False,
) -> AsyncServerThread:
    """Start an async server on a background loop thread (bound and live)."""
    server = AsyncTransactionServer(
        database,
        protocol=protocol,
        export_policy=export_policy,
        wait_policy=wait_policy,
        wait_timeout=wait_timeout,
        max_inflight=max_inflight,
        snapshot_cache=snapshot_cache,
        shards=shards,
        processes=processes,
        shard_rpc=shard_rpc,
        codecs=codecs,
        record_history=record_history,
    )
    return AsyncServerThread(server, host, port, use_uvloop=use_uvloop)
