"""Exception hierarchy for the epsilon-serializability library.

Every error raised by this package derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause.  The
hierarchy mirrors the subsystems: specification errors (bad bounds or
hierarchies), protocol errors (operations rejected by the concurrency
control), language errors (the transaction mini-language), and transport
errors (the networked prototype).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SpecificationError(ReproError):
    """An inconsistency-bound specification is malformed.

    Raised, for example, when a limit is negative, when a hierarchy node is
    attached to an unknown parent, or when an object is mapped to a
    non-leaf node.
    """


class MetricSpaceError(SpecificationError):
    """A distance function violates the metric-space requirements of ESR."""


class TransactionError(ReproError):
    """Base class for errors tied to a particular transaction."""

    def __init__(self, message: str, transaction_id: int | None = None):
        super().__init__(message)
        self.transaction_id = transaction_id


class TransactionAborted(TransactionError):
    """The transaction was aborted by the concurrency control.

    The ``reason`` carries the protocol-level cause (late operation, bound
    violation, explicit abort) so clients can decide whether to resubmit.
    """

    def __init__(
        self,
        message: str,
        transaction_id: int | None = None,
        reason: str | None = None,
    ):
        super().__init__(message, transaction_id)
        self.reason = reason


class BoundViolation(TransactionAborted):
    """An operation would push accumulated inconsistency past a limit.

    ``level`` names the hierarchy level that rejected the charge (``"object"``,
    a group name, or ``"transaction"``) which is useful both for diagnostics
    and for the performance study's per-level accounting.
    """

    def __init__(
        self,
        message: str,
        transaction_id: int | None = None,
        level: str | None = None,
        attempted: float | None = None,
        limit: float | None = None,
    ):
        super().__init__(message, transaction_id, reason="bound-violation")
        self.level = level
        self.attempted = attempted
        self.limit = limit


class InvalidOperation(TransactionError):
    """An operation is not legal for the transaction's kind or state.

    Examples: a write submitted by a query transaction, an operation on a
    committed transaction, or a read of an object that does not exist.
    """


class UnknownObjectError(InvalidOperation):
    """The referenced object id is not present in the database."""


class LanguageError(ReproError):
    """Base class for transaction-language failures."""


class LexError(LanguageError):
    """The source text contains a character sequence that is not a token."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ParseError(LanguageError):
    """The token stream does not form a valid transaction program."""

    def __init__(self, message: str, line: int | None = None):
        if line is not None:
            message = f"{message} (line {line})"
        super().__init__(message)
        self.line = line


class EvaluationError(LanguageError):
    """A runtime failure while evaluating a transaction program."""


class ProtocolError(ReproError):
    """A malformed or unexpected message on the network protocol."""


class ShardChannelError(ReproError):
    """The parent↔worker shard channel failed mid-frame.

    Raised by the process-sharded engine's RPC layer on a torn frame
    (truncated header/payload, undecodable reply) or when bounded
    ``EINTR`` retries are exhausted — instead of surfacing a bare
    ``struct``/``pickle`` error from deep inside the framing code.  The
    op path treats it like a dead worker and fails the shard over.

    ``shard`` is the shard whose channel failed; ``pending_ops`` counts
    the operations that were riding (or queued behind) the failed
    round-trip, so logs show how much staged work the failure took out.
    """

    def __init__(
        self,
        message: str,
        shard: int | None = None,
        pending_ops: int = 0,
    ):
        if shard is not None:
            message = f"{message} (shard {shard}, {pending_ops} pending ops)"
        super().__init__(message)
        self.shard = shard
        self.pending_ops = pending_ops


class ServerError(ReproError):
    """The networked server failed to start or crashed while serving."""


class WorkloadError(ReproError):
    """A workload specification or trace file is invalid."""


class ExperimentError(ReproError):
    """An experiment configuration is invalid or a run failed."""
