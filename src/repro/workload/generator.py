"""Random transaction generation (the clients' data files, paper §6).

The generator produces :class:`~repro.lang.ast.Program` values — the same
representation the parser yields — so generated workloads can be written
to trace files, replayed through any runtime, and inspected as source.

Queries read a set of distinct objects and output their sum (the paper's
query shape).  Updates are read-modify-write transactions: each written
object is first read, then written back with a bounded random change, plus
padding reads to reach the target operation count.  Objects are drawn from
a small hot set with high probability to create the paper's high conflict
ratio.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.engine.database import Database
from repro.core.bounds import ObjectBounds
from repro.lang.ast import (
    BinaryOp,
    LimitDecl,
    Number,
    OutputStmt,
    Program,
    ReadStmt,
    Statement,
    Variable,
    WriteStmt,
)
from repro.workload.spec import WorkloadSpec

__all__ = ["WorkloadGenerator", "build_database"]


#: Group names used when a workload database is built with groups: the
#: hot set forms one group, subdivided into one subgroup per partition.
HOT_GROUP = "hot"


def partition_group(partition_index: int) -> str:
    """Catalog group name for hot-set partition ``partition_index`` (0-based)."""
    return f"part{partition_index + 1}"


def build_database(
    spec: WorkloadSpec,
    seed: int = 0,
    object_bounds: ObjectBounds | None = None,
    version_window: int | None = None,
    with_groups: bool = False,
) -> Database:
    """Create the initial database for a workload.

    Object values are drawn uniformly from the spec's value range; all
    objects share ``object_bounds`` (defaulting to unbounded OIL/OEL, the
    setting the paper uses while studying transaction-level bounds).

    With ``with_groups`` the catalog gains a three-level hierarchy over
    the hot set — ``hot`` at the top, one ``partN`` subgroup per write
    partition — so queries can declare group limits (paper section 3.1)
    against it; cold objects stay independent.
    """
    rng = random.Random(seed)
    kwargs = {} if version_window is None else {"version_window": version_window}
    db = Database(**kwargs)
    for object_id in spec.object_ids:
        value = rng.randint(spec.value_min, spec.value_max)
        db.create_object(object_id, float(value), object_bounds)
    if with_groups:
        db.catalog.add_group(HOT_GROUP)
        hot = hot_set_for(spec)
        for index in range(spec.n_partitions):
            name = partition_group(index)
            db.catalog.add_group(name, parent=HOT_GROUP)
            for object_id in hot[index :: spec.n_partitions]:
                db.catalog.assign(object_id, name)
    return db


def hot_set_for(spec: WorkloadSpec) -> tuple[int, ...]:
    """The workload's hot set — a fixed random sample of the object ids.

    Derived deterministically from the spec alone so every generator
    (one per client) conflicts on the same objects.
    """
    hot_rng = random.Random(spec.hot_set_size * 2654435761 + spec.n_objects)
    return tuple(sorted(hot_rng.sample(list(spec.object_ids), spec.hot_set_size)))


def partition_for_site(spec: WorkloadSpec, site: int) -> tuple[int, ...]:
    """The hot-set slice client ``site`` may write (1-based site ids).

    Partitions are interleaved slices of the hot set; sites beyond
    ``spec.n_partitions`` wrap around and share a partition.
    """
    hot = hot_set_for(spec)
    index = (site - 1) % spec.n_partitions
    partition = hot[index :: spec.n_partitions]
    # With more partitions than hot objects some slices are empty; fall
    # back to a single object so the site can still generate updates.
    if not partition:
        partition = (hot[index % len(hot)],)
    return partition


class WorkloadGenerator:
    """Seeded generator of query and update epsilon transactions.

    ``partition`` restricts this client's *write targets* (reads roam the
    whole database).  Pass :func:`partition_for_site` for the paper-style
    partitioned workload, or None to let updates write anywhere in the
    hot set (higher, unrelaxable update-update conflict).
    """

    def __init__(
        self,
        spec: WorkloadSpec,
        seed: int = 0,
        partition: tuple[int, ...] | None = None,
        query_group_limits: dict[str, float] | None = None,
    ):
        self.spec = spec
        self._rng = random.Random(seed)
        self.hot_set: tuple[int, ...] = hot_set_for(spec)
        self.partition: tuple[int, ...] = (
            tuple(partition) if partition is not None else self.hot_set
        )
        #: Group limits attached to every generated query (LIMIT lines);
        #: requires a database built ``with_groups``.
        self.query_group_limits: dict[str, float] = dict(query_group_limits or {})
        self._cold_set: tuple[int, ...] = tuple(
            object_id
            for object_id in spec.object_ids
            if object_id not in set(self.hot_set)
        )

    # -- object selection -------------------------------------------------------

    def _choose_objects(self, count: int) -> list[int]:
        """Choose ``count`` distinct objects, hot-set biased."""
        spec = self.spec
        chosen: set[int] = set()
        # Cap hot picks at the hot-set size; overflow goes cold.
        want_hot = sum(
            1
            for _ in range(count)
            if self._rng.random() < spec.hot_access_fraction
        )
        want_hot = min(want_hot, len(self.hot_set), count)
        chosen.update(self._rng.sample(list(self.hot_set), want_hot))
        remaining = count - len(chosen)
        if remaining > 0:
            pool = self._cold_set if self._cold_set else self.hot_set
            extra = self._rng.sample(
                [o for o in pool if o not in chosen], remaining
            )
            chosen.update(extra)
        objects = list(chosen)
        self._rng.shuffle(objects)
        return objects

    def _ops_count(self, mean: int, spread: int, minimum: int) -> int:
        low = max(minimum, mean - spread)
        high = mean + spread
        return self._rng.randint(low, high)

    # -- transaction generation ----------------------------------------------------

    def generate_query(self, til: float) -> Program:
        """A sum query over ~``query_ops_mean`` distinct objects."""
        spec = self.spec
        count = self._ops_count(spec.query_ops_mean, spec.query_ops_spread, 1)
        count = min(count, spec.n_objects)
        objects = self._choose_objects(count)
        body: list[Statement] = []
        terms: list[Variable] = []
        for index, object_id in enumerate(objects, start=1):
            name = f"t{index}"
            body.append(ReadStmt(object_id=object_id, target=name))
            terms.append(Variable(name))
        total: object = terms[0]
        for term in terms[1:]:
            total = BinaryOp("+", total, term)
        body.append(OutputStmt(parts=("Sum is: ", total)))
        limits = tuple(
            LimitDecl(name=group, value=value)
            for group, value in sorted(self.query_group_limits.items())
        )
        return Program(
            kind="query",
            transaction_limit=til,
            limits=limits,
            body=tuple(body),
        )

    def generate_update(self, tel: float) -> Program:
        """A read-modify-write update ET of ~``update_ops_mean`` operations.

        Write targets come from this client's partition; the padding reads
        go to cold objects (account lookups that conflict with nobody), so
        update-update conflicts only arise between sites sharing a
        partition.
        """
        spec = self.spec
        total_ops = self._ops_count(
            spec.update_ops_mean,
            spec.update_ops_spread,
            2 * spec.writes_per_update or 1,
        )
        writes = min(spec.writes_per_update, total_ops // 2, len(self.partition))
        extra_reads = total_ops - 2 * writes
        write_targets = self._rng.sample(list(self.partition), writes)
        read_pool = self._cold_set if self._cold_set else self.hot_set
        candidates = [o for o in read_pool if o not in set(write_targets)]
        extra_reads = min(extra_reads, len(candidates))
        read_only = self._rng.sample(candidates, extra_reads)
        body: list[Statement] = []
        var = 0
        for object_id in write_targets:
            var += 1
            name = f"t{var}"
            body.append(ReadStmt(object_id=object_id, target=name))
            delta = self._write_delta()
            op = "+" if delta >= 0 else "-"
            body.append(
                WriteStmt(
                    object_id=object_id,
                    value=BinaryOp(op, Variable(name), Number(abs(delta))),
                )
            )
        for object_id in read_only:
            var += 1
            body.append(ReadStmt(object_id=object_id, target=f"t{var}"))
        return Program(
            kind="update",
            transaction_limit=tel,
            body=tuple(body),
        )

    def _write_delta(self) -> float:
        """A signed change: typically ~``w``, occasionally a large transfer."""
        spec = self.spec
        w = spec.mean_write_change
        if self._rng.random() < spec.large_change_fraction:
            magnitude = self._rng.uniform(
                spec.large_change_min_mult * w, spec.large_change_max_mult * w
            )
        else:
            magnitude = self._rng.uniform(0.5 * w, 1.5 * w)
        sign = 1.0 if self._rng.random() < 0.5 else -1.0
        return round(sign * magnitude)

    def generate(self, til: float, tel: float) -> Program:
        """One transaction of random kind per the spec's query fraction."""
        if self._rng.random() < self.spec.query_fraction:
            return self.generate_query(til)
        return self.generate_update(tel)

    def generate_mix(self, count: int, til: float, tel: float) -> list[Program]:
        """A client's transaction load: ``count`` random transactions."""
        return [self.generate(til, tel) for _ in range(count)]

    def stream(self, til: float, tel: float) -> Iterator[Program]:
        """An endless stream of transactions (for open-ended runs)."""
        while True:
            yield self.generate(til, tel)
