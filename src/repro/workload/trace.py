"""Trace files: the transaction data files supplied to clients (paper §6).

"The clients are supplied with data files consisting of a number of
transactions that are randomly generated, to serve as the load of
transactions."  A trace file is plain text — transaction programs in the
mini-language separated by blank lines, with ``#`` comment lines allowed
anywhere (the writer records the generation parameters in a header
comment).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

from repro.errors import WorkloadError
from repro.lang.ast import Program
from repro.lang.compiler import format_program
from repro.lang.parser import parse_script

__all__ = ["write_trace", "read_trace", "split_for_clients"]


def write_trace(
    path: str | Path,
    programs: Iterable[Program],
    header: str | None = None,
) -> int:
    """Write programs to a trace file; returns the number written."""
    chunks: list[str] = []
    if header:
        chunks.append(
            "\n".join(f"# {line}" for line in header.splitlines()) + "\n"
        )
    count = 0
    for program in programs:
        chunks.append(format_program(program))
        count += 1
    Path(path).write_text("\n".join(chunks), encoding="utf-8")
    return count


def read_trace(path: str | Path) -> list[Program]:
    """Parse a trace file back into programs."""
    source = Path(path).read_text(encoding="utf-8")
    programs = parse_script(source)
    if not programs:
        raise WorkloadError(f"trace file {path} contains no transactions")
    return programs


def split_for_clients(
    programs: Sequence[Program], clients: int
) -> list[list[Program]]:
    """Deal a transaction load out to ``clients`` round-robin.

    Every client receives at least one transaction; it is an error to ask
    for more clients than there are transactions.
    """
    if clients <= 0:
        raise WorkloadError(f"client count must be positive, got {clients}")
    if len(programs) < clients:
        raise WorkloadError(
            f"cannot split {len(programs)} transactions across {clients} clients"
        )
    shares: list[list[Program]] = [[] for _ in range(clients)]
    for index, program in enumerate(programs):
        shares[index % clients].append(program)
    return shares
