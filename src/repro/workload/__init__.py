"""Synthetic workloads: specs, generators, and client trace files."""

from repro.workload.generator import (
    WorkloadGenerator,
    build_database,
    hot_set_for,
    partition_for_site,
)
from repro.workload.spec import PAPER_WORKLOAD, WorkloadSpec
from repro.workload.trace import read_trace, split_for_clients, write_trace

__all__ = [
    "WorkloadGenerator",
    "build_database",
    "hot_set_for",
    "partition_for_site",
    "PAPER_WORKLOAD",
    "WorkloadSpec",
    "read_trace",
    "split_for_clients",
    "write_trace",
]
