"""Workload parameters, defaulting to the paper's prototype settings.

Paper sections 6 and 7:

* about **1000 objects** in the database, values in **1000–9999**;
* most transactions touch a **hot set of about 20 objects**, chosen to
  force a high conflict ratio so thrashing appears within MPL 10;
* **query ETs** perform about **20 read operations**; **update ETs about
  6 operations**; the overall average is ~10 operations per transaction,
  which pins the query fraction at roughly 30 %;
* updates change values by a typical magnitude ``w`` (the paper
  parameterises Figure 12's OIL axis in units of ``w``); our updates are
  read-modify-write pairs (``t = Read x`` … ``Write x, t ± delta``) with
  ``delta`` drawn so that the mean absolute change is ``w``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError

__all__ = ["WorkloadSpec", "PAPER_WORKLOAD"]


@dataclass(frozen=True)
class WorkloadSpec:
    """Shape of the synthetic workload."""

    #: Number of objects in the database.
    n_objects: int = 1000
    #: First object id (the paper's examples use ids like 1863).
    first_object_id: int = 1000
    #: Initial value range (inclusive).
    value_min: int = 1000
    value_max: int = 9999
    #: Size of the high-conflict hot set.
    hot_set_size: int = 20
    #: Probability that any single access goes to the hot set.
    hot_access_fraction: float = 0.9
    #: Fraction of transactions that are queries.
    query_fraction: float = 0.3
    #: Query ETs read this many objects on average (+/- query_ops_spread).
    query_ops_mean: int = 20
    query_ops_spread: int = 4
    #: Update ETs perform this many operations total (reads + writes).
    update_ops_mean: int = 6
    update_ops_spread: int = 2
    #: Number of read-modify-write pairs per update ET.
    writes_per_update: int = 2
    #: Typical absolute change per write (the paper's ``w``).
    mean_write_change: float = 2000.0
    #: A fraction of writes are much larger "transfers": their magnitude
    #: is drawn from [large_change_min_mult, large_change_max_mult] * w.
    #: These produce the heavy tail of read divergences that makes the
    #: object-level import limit (OIL) a meaningful filter — without them
    #: every divergence is ~1-3 w and any OIL above that is equivalent to
    #: no OIL at all.
    large_change_fraction: float = 0.15
    large_change_min_mult: float = 3.0
    large_change_max_mult: float = 6.0
    #: The hot set is divided into this many write partitions; each client
    #: site updates only its own partition (tellers update their own
    #: accounts) while queries read across the whole hot set.  This makes
    #: the conflicts query-vs-update — the kind ESR relaxes and the kind
    #: the paper studies ("query ETs run concurrently with consistent
    #: update ETs") — rather than unrelaxable update-vs-update races.
    n_partitions: int = 10

    def __post_init__(self) -> None:
        if self.n_objects <= 0:
            raise WorkloadError("n_objects must be positive")
        if not 0 < self.hot_set_size <= self.n_objects:
            raise WorkloadError(
                "hot_set_size must be in 1..n_objects "
                f"(got {self.hot_set_size} of {self.n_objects})"
            )
        if not 0.0 <= self.hot_access_fraction <= 1.0:
            raise WorkloadError("hot_access_fraction must be in [0, 1]")
        if not 0.0 <= self.query_fraction <= 1.0:
            raise WorkloadError("query_fraction must be in [0, 1]")
        if self.value_min > self.value_max:
            raise WorkloadError("value_min must not exceed value_max")
        if self.query_ops_mean <= 0 or self.update_ops_mean <= 0:
            raise WorkloadError("operation counts must be positive")
        if self.writes_per_update < 0:
            raise WorkloadError("writes_per_update must be >= 0")
        if 2 * self.writes_per_update > self.update_ops_mean - self.update_ops_spread:
            raise WorkloadError(
                "update ETs are too short for the requested write count: "
                "each write needs its paired read"
            )
        if self.mean_write_change <= 0:
            raise WorkloadError("mean_write_change must be positive")
        if self.n_partitions <= 0:
            raise WorkloadError("n_partitions must be positive")
        if not 0.0 <= self.large_change_fraction <= 1.0:
            raise WorkloadError("large_change_fraction must be in [0, 1]")
        if not 0 < self.large_change_min_mult <= self.large_change_max_mult:
            raise WorkloadError(
                "large-change multipliers must satisfy 0 < min <= max"
            )

    @property
    def object_ids(self) -> range:
        return range(self.first_object_id, self.first_object_id + self.n_objects)

    @property
    def mean_ops_per_transaction(self) -> float:
        """The blended average the paper quotes as ~10 operations."""
        return (
            self.query_fraction * self.query_ops_mean
            + (1.0 - self.query_fraction) * self.update_ops_mean
        )


#: The paper's configuration, importable by name.
PAPER_WORKLOAD = WorkloadSpec()
