"""Shape analysis: the paper's qualitative claims, made checkable.

The reproduction does not chase the paper's absolute numbers (different
hardware, different decade); it checks the *shapes* of the curves.  This
module turns those shapes into functions over :class:`~repro.experiments.
figures.FigureResult` values:

* :func:`thrashing_point` — the MPL where a throughput curve stops
  improving (the knee the paper calls the thrashing point);
* :func:`peak_x` — the x of a curve's maximum (Figure 12's interior-OIL
  peak);
* :func:`check_figure` — per-figure lists of named shape assertions,
  used by the benchmark suite and the EXPERIMENTS.md generator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.figures import FigureResult, Series

__all__ = [
    "ShapeCheck",
    "thrashing_point",
    "peak_x",
    "dominates",
    "check_fig7",
    "check_fig8",
    "check_fig9",
    "check_fig10",
    "check_fig11",
    "check_fig12",
    "check_fig13",
    "check_figure",
]


@dataclass(frozen=True)
class ShapeCheck:
    """One named, evaluated shape assertion."""

    name: str
    passed: bool
    detail: str

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return f"[{status}] {self.name}: {self.detail}"


def thrashing_point(series: Series, tolerance: float = 0.05) -> float | None:
    """The MPL where throughput peaks and then genuinely declines.

    The paper calls the thrashing point "the MPL where the throughput
    begins to drop".  Operationally: the *knee* is the smallest x whose y
    is within ``tolerance`` of the curve's maximum; if the curve later
    falls below that tolerance band the knee is the thrashing point,
    otherwise the curve merely saturates and there is **no thrashing
    within the measured range** — returned as ``None`` (treat as "past
    the last x" when comparing).
    """
    ys = series.means()
    top = max(ys)
    floor = (1.0 - tolerance) * top
    knee_index = next(i for i, y in enumerate(ys) if y >= floor)
    declines = any(y < floor for y in ys[knee_index + 1 :])
    if not declines:
        return None
    return series.x[knee_index]


def peak_x(series: Series) -> float:
    """The x of the series' maximum y (first one, on ties)."""
    ys = series.means()
    top = max(ys)
    for x, y in zip(series.x, ys):
        if y == top:
            return x
    return series.x[-1]


def dominates(
    upper: Series, lower: Series, slack: float = 0.05, from_x: float | None = None
) -> bool:
    """True when ``upper`` ≥ ``lower`` (within ``slack``) pointwise."""
    for x, yu, yl in zip(upper.x, upper.means(), lower.means()):
        if from_x is not None and x < from_x:
            continue
        if yu < yl * (1.0 - slack) - 1e-9:
            return False
    return True


def _mostly_increasing(series: Series, slack: float = 0.1) -> bool:
    """True when the curve trends upward (small dips tolerated)."""
    ys = series.means()
    running_max = ys[0]
    for y in ys[1:]:
        if y < running_max * (1.0 - slack) - 1e-9:
            return False
        running_max = max(running_max, y)
    return True


# -- per-figure checks ---------------------------------------------------------------


def check_fig7(figure: FigureResult) -> list[ShapeCheck]:
    checks: list[ShapeCheck] = []
    order = ["zero-epsilon", "low-epsilon", "medium-epsilon", "high-epsilon"]
    curves = {s.label: s for s in figure.series}
    for lower_name, upper_name in zip(order, order[1:]):
        upper, lower = curves[upper_name], curves[lower_name]
        ok = dominates(upper, lower, from_x=2.0)
        checks.append(
            ShapeCheck(
                name=f"throughput({upper_name}) >= throughput({lower_name})",
                passed=ok,
                detail="pointwise for MPL >= 2, 5% slack",
            )
        )
    max_mpl = curves["zero-epsilon"].x[-1]
    tp = {name: thrashing_point(curves[name]) for name in order}

    def effective(name: str) -> float:
        value = tp[name]
        return max_mpl + 1 if value is None else value

    def render(name: str) -> str:
        value = tp[name]
        return f">{max_mpl:g}" if value is None else f"{value:g}"

    checks.append(
        ShapeCheck(
            name="thrashing point shifts right with bounds",
            passed=effective("high-epsilon") >= effective("zero-epsilon"),
            detail=(
                f"thrashing MPL: zero={render('zero-epsilon')}, "
                f"low={render('low-epsilon')}, med={render('medium-epsilon')}, "
                f"high={render('high-epsilon')}"
            ),
        )
    )
    zero, high = curves["zero-epsilon"], curves["high-epsilon"]
    gain = max(high.means()) / max(zero.means()) if max(zero.means()) else float("inf")
    checks.append(
        ShapeCheck(
            name="ESR peak throughput well above SR",
            passed=gain >= 1.3,
            detail=f"peak(high)/peak(zero) = {gain:.2f}x",
        )
    )
    return checks


def check_fig8(figure: FigureResult) -> list[ShapeCheck]:
    checks: list[ShapeCheck] = []
    for series in figure.series:
        checks.append(
            ShapeCheck(
                name=f"inconsistent ops grow with MPL ({series.label})",
                passed=_mostly_increasing(series, slack=0.25),
                detail=f"values {tuple(round(v, 1) for v in series.means())}",
            )
        )
    curves = {s.label: s for s in figure.series}
    low, high = curves["low-epsilon"], curves["high-epsilon"]
    checks.append(
        ShapeCheck(
            name="more inconsistent ops at higher bounds",
            passed=dominates(high, low, slack=0.1, from_x=3.0),
            detail="high-epsilon >= low-epsilon for MPL >= 3",
        )
    )
    return checks


def check_fig9(figure: FigureResult) -> list[ShapeCheck]:
    curves = {s.label: s for s in figure.series}
    checks = [
        ShapeCheck(
            name="aborts nearly zero at high bounds",
            passed=max(curves["high-epsilon"].means()) <= 0.05
            * max(max(curves["zero-epsilon"].means()), 1.0),
            detail=(
                f"max aborts: high={max(curves['high-epsilon'].means()):.0f}, "
                f"zero={max(curves['zero-epsilon'].means()):.0f}"
            ),
        ),
        ShapeCheck(
            name="aborts highest for zero-epsilon (SR)",
            passed=dominates(
                curves["zero-epsilon"], curves["low-epsilon"], from_x=3.0
            ),
            detail="zero-epsilon >= low-epsilon for MPL >= 3",
        ),
        ShapeCheck(
            name="aborts shoot up at low bounds and high MPL",
            passed=curves["low-epsilon"].means()[-1]
            > 5 * max(curves["high-epsilon"].means()[-1], 1.0),
            detail="low-epsilon aborts at MPL 10 >> high-epsilon aborts",
        ),
    ]
    return checks


def check_fig10(figure: FigureResult) -> list[ShapeCheck]:
    curves = {s.label: s for s in figure.series}
    checks = [
        ShapeCheck(
            name=f"total operations grow with MPL ({label})",
            passed=_mostly_increasing(curves[label], slack=0.15),
            detail="rising until server saturation",
        )
        for label in curves
    ]
    return checks


def check_fig11(figure: FigureResult) -> list[ShapeCheck]:
    checks: list[ShapeCheck] = []
    for series in figure.series:
        ys = series.means()
        increasing = _mostly_increasing(series, slack=0.05)
        checks.append(
            ShapeCheck(
                name=f"throughput rises with TIL ({series.label})",
                passed=increasing,
                detail=f"values {tuple(round(v, 1) for v in ys)}",
            )
        )
        half = len(ys) // 2
        early_gain = ys[half] - ys[0]
        late_gain = ys[-1] - ys[half]
        checks.append(
            ShapeCheck(
                name=f"slope steepest at small-to-medium TIL ({series.label})",
                passed=early_gain >= late_gain,
                detail=(
                    f"gain over first half {early_gain:.2f} vs second half "
                    f"{late_gain:.2f}"
                ),
            )
        )
    return checks


def check_fig12(figure: FigureResult) -> list[ShapeCheck]:
    checks: list[ShapeCheck] = []
    curves = {s.label: s for s in figure.series}
    low = curves["TIL=10000"]
    ys = low.means()
    peak = peak_x(low)
    interior = 0 < peak < low.x[-1] and not (
        peak == low.x[-2] and ys[-1] >= ys[-2] * 0.99
    )
    checks.append(
        ShapeCheck(
            name="low-TIL throughput peaks at intermediate OIL",
            passed=0 < peak and ys[low.x.index(peak)] > ys[-1] * 1.02
            and ys[low.x.index(peak)] > ys[0] * 1.02,
            detail=f"peak at OIL={peak:g}w; endpoints {ys[0]:.1f} / {ys[-1]:.1f}",
        )
    )
    checks.append(
        ShapeCheck(
            name="zero OIL approximates the SR case (lowest throughput)",
            passed=all(ys[0] <= y * 1.10 for y in ys[2:]),
            detail=f"OIL=0 throughput {ys[0]:.2f} vs rest",
        )
    )
    return checks


def check_fig13(figure: FigureResult) -> list[ShapeCheck]:
    curves = {s.label: s for s in figure.series}
    checks: list[ShapeCheck] = []
    high = curves["TIL=100000"].means()
    checks.append(
        ShapeCheck(
            name="ops/transaction falls with OIL at high TIL",
            passed=high[-1] <= high[0] and high[-1] <= min(high) * 1.1,
            detail=f"from {high[0]:.1f} down to {high[-1]:.1f}",
        )
    )
    low = curves["TIL=10000"].means()
    trough = min(low)
    checks.append(
        ShapeCheck(
            name="ops/transaction rises again at large OIL for low TIL",
            passed=low[-1] > trough * 1.02,
            detail=f"trough {trough:.2f}, at max OIL {low[-1]:.2f}",
        )
    )
    return checks


_CHECKERS = {
    "fig7": check_fig7,
    "fig8": check_fig8,
    "fig9": check_fig9,
    "fig10": check_fig10,
    "fig11": check_fig11,
    "fig12": check_fig12,
    "fig13": check_fig13,
}


def check_figure(figure: FigureResult) -> list[ShapeCheck]:
    """Dispatch to the figure's shape checks by its id."""
    try:
        checker = _CHECKERS[figure.figure_id]
    except KeyError:
        raise KeyError(f"no shape checks defined for {figure.figure_id!r}")
    return checker(figure)
