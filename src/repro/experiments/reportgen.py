"""EXPERIMENTS.md generation: paper-vs-measured for every table/figure.

Running :func:`generate_experiments_markdown` regenerates every figure
from scratch under a measurement plan, renders the measured data next to
the paper's stated expectation, and evaluates the shape checks.  The CLI
command ``repro report`` writes the result to ``EXPERIMENTS.md``.

Every study routes its ``(config, seed)`` repetition cells through the
shared worker pool of :mod:`repro.experiments.runner` (the plan's
``max_workers`` knob), and the report closes with a runtime section:
per-study cell counts and wall times, plus any cells that timed out,
crashed, or needed a retry.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.experiments.config import MeasurementPlan, PAPER_PLAN, bounds_table
from repro.experiments.figures import (
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    mpl_study,
    oil_study,
    til_study,
)
from repro.experiments.report import figure_markdown, format_table
from repro.experiments.runner import (
    CellProgress,
    CellResult,
    Measurement,
    measure_many,
)

__all__ = ["PAPER_EXPECTATIONS", "generate_experiments_markdown"]

PAPER_EXPECTATIONS = {
    "fig7": (
        "At higher inconsistency bounds ESR throughput is much higher than "
        "SR; as bounds decrease ESR approaches SR.  The thrashing point "
        "shifts from MPL ≈ 3 at low bounds to MPL ≈ 5 at high bounds."
    ),
    "fig8": (
        "The number of successful inconsistent operations increases with "
        "both the inconsistency bounds and the MPL (no zero-epsilon curve: "
        "SR admits no inconsistent operation)."
    ),
    "fig9": (
        "Aborts at high bounds are almost zero; at lower bounds they shoot "
        "up rapidly, and for zero-epsilon (SR) the number is very high."
    ),
    "fig10": (
        "Total operations at high bounds equal the useful work actually "
        "required; anything above that at tighter bounds measures useless "
        "operations wasted on aborted transactions."
    ),
    "fig11": (
        "Throughput increases with TIL; the slope is highest at small to "
        "medium values, where most transactions' needs are concentrated."
    ),
    "fig12": (
        "For low to medium TIL the throughput is low at both low and high "
        "OIL but peaks at intermediate OIL.  Zero OIL corresponds to SR."
    ),
    "fig13": (
        "Average operations per transaction (including aborted work) "
        "decreases with OIL for high TIL; for low TIL it decreases, then "
        "increases again past a certain OIL — transactions abort later, "
        "wasting more operations."
    ),
}


def _engine_comparison_markdown(
    plan: MeasurementPlan,
    mpl: int = 8,
    progress: CellProgress | None = None,
) -> tuple[str, list[Measurement]]:
    """Four concurrency controls on the identical workload at one MPL."""
    from repro.engine.api import COMPARISON_ORDER, protocol_spec
    from repro.sim.system import SimulationConfig

    # One row per registry protocol: bound-relaxing engines run with the
    # paper's high bounds (TIL 100k / TEL 10k), strict engines with zero
    # epsilon.  Labels come from the registry too, so a new protocol
    # shows up here by being registered, not by editing this table.
    settings = tuple(
        (
            spec.label + (", high bounds" if spec.relaxed else ""),
            spec.name,
            100_000.0 if spec.relaxed else 0.0,
            10_000.0 if spec.relaxed else 0.0,
        )
        for spec in (protocol_spec(name) for name in COMPARISON_ORDER)
    )
    measurements = measure_many(
        [
            SimulationConfig(mpl=mpl, til=til, tel=tel, protocol=protocol)
            for _, protocol, til, tel in settings
        ],
        plan,
        progress=progress,
    )
    rows = []
    for (label, *_), measurement in zip(settings, measurements):
        deadlocks = sum(
            run.metrics.aborts_by_reason.get("deadlock", 0)
            for run in measurement.runs
        ) / len(measurement.runs)
        rows.append(
            (
                label,
                f"{measurement.throughput.mean:.2f}",
                f"{measurement.aborts.mean:.0f}",
                f"{deadlocks:.0f}",
                f"{measurement.inconsistent_operations.mean:.0f}",
            )
        )
    markdown = "\n".join(
        [
            "### Engine comparison — same workload, four concurrency controls",
            "",
            f"MPL = {mpl}, paper workload.  The paper notes ESR \"can be",
            "implemented using one of the many concurrency control",
            "mechanisms available\"; here are timestamp ordering (the paper's",
            "choice), Wu et al.'s lock-based divergence control, and the",
            "MVTO baseline section 5.1 contrasts (exact-but-stale reads).",
            "",
            "```",
            format_table(
                ["engine", "throughput", "aborts", "deadlocks", "inconsistent ops"],
                rows,
            ),
            "```",
            "",
        ]
    )
    return markdown, measurements


def _study_cells(measurements: list[Measurement]) -> list[CellResult]:
    return [cell for m in measurements for cell in m.cells]


def _runtime_markdown(
    plan: MeasurementPlan,
    study_cells: dict[str, list[CellResult]],
    total_wall_s: float,
) -> str:
    """The report's runtime section: per-study timings, failures, retries."""
    rows = []
    for study, cells in study_cells.items():
        walls = [c.wall_s for c in cells if c.ok]
        rows.append(
            (
                study,
                str(len(cells)),
                f"{sum(walls):.2f}",
                f"{max(walls, default=0.0):.2f}",
                str(sum(1 for c in cells if c.retried)),
                str(sum(1 for c in cells if not c.ok)),
            )
        )
    lines = [
        "## Runtime",
        "",
        f"Cells ran on {plan.max_workers} worker(s) "
        "(one cell = one (config, seed) repetition; results are "
        "reassembled in plan order, so estimates do not depend on the "
        "worker count).",
        "",
        "```",
        format_table(
            ["study", "cells", "cell s (sum)", "max cell s", "retried", "failed"],
            rows,
        ),
        "```",
        "",
    ]
    # Snapshot-cache tallies ride back in each RunResult (the perf
    # counters themselves live in the worker processes), so sum them
    # over every cell that ran with the cache enabled.
    cache_totals: dict[str, float] = {}
    for cells in study_cells.values():
        for cell in cells:
            if cell.result is not None and cell.result.cache:
                for name, value in cell.result.cache:
                    cache_totals[name] = cache_totals.get(name, 0.0) + value
    if cache_totals:
        lines.append(
            "Snapshot read cache (summed over cache-enabled cells): "
            f"{int(cache_totals.get('hits', 0)):,} hits, "
            f"{int(cache_totals.get('misses', 0)):,} misses, "
            f"{int(cache_totals.get('fallbacks', 0)):,} fallbacks, "
            f"{cache_totals.get('divergence_charged', 0.0):g} "
            "divergence charged."
        )
        lines.append("")
    problems = [
        (study, cell)
        for study, cells in study_cells.items()
        for cell in cells
        if not cell.ok or cell.retried
    ]
    if problems:
        lines.append("Cells that failed or needed a retry:")
        lines.append("")
        for study, cell in problems:
            config = cell.cell.config
            status = (
                f"failed: {cell.error}" if not cell.ok else "ok after retry"
            )
            lines.append(
                f"- {study}: mpl={config.mpl} til={config.til:g} "
                f"tel={config.tel:g} seed={cell.cell.seed} — {status} "
                f"(attempts={cell.attempts})"
            )
        lines.append("")
    lines.append(f"_Total regeneration time: {total_wall_s:.1f}s wall._")
    lines.append("")
    return "\n".join(lines)


def generate_experiments_markdown(
    plan: MeasurementPlan = PAPER_PLAN,
    progress: Callable[[str], None] | None = None,
    cell_progress: CellProgress | None = None,
) -> str:
    """Regenerate every experiment and render the full markdown report.

    ``progress`` receives one message per study; ``cell_progress``
    receives one call per completed repetition cell (the CLI uses it for
    per-cell progress lines).
    """

    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    started = time.time()
    lines = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        "Regenerated by `repro report`.  Absolute numbers are not expected",
        "to match the paper's 1993 DECstation LAN; the shape checks below",
        "encode the qualitative claims the paper makes about each figure.",
        "",
        f"Measurement plan: {plan.repetitions} repetition(s) × "
        f"{plan.duration_ms:g} ms simulated ({plan.warmup_ms:g} ms warm-up "
        "excluded), paper workload "
        f"({plan.workload.n_objects} objects, hot set "
        f"{plan.workload.hot_set_size}, w={plan.workload.mean_write_change:g}), "
        f"{plan.max_workers} worker(s).",
        "",
        "## Table 1 — inconsistency bound levels (paper section 7)",
        "",
        "```",
        format_table(
            ["level", "TIL", "TEL"],
            [
                (r["level"], f"{r['TIL']:,.0f}", f"{r['TEL']:,.0f}")
                for r in bounds_table()
            ],
        ),
        "```",
        "",
        "Reproduced exactly — these are inputs, not measurements.",
        "",
        "## Figures",
        "",
    ]
    study_cells: dict[str, list[CellResult]] = {}
    note("running MPL study (figures 7-10)...")
    shared_mpl = mpl_study(plan, progress=cell_progress)
    study_cells["MPL sweep (figs 7-10)"] = _study_cells(
        [m for per_mpl in shared_mpl.values() for m in per_mpl.values()]
    )
    for builder in (fig7, fig8, fig9, fig10):
        figure = builder(plan, study=shared_mpl)
        note(f"rendered {figure.figure_id}")
        lines.append(figure_markdown(figure, PAPER_EXPECTATIONS[figure.figure_id]))
    note("running TIL study (figure 11)...")
    shared_til = til_study(plan, progress=cell_progress)
    study_cells["TIL sweep (fig 11)"] = _study_cells(
        [m for per_til in shared_til.values() for m in per_til.values()]
    )
    figure = fig11(plan, study=shared_til)
    lines.append(figure_markdown(figure, PAPER_EXPECTATIONS["fig11"]))
    note("running OIL study (figures 12-13)...")
    shared_oil = oil_study(plan, progress=cell_progress)
    study_cells["OIL sweep (figs 12-13)"] = _study_cells(
        [m for per_oil in shared_oil.values() for m in per_oil.values()]
    )
    for builder in (fig12, fig13):
        figure = builder(plan, study=shared_oil)
        note(f"rendered {figure.figure_id}")
        lines.append(figure_markdown(figure, PAPER_EXPECTATIONS[figure.figure_id]))
    note("running hierarchy extension study...")
    from repro.experiments.extensions import ext_hierarchy, hierarchy_study

    hierarchy = hierarchy_study(plan, progress=cell_progress)
    study_cells["hierarchy extension"] = _study_cells(list(hierarchy.values()))
    lines.append("## Extensions (beyond the paper)")
    lines.append("")
    lines.append(
        figure_markdown(
            ext_hierarchy(plan, study=hierarchy),
            "Not in the paper — section 5.3.1 only notes that multi-level "
            "control carries 'a small price'.  Expectation: loose group "
            "limits behave identically to the flat two-level system; "
            "tight ones trade throughput for per-group accuracy.",
        )
    )
    note("running snapshot-cache extension study...")
    from repro.experiments.extensions import cache_study, ext_cache

    cache = cache_study(plan, progress=cell_progress)
    study_cells["snapshot-cache extension"] = _study_cells(
        [m for arm in cache.values() for m in arm.values()]
    )
    lines.append(
        figure_markdown(
            ext_cache(plan, study=cache),
            "Not in the paper — an engineering consequence of its model: "
            "the staleness a snapshot read observes is exactly the "
            "inconsistency the ledger meters.  Expectation: at TIL 0 the "
            "cached arm profits only from divergence-free reads; as the "
            "bounds loosen, bounded-staleness reads fit too and the gap "
            "grows.",
        )
    )
    note("running engine comparison (TSO / 2PL / MVTO)...")
    comparison, engine_measurements = _engine_comparison_markdown(
        plan, progress=cell_progress
    )
    study_cells["engine comparison"] = _study_cells(engine_measurements)
    lines.append(comparison)
    lines.append(_runtime_markdown(plan, study_cells, time.time() - started))
    return "\n".join(lines)
