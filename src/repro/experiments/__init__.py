"""The performance study: configs, runner, figures, analysis, reports."""

from repro.experiments.analysis import (
    ShapeCheck,
    check_figure,
    dominates,
    peak_x,
    thrashing_point,
)
from repro.experiments.config import (
    BOUND_STUDY_MPL,
    FAST_PLAN,
    MPL_RANGE,
    OIL_SWEEP_W,
    PAPER_PLAN,
    TIL_SWEEP,
    MeasurementPlan,
    bounds_table,
)
from repro.experiments.figures import (
    ALL_FIGURES,
    FigureResult,
    Series,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    mpl_study,
    oil_study,
    table1,
)
from repro.experiments.report import (
    ascii_chart,
    figure_markdown,
    figure_table,
    format_table,
    render_figure,
)
from repro.experiments.extensions import ext_hierarchy, hierarchy_study
from repro.experiments.reportgen import generate_experiments_markdown
from repro.experiments.runner import Estimate, Measurement, measure

__all__ = [
    "ShapeCheck",
    "check_figure",
    "dominates",
    "peak_x",
    "thrashing_point",
    "BOUND_STUDY_MPL",
    "FAST_PLAN",
    "MPL_RANGE",
    "OIL_SWEEP_W",
    "PAPER_PLAN",
    "TIL_SWEEP",
    "MeasurementPlan",
    "bounds_table",
    "ALL_FIGURES",
    "FigureResult",
    "Series",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "mpl_study",
    "oil_study",
    "table1",
    "ascii_chart",
    "figure_markdown",
    "figure_table",
    "format_table",
    "render_figure",
    "Estimate",
    "Measurement",
    "measure",
    "ext_hierarchy",
    "hierarchy_study",
    "generate_experiments_markdown",
]
