"""One definition per paper figure/table (section 8).

Each ``figN`` function reruns the corresponding experiment and returns a
:class:`FigureResult` — labelled series of (x, estimate) points carrying
exactly what the paper plots:

====== ============================================== =====================
Figure x-axis                                          y-axis
====== ============================================== =====================
7      multiprogramming level (MPL)                    throughput (tx/s)
8      MPL                                             successful inconsistent operations
9      MPL                                             number of aborts (retries)
10     MPL                                             total operations (R + W)
11     transaction import limit (TIL), TEL per series  throughput
12     object import limit (OIL, units of w), TIL/series throughput
13     OIL (units of w), TIL per series                average operations per transaction
====== ============================================== =====================

Figures 7–10 come from one MPL sweep and Figures 12–13 from one OIL
sweep, so :func:`mpl_study` / :func:`oil_study` run the simulations once
and the figure functions are cheap views over them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.bounds import (
    HIGH_EPSILON,
    LOW_EPSILON,
    MEDIUM_EPSILON,
    STANDARD_LEVELS,
    EpsilonLevel,
)
from repro.experiments.config import (
    BOUND_STUDY_MPL,
    MPL_RANGE,
    OIL_SWEEP_W,
    PAPER_PLAN,
    TIL_SWEEP,
    MeasurementPlan,
    bounds_table,
)
from repro.experiments.runner import (
    CellProgress,
    Estimate,
    Measurement,
    measure_many,
)
from repro.sim.system import SimulationConfig

__all__ = [
    "Series",
    "FigureResult",
    "mpl_study",
    "til_study",
    "oil_study",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "table1",
    "ALL_FIGURES",
]


@dataclass(frozen=True)
class Series:
    """One labelled curve: x values and aggregated y estimates."""

    label: str
    x: tuple[float, ...]
    y: tuple[Estimate, ...]

    def means(self) -> tuple[float, ...]:
        return tuple(e.mean for e in self.y)


@dataclass(frozen=True)
class FigureResult:
    """A regenerated figure: its axes and series, ready to render."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    series: tuple[Series, ...]
    notes: str = ""

    def series_by_label(self, label: str) -> Series:
        for series in self.series:
            if series.label == label:
                return series
        raise KeyError(f"no series labelled {label!r} in {self.figure_id}")


# -- shared sweeps ------------------------------------------------------------------


def mpl_study(
    plan: MeasurementPlan = PAPER_PLAN,
    levels: tuple[EpsilonLevel, ...] = STANDARD_LEVELS,
    mpls: tuple[int, ...] = MPL_RANGE,
    progress: CellProgress | None = None,
) -> dict[str, dict[int, Measurement]]:
    """The MPL sweep behind Figures 7–10.

    OIL and OEL stay unbounded (the paper holds them "constant at high
    values so that they do not affect the results").  Every (level, MPL,
    seed) cell of the sweep goes into one shared worker pool.
    """
    points = [(level, mpl) for level in levels for mpl in mpls]
    measurements = measure_many(
        [
            SimulationConfig(mpl=mpl, til=level.til, tel=level.tel)
            for level, mpl in points
        ],
        plan,
        progress=progress,
    )
    study: dict[str, dict[int, Measurement]] = {}
    for (level, mpl), measurement in zip(points, measurements):
        study.setdefault(level.name, {})[mpl] = measurement
    return study


def til_study(
    plan: MeasurementPlan = PAPER_PLAN,
    til_sweep: tuple[float, ...] = TIL_SWEEP,
    tels: tuple[float, ...] = (1_000.0, 5_000.0, 10_000.0),
    mpl: int = BOUND_STUDY_MPL,
    progress: CellProgress | None = None,
) -> dict[float, dict[float, Measurement]]:
    """The TIL × TEL sweep behind Figure 11 (one pooled batch)."""
    points = [(tel, til) for tel in tels for til in til_sweep]
    measurements = measure_many(
        [SimulationConfig(mpl=mpl, til=til, tel=tel) for tel, til in points],
        plan,
        progress=progress,
    )
    study: dict[float, dict[float, Measurement]] = {}
    for (tel, til), measurement in zip(points, measurements):
        study.setdefault(tel, {})[til] = measurement
    return study


def oil_study(
    plan: MeasurementPlan = PAPER_PLAN,
    levels: tuple[EpsilonLevel, ...] = (LOW_EPSILON, MEDIUM_EPSILON, HIGH_EPSILON),
    oil_sweep_w: tuple[float, ...] = OIL_SWEEP_W,
    mpl: int = BOUND_STUDY_MPL,
    progress: CellProgress | None = None,
) -> dict[str, dict[float, Measurement]]:
    """The OIL sweep behind Figures 12–13 (OIL in units of w)."""
    w = plan.workload.mean_write_change
    points = [(level, oil_w) for level in levels for oil_w in oil_sweep_w]
    measurements = measure_many(
        [
            SimulationConfig(
                mpl=mpl,
                til=level.til,
                tel=level.tel,
                oil=math.inf if math.isinf(oil_w) else oil_w * w,
            )
            for level, oil_w in points
        ],
        plan,
        progress=progress,
    )
    study: dict[str, dict[float, Measurement]] = {}
    for (level, oil_w), measurement in zip(points, measurements):
        study.setdefault(level.name, {})[oil_w] = measurement
    return study


def _mpl_figure(
    figure_id: str,
    title: str,
    y_label: str,
    metric: str,
    plan: MeasurementPlan,
    study: dict[str, dict[int, Measurement]] | None,
    levels: tuple[EpsilonLevel, ...],
    notes: str = "",
    progress: CellProgress | None = None,
) -> FigureResult:
    if study is None:
        study = mpl_study(plan, levels=levels, progress=progress)
    series = []
    for level in levels:
        if level.name not in study:
            continue
        per_mpl = study[level.name]
        xs = tuple(sorted(per_mpl))
        ys = tuple(per_mpl[x].metric(metric) for x in xs)
        series.append(Series(label=level.name, x=tuple(float(x) for x in xs), y=ys))
    return FigureResult(
        figure_id=figure_id,
        title=title,
        x_label="multiprogramming level",
        y_label=y_label,
        series=tuple(series),
        notes=notes,
    )


# -- the figures -----------------------------------------------------------------------


def fig7(
    plan: MeasurementPlan = PAPER_PLAN,
    study: dict[str, dict[int, Measurement]] | None = None,
    progress: CellProgress | None = None,
) -> FigureResult:
    """Figure 7 — Throughput vs multiprogramming level."""
    return _mpl_figure(
        "fig7",
        "Throughput vs Multiprogramming Level",
        "throughput (transactions/second)",
        "throughput",
        plan,
        study,
        STANDARD_LEVELS,
        notes=(
            "OIL/OEL unbounded.  Expected shape: throughput ordered by "
            "bound level; thrashing point shifts to higher MPL as bounds "
            "increase."
        ),
        progress=progress,
    )


def fig8(
    plan: MeasurementPlan = PAPER_PLAN,
    study: dict[str, dict[int, Measurement]] | None = None,
    progress: CellProgress | None = None,
) -> FigureResult:
    """Figure 8 — Successful inconsistent operations vs MPL.

    The zero-epsilon level is omitted, as in the paper: under SR no
    inconsistent operation is ever admitted.
    """
    return _mpl_figure(
        "fig8",
        "Successful Inconsistent Operations vs Multiprogramming Level",
        "successful inconsistent operations",
        "inconsistent_operations",
        plan,
        study,
        (LOW_EPSILON, MEDIUM_EPSILON, HIGH_EPSILON),
        notes="Increases with both MPL and the inconsistency bounds.",
        progress=progress,
    )


def fig9(
    plan: MeasurementPlan = PAPER_PLAN,
    study: dict[str, dict[int, Measurement]] | None = None,
    progress: CellProgress | None = None,
) -> FigureResult:
    """Figure 9 — Number of aborts (retries) vs MPL."""
    return _mpl_figure(
        "fig9",
        "Number of Aborts vs Multiprogramming Level",
        "aborts (retries)",
        "aborts",
        plan,
        study,
        STANDARD_LEVELS,
        notes=(
            "Aborts are nearly zero at high bounds, shoot up as bounds "
            "shrink, and are highest for zero-epsilon (SR)."
        ),
        progress=progress,
    )


def fig10(
    plan: MeasurementPlan = PAPER_PLAN,
    study: dict[str, dict[int, Measurement]] | None = None,
    progress: CellProgress | None = None,
) -> FigureResult:
    """Figure 10 — Total operations (reads + writes) vs MPL."""
    return _mpl_figure(
        "fig10",
        "Number of Operations (R+W) vs Multiprogramming Level",
        "total operations executed",
        "total_operations",
        plan,
        study,
        STANDARD_LEVELS,
        notes=(
            "At high bounds the total equals the useful-work floor; "
            "operations above the same commit count elsewhere measure "
            "wasted (aborted) work."
        ),
        progress=progress,
    )


def fig11(
    plan: MeasurementPlan = PAPER_PLAN,
    til_sweep: tuple[float, ...] = TIL_SWEEP,
    tels: tuple[float, ...] = (1_000.0, 5_000.0, 10_000.0),
    mpl: int = BOUND_STUDY_MPL,
    study: dict[float, dict[float, Measurement]] | None = None,
    progress: CellProgress | None = None,
) -> FigureResult:
    """Figure 11 — Throughput vs TIL, with TEL held at constant levels."""
    if study is None:
        study = til_study(plan, til_sweep, tels, mpl, progress=progress)
    series = []
    for tel in tels:
        per_til = study[tel]
        xs = tuple(sorted(per_til))
        series.append(
            Series(
                label=f"TEL={tel:g}",
                x=xs,
                y=tuple(per_til[til].throughput for til in xs),
            )
        )
    return FigureResult(
        figure_id="fig11",
        title="Throughput vs Transaction Import Limit (TEL varies)",
        x_label="transaction import limit (TIL)",
        y_label="throughput (transactions/second)",
        series=tuple(series),
        notes=(
            f"MPL held at {mpl}.  Throughput rises with TIL, steepest at "
            "small-to-medium values."
        ),
    )


def _oil_figure(
    figure_id: str,
    title: str,
    y_label: str,
    metric: str,
    plan: MeasurementPlan,
    study: dict[str, dict[float, Measurement]] | None,
    notes: str,
    progress: CellProgress | None = None,
) -> FigureResult:
    if study is None:
        study = oil_study(plan, progress=progress)
    series = []
    for level_name, per_oil in study.items():
        xs = tuple(sorted(per_oil))
        ys = tuple(per_oil[x].metric(metric) for x in xs)
        til = {level.name: level.til for level in STANDARD_LEVELS}[level_name]
        series.append(Series(label=f"TIL={til:g}", x=xs, y=ys))
    return FigureResult(
        figure_id=figure_id,
        title=title,
        x_label="object import limit (units of w)",
        y_label=y_label,
        series=tuple(series),
        notes=notes,
    )


def fig12(
    plan: MeasurementPlan = PAPER_PLAN,
    study: dict[str, dict[float, Measurement]] | None = None,
    progress: CellProgress | None = None,
) -> FigureResult:
    """Figure 12 — Throughput vs OIL (TIL varies), MPL constant."""
    return _oil_figure(
        "fig12",
        "Throughput vs Object Import Limit (TIL varies)",
        "throughput (transactions/second)",
        "throughput",
        plan,
        study,
        notes=(
            "For low TIL the throughput peaks at an intermediate OIL: "
            "low OIL rejects too much, high OIL admits doomed operations "
            "whose transactions abort later after wasting work."
        ),
        progress=progress,
    )


def fig13(
    plan: MeasurementPlan = PAPER_PLAN,
    study: dict[str, dict[float, Measurement]] | None = None,
    progress: CellProgress | None = None,
) -> FigureResult:
    """Figure 13 — Average operations per transaction vs OIL."""
    return _oil_figure(
        "fig13",
        "Average Number of Operations per Transaction (TIL varies)",
        "operations per committed transaction",
        "operations_per_commit",
        plan,
        study,
        notes=(
            "Includes operations executed by aborted incarnations.  Falls "
            "with OIL at high TIL; for low TIL it falls then rises again "
            "at large OIL (late aborts waste more operations)."
        ),
        progress=progress,
    )


def table1() -> list[dict]:
    """The section 7 bound-levels table (no simulation needed)."""
    return bounds_table()


def _ext_hierarchy(
    plan: MeasurementPlan = PAPER_PLAN,
    progress: CellProgress | None = None,
) -> FigureResult:
    # Imported lazily to avoid a circular import at module load.
    from repro.experiments.extensions import ext_hierarchy

    return ext_hierarchy(plan, progress=progress)


def _ext_cache(
    plan: MeasurementPlan = PAPER_PLAN,
    progress: CellProgress | None = None,
) -> FigureResult:
    # Imported lazily to avoid a circular import at module load.
    from repro.experiments.extensions import ext_cache

    return ext_cache(plan, progress=progress)


#: Registry used by the CLI and the report generator.
ALL_FIGURES = {
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "ext_hierarchy": _ext_hierarchy,
    "ext_cache": _ext_cache,
}
