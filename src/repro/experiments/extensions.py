"""Extension experiments beyond the paper's figures.

The paper's evaluation restricts itself to the two-level hierarchy
(transaction + object).  Its section 3 contribution, however, is the
*multi-level* hierarchy, with section 5.3.1 noting only that hierarchical
control "does not come free of charge".  This module quantifies that:

:func:`hierarchy_study` runs the paper workload with every query
declaring group limits over a three-level catalog (transaction → hot →
partition groups → objects), at several strictness settings, measuring
the throughput/accuracy trade-off and the control overhead.
"""

from __future__ import annotations

from repro.experiments.config import BOUND_STUDY_MPL, PAPER_PLAN, MeasurementPlan
from repro.experiments.figures import FigureResult, Series
from repro.experiments.runner import CellProgress, Measurement, measure_many
from repro.sim.system import SimulationConfig
from repro.workload.generator import HOT_GROUP, partition_group

__all__ = [
    "HIERARCHY_SETTINGS",
    "hierarchy_study",
    "ext_hierarchy",
    "CACHE_STUDY_TILS",
    "cache_study",
    "ext_cache",
]


def _limits(spec, hot_limit: float, partition_mult: float):
    """Group-limit tuples: one on 'hot', one per partition subgroup."""
    w = spec.mean_write_change
    return ((HOT_GROUP, hot_limit),) + tuple(
        (partition_group(index), partition_mult * w)
        for index in range(spec.n_partitions)
    )


def hierarchy_settings(spec) -> dict[str, tuple[tuple[str, float], ...] | None]:
    """Named strictness settings for the hierarchical-bounds study."""
    return {
        "flat (no groups)": None,
        "loose groups": _limits(spec, 100_000.0, 50.0),
        "medium groups": _limits(spec, 50_000.0, 4.0),
        "tight groups": _limits(spec, 10_000.0, 1.0),
    }


#: Backwards-friendly alias used in docs.
HIERARCHY_SETTINGS = hierarchy_settings


def hierarchy_study(
    plan: MeasurementPlan = PAPER_PLAN,
    mpl: int = BOUND_STUDY_MPL,
    progress: CellProgress | None = None,
) -> dict[str, Measurement]:
    """Measure each strictness setting at high transaction bounds.

    All settings' repetition cells are submitted to the shared worker
    pool in one batch.
    """
    settings = hierarchy_settings(plan.workload)
    measurements = measure_many(
        [
            SimulationConfig(
                mpl=mpl,
                til=100_000.0,
                tel=10_000.0,
                query_group_limits=limits,
            )
            for limits in settings.values()
        ],
        plan,
        progress=progress,
    )
    return dict(zip(settings, measurements))


#: Transaction import limits swept by the snapshot-cache ablation.  Zero
#: is the SR-equivalent setting (the cache can only serve reads with no
#: divergence at all); the top of the range lets nearly every read hit.
CACHE_STUDY_TILS: tuple[float, ...] = (0.0, 10.0, 100.0, 1_000.0, 10_000.0)


def cache_study(
    plan: MeasurementPlan = PAPER_PLAN,
    mpl: int = BOUND_STUDY_MPL,
    tils: tuple[float, ...] = CACHE_STUDY_TILS,
    progress: CellProgress | None = None,
) -> dict[str, dict[float, Measurement]]:
    """Ablate the snapshot read cache across the epsilon range.

    For each TIL, the identical workload runs once with the cache off
    (every read through the engine service station) and once with it on
    (bounded-staleness reads served in zero simulated time).  Both
    arms' repetition cells go to the shared worker pool in one batch.
    """
    arms = {"cache off": False, "cache on": True}
    configs = [
        SimulationConfig(
            mpl=mpl, til=til, tel=til, snapshot_cache=enabled
        )
        for enabled in arms.values()
        for til in tils
    ]
    measurements = measure_many(configs, plan, progress=progress)
    study: dict[str, dict[float, Measurement]] = {}
    for index, name in enumerate(arms):
        start = index * len(tils)
        study[name] = dict(zip(tils, measurements[start : start + len(tils)]))
    return study


def ext_cache(
    plan: MeasurementPlan = PAPER_PLAN,
    study: dict[str, dict[float, Measurement]] | None = None,
    progress: CellProgress | None = None,
) -> FigureResult:
    """Extension figure: throughput vs TIL, snapshot cache off and on.

    The gap between the curves is the serving-layer value of the cache:
    at TIL 0 it comes only from divergence-free reads (an object with
    any staleness or pending write falls back to the engine); as the
    bounds loosen, bounded-staleness reads start to fit as well and the
    cached arm's advantage grows.
    """
    if study is None:
        study = cache_study(plan, progress=progress)
    series = tuple(
        Series(
            label=f"throughput (tx/s), {name}",
            x=tuple(sorted(points)),
            y=tuple(points[til].throughput for til in sorted(points)),
        )
        for name, points in study.items()
    )
    return FigureResult(
        figure_id="ext_cache",
        title="Epsilon snapshot cache: throughput vs inconsistency bound",
        x_label="transaction import/export limit (TIL = TEL)",
        y_label="throughput (tx/s)",
        series=series,
        notes=(
            "Extension beyond the paper: bounded-staleness query reads "
            "served from a divergence-tracked snapshot store in zero "
            "service time, admission-checked against the full bound "
            "hierarchy.  The off/on gap quantifies how much serving-path "
            "work epsilon buys back."
        ),
    )


def ext_hierarchy(
    plan: MeasurementPlan = PAPER_PLAN,
    study: dict[str, Measurement] | None = None,
    progress: CellProgress | None = None,
) -> FigureResult:
    """Extension figure: throughput and aborts vs group-limit strictness.

    The x axis indexes the strictness settings (0 = flat … 3 = tight);
    two series carry throughput and aborts.  Loose group limits must cost
    nothing (identical to flat); tightening them trades throughput for
    per-group accuracy, exactly as OIL does at the object level.
    """
    if study is None:
        study = hierarchy_study(plan, progress=progress)
    names = list(study)
    xs = tuple(float(i) for i in range(len(names)))
    throughput = Series(
        label="throughput (tx/s)",
        x=xs,
        y=tuple(study[name].throughput for name in names),
    )
    aborts = Series(
        label="aborts",
        x=xs,
        y=tuple(study[name].aborts for name in names),
    )
    return FigureResult(
        figure_id="ext_hierarchy",
        title="Hierarchical group limits: strictness vs throughput",
        x_label=" / ".join(f"{i}={name}" for i, name in enumerate(names)),
        y_label="throughput (tx/s) / aborts",
        series=(throughput, aborts),
        notes=(
            "Extension beyond the paper: three-level hierarchy "
            "(transaction -> hot -> partition groups -> objects) on every "
            "query.  Loose limits are free; tight limits trade throughput "
            "for per-group accuracy."
        ),
    )
