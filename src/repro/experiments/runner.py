"""Running measured experiments: repetitions, aggregation, confidence.

The paper repeats each test "a few times to eliminate any disturbances"
and reports that 90 % confidence intervals lie within ±3 % of the mean.
:func:`measure` mirrors that: it runs one simulation configuration under
``repetitions`` different seeds and aggregates each metric into a
:class:`Estimate` (mean, half-width of the 90 % confidence interval,
per-repetition values).

Execution backend
-----------------

Every repetition is a *cell* — one fully resolved ``(config, seed)``
pair.  :func:`run_cells` fans cells out across a shared
``ProcessPoolExecutor`` (reused across calls, so a whole figure sweep or
report runs in one pool) and reassembles the results in submission
order.  Because a cell's outcome depends only on its configuration —
the seed is explicit, nothing is shared between cells — the aggregated
estimates are bit-identical regardless of worker count.  Each cell
records its own wall-clock time; a crashed worker gets one retry before
the cell is recorded as failed, and a per-cell timeout guards against
runaway configurations.  :func:`measure_many` batches several
configurations' cells into a single ``run_cells`` call so sweeps submit
every point to the pool at once instead of nesting serial loops.
"""

from __future__ import annotations

import math
import os
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as CellTimeout
from dataclasses import dataclass, field, replace
from typing import Callable, Sequence

from repro.errors import ExperimentError
from repro.experiments.config import MeasurementPlan
from repro.sim.system import RunResult, SimulationConfig, run_simulation

__all__ = [
    "Cell",
    "CellResult",
    "Estimate",
    "Measurement",
    "measure",
    "measure_many",
    "run_cells",
    "shutdown_pool",
    "student_t_90",
]

# Two-sided 90 % Student-t critical values by degrees of freedom (1..30).
_T90 = (
    6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812,
    1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725,
    1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699, 1.697,
)


def student_t_90(degrees_of_freedom: int) -> float:
    """Two-sided 90 % t critical value (≈1.645 for large samples)."""
    if degrees_of_freedom < 1:
        return float("nan")
    if degrees_of_freedom <= len(_T90):
        return _T90[degrees_of_freedom - 1]
    return 1.645


@dataclass(frozen=True)
class Estimate:
    """Mean of a metric over repetitions, with a 90 % CI half-width."""

    mean: float
    half_width: float
    samples: tuple[float, ...]

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "Estimate":
        values = tuple(float(v) for v in samples)
        n = len(values)
        mean = sum(values) / n
        if n < 2:
            return cls(mean=mean, half_width=0.0, samples=values)
        variance = sum((v - mean) ** 2 for v in values) / (n - 1)
        half = student_t_90(n - 1) * math.sqrt(variance / n)
        return cls(mean=mean, half_width=half, samples=values)

    @property
    def relative_half_width(self) -> float:
        """CI half-width as a fraction of the mean (paper quotes ±3 %)."""
        if self.mean == 0:
            return 0.0
        return self.half_width / abs(self.mean)

    def __format__(self, spec: str) -> str:
        if not spec:
            spec = ".2f"
        return f"{self.mean:{spec}} ± {self.half_width:{spec}}"


# -- cells: the unit of parallel execution ------------------------------------------


@dataclass(frozen=True)
class Cell:
    """One repetition: a fully resolved configuration and its explicit seed."""

    config: SimulationConfig
    seed: int
    #: Caller-defined label carried through to results (e.g. sweep point).
    key: tuple = ()


@dataclass(frozen=True)
class CellResult:
    """Outcome of one cell: the run (or an error) plus execution metadata."""

    cell: Cell
    result: RunResult | None
    #: Wall-clock seconds the simulation took inside its worker.
    wall_s: float
    error: str | None = None
    #: Executor attempts consumed (2 = the cell was retried after a crash).
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.result is not None

    @property
    def retried(self) -> bool:
        return self.attempts > 1


#: Signature of the per-cell progress callback: (result, done, total).
CellProgress = Callable[[CellResult, int, int], None]


def _execute_cell(config: SimulationConfig) -> tuple[RunResult, float]:
    """Worker entry point: run one cell, timing it inside the worker."""
    started = time.perf_counter()
    result = run_simulation(config)
    return result, time.perf_counter() - started


# The pool is module-level and reused across run_cells() calls, so one
# report's successive studies share a single set of warm workers.
_POOL: ProcessPoolExecutor | None = None
_POOL_WORKERS = 0


def _shared_pool(max_workers: int) -> ProcessPoolExecutor:
    global _POOL, _POOL_WORKERS
    if _POOL is None or _POOL_WORKERS != max_workers:
        shutdown_pool()
        _POOL = ProcessPoolExecutor(max_workers=max_workers)
        _POOL_WORKERS = max_workers
    return _POOL


def shutdown_pool(wait: bool = True) -> None:
    """Tear down the shared worker pool (tests; crash recovery).

    The default joins the worker processes, so a clean exit never leaves
    children behind to race the interpreter's own teardown.  The crash
    path passes ``wait=False``: a broken pool's workers may be hung or
    dead, and the recovery code must not block on them.
    """
    global _POOL
    if _POOL is not None:
        _POOL.shutdown(wait=wait, cancel_futures=True)
        _POOL = None


def run_cells(
    cells: Sequence[Cell],
    max_workers: int | None = None,
    timeout_s: float | None = None,
    progress: CellProgress | None = None,
    retries: int = 1,
) -> list[CellResult]:
    """Execute cells, possibly in parallel; results come back in cell order.

    ``max_workers`` of ``None`` uses every core; ``1`` runs in-process
    (no pool, no pickling).  ``timeout_s`` bounds how long the collector
    blocks on any one cell once its predecessors have been collected —
    a timed-out cell is recorded as failed, not retried.  A cell whose
    worker *crashes* (``BrokenExecutor``) is retried ``retries`` times in
    a fresh pool before being recorded as failed.  Deterministic worker
    exceptions are recorded as failures immediately: rerunning the same
    configuration would fail the same way.
    """
    cells = list(cells)
    total = len(cells)
    results: list[CellResult | None] = [None] * total
    completed = 0

    def record(index: int, cell_result: CellResult) -> None:
        nonlocal completed
        results[index] = cell_result
        completed += 1
        if progress is not None:
            progress(cell_result, completed, total)

    workers = max_workers if max_workers is not None else (os.cpu_count() or 1)
    if workers <= 1 or total <= 1:
        for index, cell in enumerate(cells):
            started = time.perf_counter()
            try:
                run, wall = _execute_cell(cell.config)
                record(index, CellResult(cell, run, wall))
            except Exception as exc:  # noqa: BLE001 — cell failures are data
                record(
                    index,
                    CellResult(
                        cell,
                        None,
                        time.perf_counter() - started,
                        error=f"{type(exc).__name__}: {exc}",
                    ),
                )
        return [r for r in results if r is not None]

    attempts = dict.fromkeys(range(total), 0)
    pending = list(range(total))
    while pending:
        pool = _shared_pool(workers)
        submitted = []
        for index in pending:
            attempts[index] += 1
            submitted.append(
                (index, pool.submit(_execute_cell, cells[index].config))
            )
        crashed: list[int] = []
        pool_broken = False
        for index, future in submitted:
            cell = cells[index]
            try:
                run, wall = future.result(timeout=timeout_s)
                record(index, CellResult(cell, run, wall, attempts=attempts[index]))
            except CellTimeout:
                future.cancel()
                record(
                    index,
                    CellResult(
                        cell,
                        None,
                        timeout_s or 0.0,
                        error=f"timeout after {timeout_s:g}s",
                        attempts=attempts[index],
                    ),
                )
            except BrokenExecutor:
                pool_broken = True
                if attempts[index] <= retries:
                    crashed.append(index)
                else:
                    record(
                        index,
                        CellResult(
                            cell,
                            None,
                            0.0,
                            error="worker crashed",
                            attempts=attempts[index],
                        ),
                    )
            except Exception as exc:  # noqa: BLE001 — cell failures are data
                record(
                    index,
                    CellResult(
                        cell,
                        None,
                        0.0,
                        error=f"{type(exc).__name__}: {exc}",
                        attempts=attempts[index],
                    ),
                )
        if pool_broken:
            # A crashed worker leaves the pool unusable and possibly
            # wedged: don't join, just drop it and start fresh.
            shutdown_pool(wait=False)
        pending = crashed
    return [r for r in results if r is not None]


# -- aggregation ---------------------------------------------------------------------


@dataclass(frozen=True)
class Measurement:
    """Aggregated metrics for one simulation configuration."""

    config: SimulationConfig
    throughput: Estimate
    aborts: Estimate
    inconsistent_operations: Estimate
    total_operations: Estimate
    operations_per_commit: Estimate
    commits: Estimate
    runs: tuple[RunResult, ...]
    #: Per-cell execution record (timings, retries, failures), plan order.
    cells: tuple[CellResult, ...] = field(default=(), compare=False)

    def metric(self, name: str) -> Estimate:
        """Look up an aggregated metric by its attribute name."""
        value = getattr(self, name)
        if not isinstance(value, Estimate):
            raise AttributeError(f"{name!r} is not an aggregated metric")
        return value

    @property
    def failed_cells(self) -> tuple[CellResult, ...]:
        return tuple(c for c in self.cells if not c.ok)

    @property
    def retried_cells(self) -> tuple[CellResult, ...]:
        return tuple(c for c in self.cells if c.retried)


def _apply_plan(config: SimulationConfig, plan: MeasurementPlan) -> SimulationConfig:
    overrides: dict[str, object] = {
        "duration_ms": plan.duration_ms,
        "warmup_ms": plan.warmup_ms,
        "workload": plan.workload,
    }
    if plan.service_time_ms is not None:
        overrides["service_time_ms"] = plan.service_time_ms
    return replace(config, **overrides)


def _plan_cells(
    config: SimulationConfig, plan: MeasurementPlan, key: tuple = ()
) -> list[Cell]:
    return [
        Cell(config=replace(config, seed=seed), seed=seed, key=key + (seed,))
        for seed in plan.seeds()
    ]


def _aggregate(
    config: SimulationConfig, cell_results: Sequence[CellResult]
) -> Measurement:
    runs = [cr.result for cr in cell_results if cr.ok]
    if not runs:
        errors = "; ".join(cr.error or "unknown" for cr in cell_results)
        raise ExperimentError(
            f"all {len(cell_results)} cells failed for mpl={config.mpl} "
            f"til={config.til:g} tel={config.tel:g}: {errors}"
        )
    return Measurement(
        config=config,
        throughput=Estimate.from_samples([r.throughput for r in runs]),
        aborts=Estimate.from_samples([r.aborts for r in runs]),
        inconsistent_operations=Estimate.from_samples(
            [r.inconsistent_operations for r in runs]
        ),
        total_operations=Estimate.from_samples(
            [r.total_operations for r in runs]
        ),
        operations_per_commit=Estimate.from_samples(
            [r.operations_per_commit for r in runs]
        ),
        commits=Estimate.from_samples([r.commits for r in runs]),
        runs=tuple(runs),
        cells=tuple(cell_results),
    )


def measure(
    config: SimulationConfig,
    plan: MeasurementPlan,
    progress: Callable[[RunResult], None] | None = None,
    max_workers: int | None = None,
    timeout_s: float | None = None,
) -> Measurement:
    """Run ``config`` once per plan seed and aggregate the metrics.

    ``max_workers``/``timeout_s`` override the plan's knobs; the default
    honours ``plan.max_workers`` (1 = the historical serial behaviour).
    """
    config = _apply_plan(config, plan)
    cell_results = run_cells(
        _plan_cells(config, plan),
        max_workers=max_workers if max_workers is not None else plan.max_workers,
        timeout_s=timeout_s if timeout_s is not None else plan.cell_timeout_s,
    )
    if progress is not None:
        for cell_result in cell_results:
            if cell_result.ok:
                progress(cell_result.result)
    return _aggregate(config, cell_results)


def measure_many(
    configs: Sequence[SimulationConfig],
    plan: MeasurementPlan,
    max_workers: int | None = None,
    timeout_s: float | None = None,
    progress: CellProgress | None = None,
) -> list[Measurement]:
    """Measure several configurations through one shared cell pool.

    All ``len(configs) × plan.repetitions`` cells are submitted in a
    single :func:`run_cells` batch — a whole sweep keeps every worker
    busy instead of parallelising only within one sweep point — and the
    measurements come back in ``configs`` order, each aggregated from
    its cells in plan-seed order.
    """
    applied = [_apply_plan(config, plan) for config in configs]
    cells: list[Cell] = []
    spans: list[tuple[int, int]] = []
    for index, config in enumerate(applied):
        start = len(cells)
        cells.extend(_plan_cells(config, plan, key=(index,)))
        spans.append((start, len(cells)))
    cell_results = run_cells(
        cells,
        max_workers=max_workers if max_workers is not None else plan.max_workers,
        timeout_s=timeout_s if timeout_s is not None else plan.cell_timeout_s,
        progress=progress,
    )
    return [
        _aggregate(applied[index], cell_results[start:stop])
        for index, (start, stop) in enumerate(spans)
    ]
