"""Running measured experiments: repetitions, aggregation, confidence.

The paper repeats each test "a few times to eliminate any disturbances"
and reports that 90 % confidence intervals lie within ±3 % of the mean.
:func:`measure` mirrors that: it runs one simulation configuration under
``repetitions`` different seeds and aggregates each metric into a
:class:`Estimate` (mean, half-width of the 90 % confidence interval,
per-repetition values).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, Sequence

from repro.experiments.config import MeasurementPlan
from repro.sim.system import RunResult, SimulationConfig, run_simulation

__all__ = ["Estimate", "Measurement", "measure", "student_t_90"]

# Two-sided 90 % Student-t critical values by degrees of freedom (1..30).
_T90 = (
    6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812,
    1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725,
    1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699, 1.697,
)


def student_t_90(degrees_of_freedom: int) -> float:
    """Two-sided 90 % t critical value (≈1.645 for large samples)."""
    if degrees_of_freedom < 1:
        return float("nan")
    if degrees_of_freedom <= len(_T90):
        return _T90[degrees_of_freedom - 1]
    return 1.645


@dataclass(frozen=True)
class Estimate:
    """Mean of a metric over repetitions, with a 90 % CI half-width."""

    mean: float
    half_width: float
    samples: tuple[float, ...]

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "Estimate":
        values = tuple(float(v) for v in samples)
        n = len(values)
        mean = sum(values) / n
        if n < 2:
            return cls(mean=mean, half_width=0.0, samples=values)
        variance = sum((v - mean) ** 2 for v in values) / (n - 1)
        half = student_t_90(n - 1) * math.sqrt(variance / n)
        return cls(mean=mean, half_width=half, samples=values)

    @property
    def relative_half_width(self) -> float:
        """CI half-width as a fraction of the mean (paper quotes ±3 %)."""
        if self.mean == 0:
            return 0.0
        return self.half_width / abs(self.mean)

    def __format__(self, spec: str) -> str:
        if not spec:
            spec = ".2f"
        return f"{self.mean:{spec}} ± {self.half_width:{spec}}"


@dataclass(frozen=True)
class Measurement:
    """Aggregated metrics for one simulation configuration."""

    config: SimulationConfig
    throughput: Estimate
    aborts: Estimate
    inconsistent_operations: Estimate
    total_operations: Estimate
    operations_per_commit: Estimate
    commits: Estimate
    runs: tuple[RunResult, ...]

    def metric(self, name: str) -> Estimate:
        """Look up an aggregated metric by its attribute name."""
        value = getattr(self, name)
        if not isinstance(value, Estimate):
            raise AttributeError(f"{name!r} is not an aggregated metric")
        return value


def _apply_plan(config: SimulationConfig, plan: MeasurementPlan) -> SimulationConfig:
    overrides: dict[str, object] = {
        "duration_ms": plan.duration_ms,
        "warmup_ms": plan.warmup_ms,
        "workload": plan.workload,
    }
    if plan.service_time_ms is not None:
        overrides["service_time_ms"] = plan.service_time_ms
    return replace(config, **overrides)


def measure(
    config: SimulationConfig,
    plan: MeasurementPlan,
    progress: Callable[[RunResult], None] | None = None,
) -> Measurement:
    """Run ``config`` once per plan seed and aggregate the metrics."""
    config = _apply_plan(config, plan)
    runs: list[RunResult] = []
    for seed in plan.seeds():
        result = run_simulation(replace(config, seed=seed))
        runs.append(result)
        if progress is not None:
            progress(result)
    return Measurement(
        config=config,
        throughput=Estimate.from_samples([r.throughput for r in runs]),
        aborts=Estimate.from_samples([r.aborts for r in runs]),
        inconsistent_operations=Estimate.from_samples(
            [r.inconsistent_operations for r in runs]
        ),
        total_operations=Estimate.from_samples(
            [r.total_operations for r in runs]
        ),
        operations_per_commit=Estimate.from_samples(
            [r.operations_per_commit for r in runs]
        ),
        commits=Estimate.from_samples([r.commits for r in runs]),
        runs=tuple(runs),
    )
