"""Rendering: ASCII tables, terminal line charts, EXPERIMENTS.md.

The prototype has no plotting dependency, so figures render as aligned
value tables plus a coarse ASCII chart — enough to eyeball every shape
the paper discusses — and the full paper-vs-measured record is written to
``EXPERIMENTS.md`` by :func:`experiments_markdown`.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.experiments.analysis import ShapeCheck, check_figure
from repro.experiments.figures import FigureResult

__all__ = [
    "format_table",
    "figure_table",
    "ascii_chart",
    "render_figure",
    "figure_markdown",
]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Align a simple text table (left-aligned header, right-aligned data)."""
    materialised = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in materialised:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def _format_x(x: float) -> str:
    if math.isinf(x):
        return "inf"
    if x == int(x):
        return str(int(x))
    return f"{x:g}"


def figure_table(figure: FigureResult, precision: int = 2) -> str:
    """The figure's data as one table: x column plus one column per series."""
    headers = [figure.x_label] + [s.label for s in figure.series]
    xs = figure.series[0].x
    rows = []
    for index, x in enumerate(xs):
        row: list[object] = [_format_x(x)]
        for series in figure.series:
            estimate = series.y[index]
            if estimate.half_width > 0:
                row.append(f"{estimate.mean:.{precision}f}±{estimate.half_width:.{precision}f}")
            else:
                row.append(f"{estimate.mean:.{precision}f}")
        rows.append(row)
    return format_table(headers, rows)


_MARKS = "ox+*#@%&"


def ascii_chart(
    figure: FigureResult, width: int = 64, height: int = 16
) -> str:
    """A coarse terminal line chart of all series (marks per series)."""
    xs = figure.series[0].x
    finite_xs = [x for x in xs if not math.isinf(x)]
    x_lo, x_hi = min(finite_xs), max(finite_xs)
    all_y = [y for s in figure.series for y in s.means()]
    y_lo, y_hi = min(all_y + [0.0]), max(all_y)
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    grid = [[" "] * width for _ in range(height)]

    def col(x: float) -> int:
        if math.isinf(x):
            return width - 1
        if x_hi == x_lo:
            return 0
        return min(width - 1, int((x - x_lo) / (x_hi - x_lo) * (width - 1)))

    def row(y: float) -> int:
        return min(
            height - 1,
            int((y_hi - y) / (y_hi - y_lo) * (height - 1)),
        )

    for s_index, series in enumerate(figure.series):
        mark = _MARKS[s_index % len(_MARKS)]
        for x, y in zip(series.x, series.means()):
            grid[row(y)][col(x)] = mark
    lines = [f"{figure.title}"]
    lines.append(f"{y_hi:>10.1f} +" + "".join(grid[0]))
    for r in range(1, height - 1):
        lines.append(" " * 10 + " |" + "".join(grid[r]))
    lines.append(f"{y_lo:>10.1f} +" + "".join(grid[height - 1]))
    lines.append(
        " " * 12 + f"{_format_x(x_lo)}".ljust(width - 8) + f"{_format_x(x_hi)}"
    )
    lines.append(" " * 12 + f"x: {figure.x_label}")
    legend = "   ".join(
        f"{_MARKS[i % len(_MARKS)]} {s.label}"
        for i, s in enumerate(figure.series)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def render_figure(figure: FigureResult, chart: bool = True) -> str:
    """Full terminal rendering: chart, data table, notes, shape checks."""
    parts = []
    if chart:
        parts.append(ascii_chart(figure))
    parts.append(figure_table(figure))
    if figure.notes:
        parts.append(f"note: {figure.notes}")
    try:
        checks = check_figure(figure)
    except KeyError:
        checks = []
    if checks:
        parts.append("\n".join(str(check) for check in checks))
    return "\n\n".join(parts)


def figure_markdown(figure: FigureResult, paper_expectation: str) -> str:
    """One EXPERIMENTS.md section: expectation, measured data, checks."""
    lines = [f"### {figure.figure_id} — {figure.title}", ""]
    lines.append(f"**Paper:** {paper_expectation}")
    lines.append("")
    lines.append("**Measured** (means ± 90% CI half-width):")
    lines.append("")
    lines.append("```")
    lines.append(figure_table(figure))
    lines.append("```")
    lines.append("")
    try:
        checks: list[ShapeCheck] = check_figure(figure)
    except KeyError:
        checks = []
    if checks:
        lines.append("**Shape checks:**")
        lines.append("")
        for check in checks:
            status = "✅" if check.passed else "❌"
            lines.append(f"- {status} {check.name} ({check.detail})")
        lines.append("")
    return "\n".join(lines)
