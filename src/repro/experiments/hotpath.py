"""The hot-path benchmark suite behind ``repro bench-hotpath``.

A handful of micro-workloads exercise exactly the code every simulated
operation passes through — zero-delay event dispatch, heap-scheduled
timeouts, FIFO resource churn, the hierarchy ledger walk, and the group
member index — plus one *smoke figure*: a single representative
:func:`~repro.sim.system.run_simulation` call timed wall-clock.  The
suite writes/compares ``BENCH_hotpath.json`` so every future change to
the kernel or the admission path has a perf trajectory to answer to.

The same workload callables are wrapped by ``benchmarks/
bench_micro_engine.py`` under pytest-benchmark; this module keeps them
dependency-free so the CLI can time them with plain ``perf_counter``
(best-of-N, to shed scheduler noise) without pytest in the loop.
"""

from __future__ import annotations

import json
import platform
import random
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.core.bounds import TransactionBounds
from repro.core.hierarchy import GroupCatalog, HierarchyLedger
from repro.engine.results import Granted
from repro.perf import counters as _perf
from repro.sim.des import Engine, Event, Resource, Timeout
from repro.sim.system import SimulationConfig, run_simulation

__all__ = [
    "MicroBench",
    "MICRO_BENCHES",
    "ProcshardRpcConfig",
    "run_procshard_rpc",
    "check_rpc_regression",
    "smoke_config",
    "run_suite",
    "write_baseline",
    "load_baseline",
    "format_report",
    "format_comparison",
]

#: Schema marker for BENCH_hotpath.json, bumped on incompatible changes.
SCHEMA_VERSION = 1


# -- micro workloads -----------------------------------------------------------
#
# Each builder returns a zero-argument callable performing `ops` units of
# hot-path work; calling it repeatedly is safe (fresh state per call).


def engine_dispatch_workload(processes: int = 50, steps: int = 2000) -> Callable[[], None]:
    """Chains of zero-delay resumes — the ready-queue fast path."""

    def run() -> None:
        engine = Engine()

        def proc():
            for _ in range(steps):
                event = Event()
                engine.call_later(0.0, event.trigger)
                yield event

        engine.spawn_all(proc() for _ in range(processes))
        engine.run()

    return run


def timeout_dispatch_workload(processes: int = 50, steps: int = 2000) -> Callable[[], None]:
    """Positive-delay timeouts — the heap slow path."""

    def run() -> None:
        engine = Engine()

        def proc(i: int):
            for _ in range(steps):
                yield Timeout(0.5 + (i % 7) * 0.25)

        engine.spawn_all(proc(i) for i in range(processes))
        engine.run()

    return run


def resource_churn_workload(workers: int = 40, cycles: int = 500) -> Callable[[], None]:
    """Contended acquire/hold/release on a capacity-2 FIFO resource."""

    def run() -> None:
        engine = Engine()
        resource = Resource(engine, capacity=2)

        def proc():
            for _ in range(cycles):
                yield resource.acquire()
                yield Timeout(1.0)
                resource.release()

        engine.spawn_all(proc() for _ in range(workers))
        engine.run()

    return run


def ledger_charge_workload(ledgers: int = 200, objects: int = 100) -> Callable[[], None]:
    """Bottom-up admission walks over a three-level hierarchy."""
    catalog = GroupCatalog()
    catalog.add_group("a")
    catalog.add_group("b", parent="a")
    catalog.add_group("c", parent="b")
    for object_id in range(objects):
        catalog.assign(object_id, "c")
    limits = {"a": 1e12, "b": 1e12, "c": 1e12}

    def run() -> None:
        for _ in range(ledgers):
            ledger = HierarchyLedger(catalog, 1e12, limits)
            for object_id in range(objects):
                ledger.check_and_charge(object_id, 1.0, object_limit=10.0)

    return run


def catalog_members_workload(calls: int = 2000, objects: int = 2000) -> Callable[[], None]:
    """Group member listing against the reverse index."""
    catalog = GroupCatalog()
    for group in range(10):
        catalog.add_group(f"g{group}")
    for object_id in range(objects):
        catalog.assign(object_id, f"g{object_id % 10}")

    def run() -> None:
        for _ in range(calls):
            catalog.members("g3")

    return run


@dataclass(frozen=True)
class MicroBench:
    """One micro-workload: a builder plus its operation count per call."""

    name: str
    build: Callable[[], Callable[[], None]]
    ops: int
    unit: str


MICRO_BENCHES: tuple[MicroBench, ...] = (
    MicroBench("engine_dispatch", engine_dispatch_workload, 50 * 2000, "resumes"),
    MicroBench("timeout_dispatch", timeout_dispatch_workload, 50 * 2000, "timeouts"),
    MicroBench("resource_churn", resource_churn_workload, 40 * 500, "acquire-release"),
    MicroBench("ledger_charge", ledger_charge_workload, 200 * 100, "charges"),
    MicroBench("catalog_members", catalog_members_workload, 2000, "calls"),
)


# -- the shard-channel microbench ----------------------------------------------


@dataclass(frozen=True)
class ProcshardRpcConfig:
    """The fixed workload behind the ``procshard_rpc`` figure.

    A seeded mixed read/write trace over a process-sharded engine, in
    two phases measured separately.  The *sequential* phase (one client,
    alternating export-side updates and import-side queries touching
    every shard) makes the per-op wire cost deterministic — that is the
    ``bytes_per_op`` probe the CI regression guard keys on.  The
    *concurrent* phase (many client threads) is the throughput probe:
    it gives the flat-combining channel concurrent callers to coalesce,
    and its long transactions grow the per-transaction account
    footprint that the legacy channel re-ships in full on every single
    operation — the cost the delta-sync fast path removes."""

    shards: int = 4
    objects: int = 256
    seq_transactions: int = 8
    seq_ops_per_txn: int = 100
    threads: int = 24
    thread_transactions: int = 2
    thread_ops_per_txn: int = 300
    seed: int = 7


def _drive_rpc_transaction(engine, rng: random.Random, objects, ops) -> int:
    """One client transaction; returns the number of granted operations."""
    update = rng.random() < 0.5
    if update:
        txn = engine.begin(
            "update",
            TransactionBounds(export_limit=1e9),
            allow_inconsistent_reads=True,
        )
    else:
        txn = engine.begin("query", TransactionBounds(import_limit=1e9))
    granted = 0
    for _ in range(ops):
        object_id = rng.randrange(objects)
        if update and rng.random() < 0.5:
            outcome = engine.write(txn, object_id, rng.random() * 100.0)
        else:
            outcome = engine.read(txn, object_id)
        if isinstance(outcome, Granted):
            granted += 1
            continue
        # MustWait / Rejected: give up on this transaction (the bench
        # measures channel cost, not contention resolution).
        if txn.is_active:
            engine.abort(txn, "bench-blocked")
        return granted
    if txn.is_active:
        engine.commit(txn)
    return granted


def _rpc_delta(before: dict, after: dict) -> dict:
    return {
        key: after[key] - before[key]
        for key in after
        if key.startswith("rpc_")
    }


def run_procshard_rpc(
    mode: str, config: ProcshardRpcConfig | None = None
) -> dict | None:
    """Time the parent↔worker shard channel in one wire mode.

    ``mode`` is ``"fast"`` or ``"legacy"``.  Returns the figure dict —
    ``ops_per_s``/``batch_occupancy`` from the concurrent phase,
    ``bytes_per_op``/``round_trips_per_txn``/sync mix from the
    deterministic sequential phase — or ``None`` where process sharding
    is unavailable (no ``fork``).
    """
    from repro.engine.api import create_engine
    from repro.engine.database import Database
    from repro.engine.procshard import process_sharding_unavailable

    if process_sharding_unavailable() == "no-fork":
        return None
    if config is None:
        config = ProcshardRpcConfig()
    database = Database()
    database.create_many(
        (object_id, 100.0) for object_id in range(config.objects)
    )
    engine = create_engine(
        database,
        "esr",
        shards=config.shards,
        processes="force",
        shard_rpc=mode,
    )
    try:
        # Phase 1 — sequential bytes probe (deterministic for the seed).
        before = _perf.snapshot()
        rng = random.Random(config.seed)
        for _ in range(config.seq_transactions):
            _drive_rpc_transaction(
                engine, rng, config.objects, config.seq_ops_per_txn
            )
        seq = _rpc_delta(before, _perf.snapshot())
        # Phase 2 — concurrent throughput probe.
        before = _perf.snapshot()
        results: list[int] = []

        def client(worker: int) -> None:
            thread_rng = random.Random(config.seed + 1 + worker)
            count = 0
            for _ in range(config.thread_transactions):
                count += _drive_rpc_transaction(
                    engine,
                    thread_rng,
                    config.objects,
                    config.thread_ops_per_txn,
                )
            results.append(count)

        threads = [
            threading.Thread(target=client, args=(worker,))
            for worker in range(config.threads)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        granted = sum(results)
        conc = _rpc_delta(before, _perf.snapshot())
    finally:
        engine.close()
    seq_ops = max(seq["rpc_ops"], 1)
    round_trips = max(conc["rpc_round_trips"], 1)
    return {
        "ops_per_s": round(granted / elapsed, 1) if elapsed > 0 else 0.0,
        "bytes_per_op": round(
            (seq["rpc_bytes_sent"] + seq["rpc_bytes_received"]) / seq_ops, 1
        ),
        "batch_occupancy": round(conc["rpc_batched_ops"] / round_trips, 2),
        "round_trips_per_txn": round(
            seq["rpc_round_trips"] / config.seq_transactions, 2
        ),
        "rpc_ops": seq["rpc_ops"] + conc["rpc_ops"],
        "rpc_round_trips": seq["rpc_round_trips"] + conc["rpc_round_trips"],
        "rpc_bytes_sent": seq["rpc_bytes_sent"] + conc["rpc_bytes_sent"],
        "rpc_bytes_received": (
            seq["rpc_bytes_received"] + conc["rpc_bytes_received"]
        ),
        "sync_full": seq["rpc_sync_full"],
        "sync_delta": seq["rpc_sync_delta"],
        "sync_none": seq["rpc_sync_none"],
    }


def check_rpc_regression(
    baseline: dict, current: dict, factor: float = 1.5
) -> str | None:
    """Fail if the fast channel's bytes/op regressed vs. the baseline.

    Returns a failure message, or None when within ``factor`` of the
    recorded figure (or when either side lacks the ``procshard_rpc``
    section — older baselines stay usable).  Bytes/op is the guarded
    metric because it is deterministic for the fixed sequential trace;
    ops/s on shared CI hardware is too noisy to gate on.
    """
    base = (baseline.get("procshard_rpc") or {}).get("fast")
    cur = (current.get("procshard_rpc") or {}).get("fast")
    if not base or not cur:
        return None
    allowed = base["bytes_per_op"] * factor
    if cur["bytes_per_op"] > allowed:
        return (
            f"procshard_rpc bytes/op regressed: {cur['bytes_per_op']:.1f} "
            f"> {allowed:.1f} (baseline {base['bytes_per_op']:.1f} "
            f"x factor {factor})"
        )
    return None


def smoke_config() -> SimulationConfig:
    """The fixed single-cell simulation the suite times wall-clock."""
    return SimulationConfig(
        mpl=16,
        til=100_000.0,
        tel=10_000.0,
        protocol="esr",
        duration_ms=60_000.0,
        warmup_ms=5_000.0,
        seed=3,
    )


# -- running -------------------------------------------------------------------


def _best_of(fn: Callable[[], None], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
    return best


def run_suite(
    repeats: int = 5,
    smoke_repeats: int = 3,
    progress: Callable[[str], None] | None = None,
) -> dict:
    """Run every micro-bench and the smoke figure; return the report dict.

    ``repeats`` is best-of-N per workload (N=1 is the CI quick mode:
    asserts the suite still *executes*, timings meaningless).
    """
    micro: dict[str, dict[str, float]] = {}
    for bench in MICRO_BENCHES:
        workload = bench.build()
        best = _best_of(workload, repeats)
        micro[bench.name] = {
            "best_s": round(best, 6),
            "ops_per_s": round(bench.ops / best, 1) if best > 0 else 0.0,
        }
        if progress is not None:
            progress(
                f"  {bench.name}: {best:.4f}s "
                f"({bench.ops / best:,.0f} {bench.unit}/s)"
            )
    rpc: dict[str, dict] | None = {}
    for mode in ("fast", "legacy"):
        figure = run_procshard_rpc(mode)
        if figure is None:
            rpc = None
            if progress is not None:
                progress("  procshard_rpc: skipped (no fork)")
            break
        rpc[mode] = figure
        if progress is not None:
            progress(
                f"  procshard_rpc[{mode}]: "
                f"{figure['ops_per_s']:,.0f} ops/s, "
                f"{figure['bytes_per_op']:,.0f} bytes/op, "
                f"occupancy {figure['batch_occupancy']:.2f}"
            )
    config = smoke_config()
    smoke_best = _best_of(lambda: run_simulation(config), smoke_repeats)
    if progress is not None:
        progress(f"  smoke_figure: {smoke_best:.4f}s wall")
    return {
        "schema": SCHEMA_VERSION,
        "procshard_rpc": rpc,
        "recorded": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "repeats": repeats,
        },
        "micro": micro,
        "smoke": {
            "wall_s": round(smoke_best, 6),
            "config": {
                "mpl": config.mpl,
                "protocol": config.protocol,
                "duration_ms": config.duration_ms,
                "seed": config.seed,
            },
        },
    }


# -- the baseline file ---------------------------------------------------------


def write_baseline(report: dict, path: str | Path) -> None:
    Path(path).write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def load_baseline(path: str | Path) -> dict | None:
    """The parsed baseline, or None when missing/unreadable/incompatible."""
    target = Path(path)
    if not target.is_file():
        return None
    try:
        report = json.loads(target.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    if report.get("schema") != SCHEMA_VERSION:
        return None
    return report


def format_report(report: dict) -> str:
    lines = ["hot-path suite (best-of runs):"]
    for name, entry in report["micro"].items():
        lines.append(
            f"  {name:<18} {entry['best_s']:.4f}s  ({entry['ops_per_s']:,.0f} ops/s)"
        )
    rpc = report.get("procshard_rpc")
    if rpc:
        for mode, figure in rpc.items():
            lines.append(
                f"  {'procshard_rpc[' + mode + ']':<18} "
                f"{figure['ops_per_s']:,.0f} ops/s  "
                f"{figure['bytes_per_op']:,.0f} bytes/op  "
                f"occupancy {figure['batch_occupancy']:.2f}  "
                f"{figure['round_trips_per_txn']:.1f} round-trips/txn"
            )
    lines.append(f"  {'smoke_figure':<18} {report['smoke']['wall_s']:.4f}s wall")
    return "\n".join(lines)


def format_comparison(baseline: dict, current: dict) -> str:
    """Side-by-side ops/s (micro) and wall time (smoke) vs. the baseline."""
    lines = [
        f"{'benchmark':<18} {'baseline':>14} {'current':>14} {'speedup':>9}"
    ]
    for name, entry in current["micro"].items():
        base = baseline["micro"].get(name)
        if base is None:
            lines.append(f"{name:<18} {'—':>14} {entry['ops_per_s']:>14,.0f} {'new':>9}")
            continue
        ratio = entry["ops_per_s"] / base["ops_per_s"] if base["ops_per_s"] else 0.0
        lines.append(
            f"{name:<18} {base['ops_per_s']:>14,.0f} "
            f"{entry['ops_per_s']:>14,.0f} {ratio:>8.2f}x"
        )
    cur_rpc = current.get("procshard_rpc") or {}
    base_rpc = baseline.get("procshard_rpc") or {}
    for mode, figure in cur_rpc.items():
        name = f"rpc[{mode}] B/op"
        base = base_rpc.get(mode)
        if base is None:
            lines.append(
                f"{name:<18} {'—':>14} {figure['bytes_per_op']:>14,.0f} {'new':>9}"
            )
            continue
        # Bytes/op is a cost: ratio > 1 means the channel got cheaper.
        ratio = (
            base["bytes_per_op"] / figure["bytes_per_op"]
            if figure["bytes_per_op"]
            else 0.0
        )
        lines.append(
            f"{name:<18} {base['bytes_per_op']:>14,.0f} "
            f"{figure['bytes_per_op']:>14,.0f} {ratio:>8.2f}x"
        )
    base_wall = baseline["smoke"]["wall_s"]
    cur_wall = current["smoke"]["wall_s"]
    ratio = base_wall / cur_wall if cur_wall else 0.0
    lines.append(
        f"{'smoke_figure (s)':<18} {base_wall:>14.4f} {cur_wall:>14.4f} {ratio:>8.2f}x"
    )
    return "\n".join(lines)
