"""The hot-path benchmark suite behind ``repro bench-hotpath``.

A handful of micro-workloads exercise exactly the code every simulated
operation passes through — zero-delay event dispatch, heap-scheduled
timeouts, FIFO resource churn, the hierarchy ledger walk, and the group
member index — plus one *smoke figure*: a single representative
:func:`~repro.sim.system.run_simulation` call timed wall-clock.  The
suite writes/compares ``BENCH_hotpath.json`` so every future change to
the kernel or the admission path has a perf trajectory to answer to.

The same workload callables are wrapped by ``benchmarks/
bench_micro_engine.py`` under pytest-benchmark; this module keeps them
dependency-free so the CLI can time them with plain ``perf_counter``
(best-of-N, to shed scheduler noise) without pytest in the loop.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.core.hierarchy import GroupCatalog, HierarchyLedger
from repro.sim.des import Engine, Event, Resource, Timeout
from repro.sim.system import SimulationConfig, run_simulation

__all__ = [
    "MicroBench",
    "MICRO_BENCHES",
    "smoke_config",
    "run_suite",
    "write_baseline",
    "load_baseline",
    "format_report",
    "format_comparison",
]

#: Schema marker for BENCH_hotpath.json, bumped on incompatible changes.
SCHEMA_VERSION = 1


# -- micro workloads -----------------------------------------------------------
#
# Each builder returns a zero-argument callable performing `ops` units of
# hot-path work; calling it repeatedly is safe (fresh state per call).


def engine_dispatch_workload(processes: int = 50, steps: int = 2000) -> Callable[[], None]:
    """Chains of zero-delay resumes — the ready-queue fast path."""

    def run() -> None:
        engine = Engine()

        def proc():
            for _ in range(steps):
                event = Event()
                engine.call_later(0.0, event.trigger)
                yield event

        engine.spawn_all(proc() for _ in range(processes))
        engine.run()

    return run


def timeout_dispatch_workload(processes: int = 50, steps: int = 2000) -> Callable[[], None]:
    """Positive-delay timeouts — the heap slow path."""

    def run() -> None:
        engine = Engine()

        def proc(i: int):
            for _ in range(steps):
                yield Timeout(0.5 + (i % 7) * 0.25)

        engine.spawn_all(proc(i) for i in range(processes))
        engine.run()

    return run


def resource_churn_workload(workers: int = 40, cycles: int = 500) -> Callable[[], None]:
    """Contended acquire/hold/release on a capacity-2 FIFO resource."""

    def run() -> None:
        engine = Engine()
        resource = Resource(engine, capacity=2)

        def proc():
            for _ in range(cycles):
                yield resource.acquire()
                yield Timeout(1.0)
                resource.release()

        engine.spawn_all(proc() for _ in range(workers))
        engine.run()

    return run


def ledger_charge_workload(ledgers: int = 200, objects: int = 100) -> Callable[[], None]:
    """Bottom-up admission walks over a three-level hierarchy."""
    catalog = GroupCatalog()
    catalog.add_group("a")
    catalog.add_group("b", parent="a")
    catalog.add_group("c", parent="b")
    for object_id in range(objects):
        catalog.assign(object_id, "c")
    limits = {"a": 1e12, "b": 1e12, "c": 1e12}

    def run() -> None:
        for _ in range(ledgers):
            ledger = HierarchyLedger(catalog, 1e12, limits)
            for object_id in range(objects):
                ledger.check_and_charge(object_id, 1.0, object_limit=10.0)

    return run


def catalog_members_workload(calls: int = 2000, objects: int = 2000) -> Callable[[], None]:
    """Group member listing against the reverse index."""
    catalog = GroupCatalog()
    for group in range(10):
        catalog.add_group(f"g{group}")
    for object_id in range(objects):
        catalog.assign(object_id, f"g{object_id % 10}")

    def run() -> None:
        for _ in range(calls):
            catalog.members("g3")

    return run


@dataclass(frozen=True)
class MicroBench:
    """One micro-workload: a builder plus its operation count per call."""

    name: str
    build: Callable[[], Callable[[], None]]
    ops: int
    unit: str


MICRO_BENCHES: tuple[MicroBench, ...] = (
    MicroBench("engine_dispatch", engine_dispatch_workload, 50 * 2000, "resumes"),
    MicroBench("timeout_dispatch", timeout_dispatch_workload, 50 * 2000, "timeouts"),
    MicroBench("resource_churn", resource_churn_workload, 40 * 500, "acquire-release"),
    MicroBench("ledger_charge", ledger_charge_workload, 200 * 100, "charges"),
    MicroBench("catalog_members", catalog_members_workload, 2000, "calls"),
)


def smoke_config() -> SimulationConfig:
    """The fixed single-cell simulation the suite times wall-clock."""
    return SimulationConfig(
        mpl=16,
        til=100_000.0,
        tel=10_000.0,
        protocol="esr",
        duration_ms=60_000.0,
        warmup_ms=5_000.0,
        seed=3,
    )


# -- running -------------------------------------------------------------------


def _best_of(fn: Callable[[], None], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
    return best


def run_suite(
    repeats: int = 5,
    smoke_repeats: int = 3,
    progress: Callable[[str], None] | None = None,
) -> dict:
    """Run every micro-bench and the smoke figure; return the report dict.

    ``repeats`` is best-of-N per workload (N=1 is the CI quick mode:
    asserts the suite still *executes*, timings meaningless).
    """
    micro: dict[str, dict[str, float]] = {}
    for bench in MICRO_BENCHES:
        workload = bench.build()
        best = _best_of(workload, repeats)
        micro[bench.name] = {
            "best_s": round(best, 6),
            "ops_per_s": round(bench.ops / best, 1) if best > 0 else 0.0,
        }
        if progress is not None:
            progress(
                f"  {bench.name}: {best:.4f}s "
                f"({bench.ops / best:,.0f} {bench.unit}/s)"
            )
    config = smoke_config()
    smoke_best = _best_of(lambda: run_simulation(config), smoke_repeats)
    if progress is not None:
        progress(f"  smoke_figure: {smoke_best:.4f}s wall")
    return {
        "schema": SCHEMA_VERSION,
        "recorded": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "repeats": repeats,
        },
        "micro": micro,
        "smoke": {
            "wall_s": round(smoke_best, 6),
            "config": {
                "mpl": config.mpl,
                "protocol": config.protocol,
                "duration_ms": config.duration_ms,
                "seed": config.seed,
            },
        },
    }


# -- the baseline file ---------------------------------------------------------


def write_baseline(report: dict, path: str | Path) -> None:
    Path(path).write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def load_baseline(path: str | Path) -> dict | None:
    """The parsed baseline, or None when missing/unreadable/incompatible."""
    target = Path(path)
    if not target.is_file():
        return None
    try:
        report = json.loads(target.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    if report.get("schema") != SCHEMA_VERSION:
        return None
    return report


def format_report(report: dict) -> str:
    lines = ["hot-path suite (best-of runs):"]
    for name, entry in report["micro"].items():
        lines.append(
            f"  {name:<18} {entry['best_s']:.4f}s  ({entry['ops_per_s']:,.0f} ops/s)"
        )
    lines.append(f"  {'smoke_figure':<18} {report['smoke']['wall_s']:.4f}s wall")
    return "\n".join(lines)


def format_comparison(baseline: dict, current: dict) -> str:
    """Side-by-side ops/s (micro) and wall time (smoke) vs. the baseline."""
    lines = [
        f"{'benchmark':<18} {'baseline':>14} {'current':>14} {'speedup':>9}"
    ]
    for name, entry in current["micro"].items():
        base = baseline["micro"].get(name)
        if base is None:
            lines.append(f"{name:<18} {'—':>14} {entry['ops_per_s']:>14,.0f} {'new':>9}")
            continue
        ratio = entry["ops_per_s"] / base["ops_per_s"] if base["ops_per_s"] else 0.0
        lines.append(
            f"{name:<18} {base['ops_per_s']:>14,.0f} "
            f"{entry['ops_per_s']:>14,.0f} {ratio:>8.2f}x"
        )
    base_wall = baseline["smoke"]["wall_s"]
    cur_wall = current["smoke"]["wall_s"]
    ratio = base_wall / cur_wall if cur_wall else 0.0
    lines.append(
        f"{'smoke_figure (s)':<18} {base_wall:>14.4f} {cur_wall:>14.4f} {ratio:>8.2f}x"
    )
    return "\n".join(lines)
