"""The serving-layer load generator behind ``repro bench-net``.

Measures what the serving stack — not the engine — can sustain: N
connections × a pipeline depth of concurrent sessions per connection,
each session looping tiny query transactions (begin, K reads, commit)
against a live server over localhost TCP.  Both servers are driven by
the same pipelined asyncio client (:mod:`repro.net.aioclient`), so the
comparison isolates the serving architecture: thread-per-connection with
a global engine mutex versus the asyncio batched-dispatch loop.

The suite benchmarks seven rows, decomposing where the speedup comes
from:

* ``threaded`` — the threaded server under its own wire discipline:
  strictly one request in flight per connection, exactly how the
  synchronous :class:`~repro.net.client.RemoteConnection` drives it (the
  paper's RPC library).  This is the faithful pre-pipelining baseline.
* ``threaded-pipelined`` — the threaded server driven by the new
  pipelined client: the new wire protocol on the old architecture, so
  the difference to ``threaded`` is what pipelining alone buys.
* ``async`` — the asyncio server driven pipelined; the difference to
  ``threaded-pipelined`` is what the serving architecture (batched
  dispatch, write coalescing, no mutex/thread switches) buys.
* ``read-heavy-nocache`` / ``read-heavy-cached`` — the asyncio server
  under a read-heavy workload (48 reads per query, one writer session
  in 16), with the epsilon snapshot read cache off and on.  The pair's
  ratio (``speedup_cached_reads``) is what serving bounded-staleness
  reads inline in ``data_received`` — outside the engine critical
  section and the dispatch queue — buys.
* ``write-heavy-1shard`` / ``write-heavy-4shard`` — the threaded server
  driven pipelined under a write-heavy multi-object mix (4 reads per
  query, every second session a writer on disjoint stripes), with the
  engine unsharded versus partitioned four ways
  (:class:`~repro.engine.sharded.ShardedEngine`).  The pair's ratio
  (``speedup_sharded``) is what replacing the global engine mutex with
  per-shard critical sections buys.
* ``write-heavy-4proc`` — the same write-heavy mix with the four shard
  engines in worker **processes**
  (:class:`~repro.engine.procshard.ProcessShardedEngine`).  Against
  ``write-heavy-1shard`` this (``speedup_process_sharded``) is what
  escaping the GIL buys; against ``write-heavy-4shard`` it isolates the
  IPC cost/parallelism trade.  On a single-core host the row degrades
  to the thread composite and the report carries
  ``process_sharding_degraded`` so ~1.0x is not misread.

The headline ``speedup_requests_per_s`` is ``async`` versus the
``threaded`` baseline.

Two load modes for the pipelined rows:

* ``closed`` (default) — every pipeline slot issues its next transaction
  the moment the previous one commits; the offered load adapts to the
  server.  Throughput is the headline number.  This mode uses a raw
  slot-state-machine driver (one coroutine per connection, no
  per-request futures) so the generator itself stays out of the
  measurement as far as possible — like ``wrk``, the client must be
  cheaper than the server it is loading.
* ``open`` — transactions start on a fixed arrival schedule derived from
  ``--rate`` regardless of completions (wrk2-style: each pipeline slot
  owns a deterministic arrival stream), and latency is measured from the
  *intended* start, so queueing delay behind a slow server is charged to
  the measurement instead of silently absorbed (the coordinated-omission
  correction).  This mode drives the general-purpose pipelining client
  (:class:`~repro.net.aioclient.AsyncRemoteConnection`).

The serial baseline row always runs closed-loop (a strictly alternating
connection has no pipeline to schedule into).

Beyond the seven decomposition rows, the suite carries the wire-codec
and latency-under-load rows added with the binary codec:

* ``async-binary`` — the ``async`` row again with the negotiated binary
  codec (:mod:`repro.net.protocol`); the ratio
  (``speedup_binary_codec``) is what struct-packed frames buy over the
  byte-exact JSON fast path.
* ``open-1k`` … ``open-12k`` — the async server (binary codec) under
  fixed offered loads from well below to beyond saturation; the report's
  ``latency_vs_load`` section is the resulting latency-vs-offered-load
  curve, p50/p90/p99 per point.
* ``soak-8k`` — the same open-loop harness at a sustained rate for 4×
  the row duration, so drift (GC, fragmentation, backlog creep) has
  time to show in the tail.

Open-loop rows are excluded from the p99 regression guard
(:func:`check_p99_regression`): beyond saturation their tail is
unbounded *by design*; the guard covers the closed-loop rows.

Results are written to/compared against ``BENCH_net.json`` the same way
the hot-path suite uses ``BENCH_hotpath.json``.
"""

from __future__ import annotations

import asyncio
import json
import os
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro import perf
from repro.engine.database import Database

__all__ = [
    "LoadConfig",
    "SuiteRow",
    "SUITE_ROWS",
    "DEFAULT_SERVERS",
    "QUICK_CONFIG",
    "DEFAULT_CONFIG",
    "run_load",
    "run_suite",
    "write_baseline",
    "load_baseline",
    "format_report",
    "format_comparison",
    "check_p99_regression",
]

#: Schema marker for BENCH_net.json, bumped on incompatible changes.
SCHEMA_VERSION = 1

#: TIL high enough that the benchmark queries never hit a bound.
_BENCH_TIL = 1e12


@dataclass(frozen=True)
class LoadConfig:
    """One load-generation run."""

    connections: int = 32
    depth: int = 8  # concurrent sessions (pipeline depth) per connection
    duration_s: float = 5.0
    objects: int = 256
    reads_per_txn: int = 1
    mode: str = "closed"  # "closed" | "open"
    rate: float | None = None  # open-loop target, transactions/s overall
    discipline: str = "pipelined"  # "pipelined" | "serial" (pre-PR wire)
    #: Wire codec: ``"json"`` (line protocol) or ``"binary-1"``
    #: (negotiated length-prefixed frames).
    codec: str = "json"
    #: Fraction of sessions that run update transactions (begin, one
    #: write, commit) instead of queries — the read-heavy cache rows use
    #: a small fraction so cached reads observe real divergence.  Writer
    #: sessions write disjoint object stripes (no write-write conflicts);
    #: closed-loop raw driver only.
    write_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.mode not in ("closed", "open"):
            raise ValueError(f"mode must be 'closed' or 'open', not {self.mode!r}")
        if self.codec not in ("json", "binary-1"):
            raise ValueError(
                f"codec must be 'json' or 'binary-1', not {self.codec!r}"
            )
        if self.rate is not None and self.mode != "open":
            raise ValueError(
                "a target rate only makes sense in open-loop mode "
                "(closed loop adapts its offered load to the server)"
            )

    @property
    def sessions(self) -> int:
        return self.connections * self.depth

    def is_writer(self, session_index: int) -> bool:
        """Whether the session at this global index runs updates.

        Writers are spread evenly: one every ``1/write_fraction``
        sessions (at least one when the fraction is positive).
        """
        if self.write_fraction <= 0.0:
            return False
        stride = max(1, round(1.0 / self.write_fraction))
        return session_index % stride == 0


DEFAULT_CONFIG = LoadConfig()
QUICK_CONFIG = LoadConfig(connections=4, depth=2, duration_s=0.5, objects=32)


@dataclass
class _Tally:
    """Mutable counters shared by every session task of one run."""

    requests: int = 0
    transactions: int = 0
    errors: int = 0
    latencies_ms: list[float] = field(default_factory=list)


def build_bench_database(objects: int) -> Database:
    database = Database()
    database.create_many((i, float(i)) for i in range(1, objects + 1))
    return database


# -- the raw closed-loop driver ------------------------------------------------


#: Reads a query slot pipelines per burst.  Chunking matters for the
#: cache rows: a query whose reads all ride one burst can never observe
#: divergence (a writer that begins after the query needs two round
#:  trips to commit, the reads arrive after one), so multi-burst queries
#: are what makes writers genuinely race the reads.
_READ_CHUNK = 16


class _Slot:
    """One pipeline slot: a begin→read-bursts→commit state machine.

    Writer slots (``step > 0``) run begin→write→commit instead, each
    stepping through its own disjoint object stride so writers never
    conflict with each other.
    """

    __slots__ = (
        "outstanding",
        "failed",
        "started",
        "object_id",
        "step",
        "txn",
        "remaining",
        "cursor",
    )

    def __init__(self, object_id: int, step: int = 0):
        self.outstanding = 0
        self.failed = False
        self.started = 0.0
        self.object_id = object_id
        self.step = step
        self.txn: int | None = None  # open transaction awaiting its commit
        self.remaining = 0  # reads not yet requested this transaction
        self.cursor = 0  # read offset within this transaction


async def _drive_connection_raw(
    host: str,
    port: int,
    config: LoadConfig,
    conn_index: int,
    deadline: float,
    tally: _Tally,
) -> None:
    """One connection of the closed-loop load: ``depth`` slots pipelined.

    Each slot runs whole transactions: its ``begin`` is issued, and once
    the transaction id arrives, the reads are pipelined in bursts of
    :data:`_READ_CHUNK` followed by the commit (same-connection requests
    dispatch in order on both servers, and this workload never parks on
    a wait).  Requests from all slots coalesce into shared writes;
    responses are parsed out of bulk ``read()`` chunks.  No futures, no
    per-request tasks.
    """
    import json as _json

    from repro.net.protocol import MAX_LINE_BYTES, BinaryCodec

    reader, writer = await asyncio.open_connection(
        host, port, limit=MAX_LINE_BYTES + 1
    )
    # Binary codec: negotiate before the load starts (one JSON hello
    # round trip); a server that declines leaves the run on JSON.
    binary = config.codec == "binary-1"
    if binary:
        writer.write(b'{"op":"hello","codecs":["binary-1"]}\n')
        hello = _json.loads(await reader.readuntil(b"\n"))
        if not (hello.get("ok") and hello.get("codec") == "binary-1"):
            binary = False
    pending: dict[int, _Slot] = {}  # correlation id -> slot
    next_id = 0
    out: list[bytes] = []
    active = 0

    # Requests are pre-formatted bytes (plain protocol JSON, or — in
    # binary mode — one struct pack each): a load generator must cost
    # less than the server it measures, and json.dumps per tiny request
    # is a measurable share of that cost.
    if binary:
        # The pack_* staticmethods already have the fmt_* signatures
        # (struct's ``d`` accepts the int write values), so bind them
        # directly — no wrapper call per request.
        _pack_begin = BinaryCodec.pack_begin
        fmt_read = BinaryCodec.pack_read
        fmt_write = BinaryCodec.pack_write
        fmt_commit = BinaryCodec.pack_commit

        def fmt_begin(rid: int, update: bool) -> bytes:
            return _pack_begin(1 if update else 0, _BENCH_TIL, rid)

    else:
        begin_template = (
            f'{{"op":"begin","kind":"query","limit":{_BENCH_TIL!r},"id":%d}}\n'
        ).encode()
        begin_update_template = (
            f'{{"op":"begin","kind":"update","limit":{_BENCH_TIL!r},"id":%d}}\n'
        ).encode()
        read_template = b'{"op":"read","txn":%d,"object":%d,"id":%d}\n'
        write_template = (
            b'{"op":"write","txn":%d,"object":%d,"value":%d,"id":%d}\n'
        )
        commit_template = b'{"op":"commit","txn":%d,"id":%d}\n'

        def fmt_begin(rid: int, update: bool) -> bytes:
            return (begin_update_template if update else begin_template) % rid

        def fmt_read(txn: int, object_id: int, rid: int) -> bytes:
            return read_template % (txn, object_id, rid)

        def fmt_write(txn: int, object_id: int, value: int, rid: int) -> bytes:
            return write_template % (txn, object_id, value, rid)

        def fmt_commit(txn: int, rid: int) -> bytes:
            return commit_template % (txn, rid)

    write_seq = 0

    def start_txn(slot: _Slot) -> None:
        nonlocal next_id, active
        slot.started = time.perf_counter()
        slot.failed = False
        slot.txn = None
        slot.remaining = 0
        slot.cursor = 0
        active += 1
        next_id += 1
        pending[next_id] = slot
        slot.outstanding += 1
        out.append(fmt_begin(next_id, bool(slot.step)))

    def send_reads(slot: _Slot) -> None:
        nonlocal next_id
        count = min(_READ_CHUNK, slot.remaining)
        slot.remaining -= count
        for _ in range(count):
            next_id += 1
            pending[next_id] = slot
            slot.outstanding += 1
            out.append(
                fmt_read(
                    slot.txn,
                    (slot.object_id + slot.cursor) % config.objects + 1,
                    next_id,
                )
            )
            slot.cursor += 1

    def send_commit(slot: _Slot) -> None:
        nonlocal next_id
        next_id += 1
        pending[next_id] = slot
        slot.outstanding += 1
        out.append(fmt_commit(slot.txn, next_id))
        slot.txn = None
        slot.object_id = (slot.object_id + (slot.step or 1)) % config.objects

    def settle(rid: int, ok: bool, txn: int | None, now: float) -> None:
        """Advance one slot's state machine with one response."""
        nonlocal active, write_seq, next_id
        slot = pending.pop(rid, None)
        if slot is None:
            return
        slot.outstanding -= 1
        tally.requests += 1
        if not ok:
            slot.failed = True
        elif txn is not None:
            # The begin answered.  A writer bursts its write and the
            # commit together; a query bursts its first read chunk
            # (later chunks ride later round trips, so writers
            # genuinely race the query's reads).
            slot.txn = txn
            if slot.step:
                write_seq += 1
                next_id += 1
                pending[next_id] = slot
                slot.outstanding += 1
                out.append(
                    fmt_write(
                        txn,
                        slot.object_id % config.objects + 1,
                        write_seq % 1000,
                        next_id,
                    )
                )
                send_commit(slot)
            else:
                slot.remaining = config.reads_per_txn
                send_reads(slot)
        if slot.outstanding == 0:
            if slot.remaining > 0 and not slot.failed:
                # Burst answered, reads left: pipeline the next chunk.
                send_reads(slot)
            elif slot.txn is not None:
                # All reads answered (or the transaction failed along
                # the way): settle it with its commit.
                send_commit(slot)
            else:
                # Transaction attempt finished (commit answered, or
                # the begin failed and every response has landed).
                active -= 1
                if slot.failed:
                    tally.errors += 1
                else:
                    tally.transactions += 1
                    tally.latencies_ms.append((now - slot.started) * 1e3)
                if now < deadline:
                    start_txn(slot)

    # Writer sessions step through disjoint object stripes (writer k
    # touches objects ≡ k mod n_writers), so writers never conflict
    # with each other — divergence comes from writes racing *queries*.
    n_writers = sum(
        1 for i in range(config.sessions) if config.is_writer(i)
    )
    for d in range(config.depth):
        index = conn_index * config.depth + d
        if config.is_writer(index):
            writer_rank = sum(
                1 for i in range(index) if config.is_writer(i)
            )
            start_txn(_Slot(writer_rank, step=n_writers))
        else:
            start_txn(_Slot((index * 7) % config.objects))
    writer.write(b"".join(out))
    out.clear()

    buffer = b""
    while active > 0:
        chunk = await reader.read(1 << 16)
        if not chunk:
            tally.errors += active
            break
        buffer += chunk
        if binary:
            # Frames: u32le size, u8 type, payload.  Every fixed layout
            # carries its correlation id in the *last* 8 bytes — by
            # design, so the generator pulls it without a full decode.
            # 0x82 is ok+txn (the begin answer); 0x81/0x83/0x84 are the
            # other ok shapes; anything else (the JSON-payload frame,
            # carrying errors) falls back to the JSON parser.
            now = time.perf_counter()
            pos = 0
            end = len(buffer)
            while end - pos >= 4:
                size = int.from_bytes(buffer[pos : pos + 4], "little")
                if end - pos - 4 < size:
                    break
                frame = buffer[pos + 4 : pos + 4 + size]
                pos += 4 + size
                kind = frame[0]
                if kind == 0x82:
                    settle(
                        int.from_bytes(frame[9:17], "little"),
                        True,
                        int.from_bytes(frame[1:9], "little"),
                        now,
                    )
                elif kind in (0x81, 0x83, 0x84):
                    settle(int.from_bytes(frame[-8:], "little"), True, None, now)
                else:
                    response = _json.loads(frame[1:])
                    settle(
                        response.get("id"),
                        bool(response.get("ok")),
                        response.get("txn") if response.get("ok") else None,
                        now,
                    )
            buffer = buffer[pos:]
        else:
            if b"\n" not in chunk:
                continue
            lines = buffer.split(b"\n")
            buffer = lines.pop()
            now = time.perf_counter()
            for line in lines:
                # Hand-parse the response: the generator tags every
                # request, so ``id`` is the response's last key, and
                # ``begin`` answers are the only ok-responses carrying
                # ``txn``.  A wrk-style generator must stay cheaper than
                # the server it measures; anything surprising falls back
                # to the JSON parser.
                txn = None
                if line.startswith(b'{"ok":true'):
                    ok = True
                    try:
                        rid = int(line[line.rindex(b'"id":') + 5 : -1])
                    except ValueError:
                        response = _json.loads(line)
                        rid = response.get("id")
                        txn = response.get("txn")
                    else:
                        if line.startswith(b'{"ok":true,"txn":'):
                            txn = int(line[17 : line.index(b",", 17)])
                else:
                    ok = False
                    rid = _json.loads(line).get("id")
                settle(rid, ok, txn, now)
        if out:
            writer.write(b"".join(out))
            out.clear()
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass


async def _drive_connection_serial(
    host: str,
    port: int,
    config: LoadConfig,
    conn_index: int,
    deadline: float,
    tally: _Tally,
) -> None:
    """One connection of the *serial* baseline discipline.

    Strictly one request in flight, untagged, exactly how the
    synchronous client drives the threaded server: send a request, wait
    for its response, send the next.  ``depth`` does not apply — a
    strictly alternating connection has no pipeline.
    """
    import json as _json

    from repro.net.protocol import MAX_LINE_BYTES

    reader, writer = await asyncio.open_connection(
        host, port, limit=MAX_LINE_BYTES + 1
    )
    begin_line = (
        f'{{"op":"begin","kind":"query","limit":{_BENCH_TIL!r}}}\n'
    ).encode()
    object_id = (conn_index * 7) % config.objects
    try:
        while True:
            now = time.perf_counter()
            if now >= deadline:
                break
            started = now
            writer.write(begin_line)
            response = _json.loads(await reader.readuntil(b"\n"))
            tally.requests += 1
            if not response.get("ok"):
                tally.errors += 1
                continue
            txn = response["txn"]
            failed = False
            for k in range(config.reads_per_txn):
                writer.write(
                    b'{"op":"read","txn":%d,"object":%d}\n'
                    % (txn, (object_id + k) % config.objects + 1)
                )
                response = _json.loads(await reader.readuntil(b"\n"))
                tally.requests += 1
                if not response.get("ok"):
                    failed = True
                    break
            if not failed:
                writer.write(b'{"op":"commit","txn":%d}\n' % txn)
                response = _json.loads(await reader.readuntil(b"\n"))
                tally.requests += 1
                failed = not response.get("ok")
            if failed:
                tally.errors += 1
            else:
                tally.transactions += 1
                tally.latencies_ms.append((time.perf_counter() - started) * 1e3)
            object_id = (object_id + 1) % config.objects
    except (asyncio.IncompleteReadError, ConnectionError, OSError):
        tally.errors += 1
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass


# -- the session-based open-loop driver ----------------------------------------


async def _session(
    connection,
    config: LoadConfig,
    session_index: int,
    deadline: float,
    tally: _Tally,
    schedule: tuple[float, float] | None,
) -> None:
    """One closed-loop session, or one open-loop arrival schedule slice.

    ``schedule`` is ``(first_start, period)`` in ``perf_counter`` time for
    open-loop mode, None for closed-loop.
    """
    from repro.errors import ProtocolError, TransactionAborted

    object_id = (session_index * 7) % config.objects + 1
    arrival = schedule[0] if schedule else None
    while True:
        now = time.perf_counter()
        if now >= deadline:
            return
        if schedule is not None:
            if arrival > now:
                await asyncio.sleep(arrival - now)
                if time.perf_counter() >= deadline:
                    return
            started = arrival  # latency from the *scheduled* start
            arrival += schedule[1]
        else:
            started = now
        try:
            txn = await connection.begin("query", _BENCH_TIL)
            for k in range(config.reads_per_txn):
                await txn.read((object_id + k - 1) % config.objects + 1)
            await txn.commit()
        except (TransactionAborted, ProtocolError, OSError):
            tally.errors += 1
            continue
        tally.requests += 2 + config.reads_per_txn
        tally.transactions += 1
        tally.latencies_ms.append((time.perf_counter() - started) * 1e3)
        object_id = object_id % config.objects + 1


async def _drive(host: str, port: int, config: LoadConfig) -> _Tally:
    tally = _Tally()
    start = time.perf_counter()
    deadline = start + config.duration_s
    if config.discipline == "serial":
        await asyncio.gather(
            *(
                _drive_connection_serial(host, port, config, c, deadline, tally)
                for c in range(config.connections)
            )
        )
        return tally
    if config.mode == "closed":
        await asyncio.gather(
            *(
                _drive_connection_raw(host, port, config, c, deadline, tally)
                for c in range(config.connections)
            )
        )
        return tally

    from repro.net import aioclient

    connections = await asyncio.gather(
        *(
            aioclient.connect(host, port, site=i + 1, codec=config.codec)
            for i in range(config.connections)
        )
    )
    rate = config.rate or 1000.0
    period = config.sessions / rate
    tasks = []
    for c, connection in enumerate(connections):
        for d in range(config.depth):
            index = c * config.depth + d
            # Stagger session start offsets across one period.
            schedule = (start + (index / config.sessions) * period, period)
            tasks.append(
                _session(connection, config, index, deadline, tally, schedule)
            )
    await asyncio.gather(*tasks)
    await asyncio.gather(*(conn.close() for conn in connections))
    return tally


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1) + 0.5))
    return sorted_values[index]


def run_load(host: str, port: int, config: LoadConfig) -> dict:
    """Drive one live server; returns the metrics dict for the run."""
    started = time.perf_counter()
    tally = asyncio.run(_drive(host, port, config))
    elapsed = time.perf_counter() - started
    latencies = sorted(tally.latencies_ms)
    return _metrics(tally, elapsed, latencies)


def _metrics(tally: _Tally, elapsed: float, latencies: list[float]) -> dict:
    return {
        "requests": tally.requests,
        "transactions": tally.transactions,
        "errors": tally.errors,
        "elapsed_s": round(elapsed, 4),
        "requests_per_s": round(tally.requests / elapsed, 1),
        "transactions_per_s": round(tally.transactions / elapsed, 1),
        "latency_ms": {
            "p50": round(_percentile(latencies, 0.50), 3),
            "p90": round(_percentile(latencies, 0.90), 3),
            "p99": round(_percentile(latencies, 0.99), 3),
            "max": round(latencies[-1], 3) if latencies else 0.0,
        },
    }


def run_load_isolated(host: str, port: int, config: LoadConfig) -> dict:
    """Run the load generator in its own process.

    The generator must not share the server's interpreter: on one core a
    same-process client thread contends for the server's GIL and the
    scheduler noise lands in the measurement.  The child re-invokes this
    module (``python -m repro.experiments.netbench``) and reports its
    metrics as JSON on stdout.
    """
    import os
    import subprocess
    import sys

    src_dir = str(Path(__file__).resolve().parents[2])
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    payload = json.dumps(
        {
            "connections": config.connections,
            "depth": config.depth,
            "duration_s": config.duration_s,
            "objects": config.objects,
            "reads_per_txn": config.reads_per_txn,
            "mode": config.mode,
            "rate": config.rate,
            "discipline": config.discipline,
            "codec": config.codec,
            "write_fraction": config.write_fraction,
        }
    )
    child = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.experiments.netbench",
            host,
            str(port),
            payload,
        ],
        capture_output=True,
        text=True,
        env=env,
        timeout=max(60.0, config.duration_s * 10),
    )
    if child.returncode != 0:
        raise RuntimeError(
            f"load generator child failed:\n{child.stderr.strip()}"
        )
    return json.loads(child.stdout)


# -- the server side -----------------------------------------------------------


def _start_server(
    kind: str,
    database: Database,
    snapshot_cache: bool = False,
    shards: int = 1,
    processes: bool | str = False,
):
    """Start one server of ``kind``; returns (port, shutdown_callable)."""
    if kind == "threaded":
        from repro.net.server import serve_forever

        server = serve_forever(
            database,
            wait_timeout=5.0,
            snapshot_cache=snapshot_cache,
            shards=shards,
            processes=processes,
        )

        def stop() -> None:
            server.shutdown()
            server.server_close()

        return server.port, stop
    if kind == "async":
        from repro.net.aioserver import serve_in_thread

        handle = serve_in_thread(
            database,
            wait_timeout=5.0,
            snapshot_cache=snapshot_cache,
            shards=shards,
            processes=processes,
        )
        return handle.port, handle.shutdown
    raise ValueError(f"unknown server kind {kind!r}")


@dataclass(frozen=True)
class SuiteRow:
    """One benchmark row: which server, wire discipline, load shape."""

    server: str
    discipline: str
    #: Server-side epsilon snapshot read cache on/off.
    snapshot_cache: bool = False
    #: Partition the engine across this many per-shard critical sections
    #: (see :class:`repro.engine.sharded.ShardedEngine`); 1 is the plain
    #: single-engine server.
    shards: int = 1
    #: Run the shard engines in worker processes
    #: (:class:`repro.engine.procshard.ProcessShardedEngine`).  ``True``
    #: degrades to threads where processes cannot help (single core, no
    #: fork) — the report marks the degradation so the row is honest.
    processes: bool | str = False
    #: LoadConfig field overrides applied on top of the suite config.
    overrides: tuple[tuple[str, object], ...] = ()
    #: Multiply the suite duration for this row (the soak row runs 4×).
    duration_scale: float = 1.0


#: Suite row name -> row spec.  The read-heavy pair shares one workload
#: (48 reads per query, 1 writer session in 16 on disjoint stripes —
#: ~96% of requests are query reads) and differs only in the snapshot
#: cache, so their ratio isolates what the cache buys.  The write-heavy
#: pair shares a short-transaction mix (4 reads per query, every second
#: session a writer on disjoint stripes) on the threaded pipelined
#: server and differs only in engine sharding, so their ratio isolates
#: what per-shard critical sections buy over the global engine mutex.
_READ_HEAVY = (("reads_per_txn", 48), ("write_fraction", 1 / 16))
_WRITE_HEAVY = (("reads_per_txn", 4), ("write_fraction", 0.5))
_BINARY = (("codec", "binary-1"),)


def _open_row(rate: float) -> tuple[tuple[str, object], ...]:
    return (("mode", "open"), ("rate", rate), ("codec", "binary-1"))


SUITE_ROWS = {
    "threaded": SuiteRow("threaded", "serial"),
    "threaded-pipelined": SuiteRow("threaded", "pipelined"),
    "async": SuiteRow("async", "pipelined"),
    "async-binary": SuiteRow("async", "pipelined", overrides=_BINARY),
    "read-heavy-nocache": SuiteRow(
        "async", "pipelined", overrides=_READ_HEAVY
    ),
    "read-heavy-cached": SuiteRow(
        "async", "pipelined", snapshot_cache=True, overrides=_READ_HEAVY
    ),
    "write-heavy-1shard": SuiteRow(
        "threaded", "pipelined", overrides=_WRITE_HEAVY
    ),
    "write-heavy-4shard": SuiteRow(
        "threaded", "pipelined", shards=4, overrides=_WRITE_HEAVY
    ),
    "write-heavy-4proc": SuiteRow(
        "threaded",
        "pipelined",
        shards=4,
        processes=True,
        overrides=_WRITE_HEAVY,
    ),
    # Latency under load: fixed offered rates (transactions/s) from well
    # below to beyond saturation, binary codec, async server.  The last
    # point is *meant* to exceed capacity so the knee of the curve is in
    # frame.
    "open-1k": SuiteRow("async", "pipelined", overrides=_open_row(1000.0)),
    "open-4k": SuiteRow("async", "pipelined", overrides=_open_row(4000.0)),
    "open-8k": SuiteRow("async", "pipelined", overrides=_open_row(8000.0)),
    "open-12k": SuiteRow("async", "pipelined", overrides=_open_row(12000.0)),
    # Sustained soak at a rate the server can hold, 4× the row duration:
    # long enough for drift (backlog creep, allocator growth) to surface
    # in the tail percentiles.
    "soak-8k": SuiteRow(
        "async", "pipelined", overrides=_open_row(8000.0), duration_scale=4.0
    ),
}

#: Rows run by default (also the order they are reported in).
DEFAULT_SERVERS = (
    "threaded",
    "threaded-pipelined",
    "async",
    "async-binary",
    "read-heavy-nocache",
    "read-heavy-cached",
    "write-heavy-1shard",
    "write-heavy-4shard",
    "write-heavy-4proc",
    "open-1k",
    "open-4k",
    "open-8k",
    "open-12k",
    "soak-8k",
)


#: Perf counters reported as per-row deltas in the suite report.
_ROW_PERF_KEYS = (
    "net_requests_batched",
    "net_batches_drained",
    "net_flushes_coalesced",
    "net_backpressure_stalls",
    "cache_hits",
    "cache_misses",
    "cache_fallbacks",
    "cache_divergence_charged",
    "net_codec_binary_frames_encoded",
    "net_codec_binary_frames_decoded",
    "net_codec_negotiation_downgrades",
    "net_codec_json_fallbacks",
)


def run_suite(
    config: LoadConfig = DEFAULT_CONFIG,
    servers: tuple[str, ...] = DEFAULT_SERVERS,
    progress: Callable[[str], None] | None = None,
    isolate_client: bool = True,
) -> dict:
    """Benchmark each suite row on a fresh database; return the report.

    Rows are named in :data:`SUITE_ROWS`: ``threaded`` is the pre-PR
    baseline (serial wire discipline), ``threaded-pipelined`` the old
    architecture under the new pipelined wire, ``async`` the new server,
    and the ``read-heavy-*`` pair ablates the epsilon snapshot read
    cache under an identical read-heavy workload.

    ``isolate_client=True`` (the default) runs the load generator in a
    separate process so it never contends for the server's GIL; tests
    pass False to avoid subprocess startup per case.
    """
    from dataclasses import replace

    drive = run_load_isolated if isolate_client else run_load
    results: dict[str, dict] = {}
    for kind in servers:
        row = SUITE_ROWS[kind]
        case_config = replace(
            config,
            discipline=row.discipline,
            duration_s=config.duration_s * row.duration_scale,
            **dict(row.overrides),
        )
        database = build_bench_database(config.objects)
        counters_before = perf.counters.snapshot()
        port, stop = _start_server(
            row.server,
            database,
            snapshot_cache=row.snapshot_cache,
            shards=row.shards,
            processes=row.processes,
        )
        try:
            results[kind] = drive("127.0.0.1", port, case_config)
        finally:
            stop()
        counters_after = perf.counters.snapshot()
        results[kind]["perf"] = {
            key: counters_after[key] - counters_before[key]
            for key in _ROW_PERF_KEYS
        }
        results[kind]["row"] = {
            "server": row.server,
            "discipline": row.discipline,
            "snapshot_cache": row.snapshot_cache,
            "shards": row.shards,
            "processes": bool(row.processes),
            "overrides": dict(row.overrides),
        }
        # The load actually offered to this row — mode/rate/codec vary
        # per row, so the global config block alone would be misleading.
        results[kind]["load"] = {
            "mode": case_config.mode,
            "rate": case_config.rate,
            "codec": case_config.codec,
            "discipline": case_config.discipline,
            "duration_s": case_config.duration_s,
        }
        if progress is not None:
            entry = results[kind]
            progress(
                f"  {kind:<18} {entry['requests_per_s']:>12,.0f} req/s  "
                f"{entry['transactions_per_s']:>10,.0f} txn/s  "
                f"p50 {entry['latency_ms']['p50']:.2f} ms  "
                f"p99 {entry['latency_ms']['p99']:.2f} ms"
            )
    report = {
        "schema": SCHEMA_VERSION,
        "recorded": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            # Process sharding's headline number only means anything
            # relative to how many cores the run actually had.
            "cpu_count": os.cpu_count(),
        },
        "config": {
            "connections": config.connections,
            "depth": config.depth,
            "duration_s": config.duration_s,
            "objects": config.objects,
            "reads_per_txn": config.reads_per_txn,
            "mode": config.mode,
            "rate": config.rate,
        },
        "servers": results,
    }
    if "threaded" in results and "async" in results:
        base = results["threaded"]["requests_per_s"]
        report["speedup_requests_per_s"] = (
            round(results["async"]["requests_per_s"] / base, 2) if base else 0.0
        )
    if "threaded-pipelined" in results and "async" in results:
        base = results["threaded-pipelined"]["requests_per_s"]
        report["speedup_vs_threaded_pipelined"] = (
            round(results["async"]["requests_per_s"] / base, 2) if base else 0.0
        )
    if "read-heavy-nocache" in results and "read-heavy-cached" in results:
        base = results["read-heavy-nocache"]["requests_per_s"]
        report["speedup_cached_reads"] = (
            round(results["read-heavy-cached"]["requests_per_s"] / base, 2)
            if base
            else 0.0
        )
    if "write-heavy-1shard" in results and "write-heavy-4shard" in results:
        base = results["write-heavy-1shard"]["requests_per_s"]
        report["speedup_sharded"] = (
            round(results["write-heavy-4shard"]["requests_per_s"] / base, 2)
            if base
            else 0.0
        )
    if "write-heavy-1shard" in results and "write-heavy-4proc" in results:
        from repro.engine.procshard import process_sharding_unavailable

        base = results["write-heavy-1shard"]["requests_per_s"]
        report["speedup_process_sharded"] = (
            round(results["write-heavy-4proc"]["requests_per_s"] / base, 2)
            if base
            else 0.0
        )
        degraded = process_sharding_unavailable()
        if degraded is not None:
            # The 4proc row silently ran on the thread composite; say so
            # rather than let ~1.0x read as "processes do not help".
            report["process_sharding_degraded"] = degraded
    if "async" in results and "async-binary" in results:
        base = results["async"]["requests_per_s"]
        report["speedup_binary_codec"] = (
            round(results["async-binary"]["requests_per_s"] / base, 2)
            if base
            else 0.0
        )
    latency_vs_load = [
        {
            "row": kind,
            "offered_rate_txn_s": entry["load"]["rate"],
            "achieved_txn_s": entry["transactions_per_s"],
            "p50_ms": entry["latency_ms"]["p50"],
            "p90_ms": entry["latency_ms"]["p90"],
            "p99_ms": entry["latency_ms"]["p99"],
        }
        for kind, entry in results.items()
        if entry["load"]["mode"] == "open" and entry["load"]["rate"]
    ]
    if latency_vs_load:
        report["latency_vs_load"] = latency_vs_load
    return report


def check_p99_regression(
    baseline: dict, current: dict, factor: float = 3.0
) -> list[str]:
    """p99 latency guard: closed-loop rows vs. the checked-in baseline.

    Returns one problem string per row whose current p99 exceeds
    ``factor`` × the baseline p99 (empty list = pass).  Open-loop rows
    are skipped: past the saturation knee the open-loop tail measures
    the backlog, which is unbounded by design, so it cannot gate.
    Rows missing from either report are skipped — new rows have no
    baseline, retired rows no current number.
    """
    problems = []
    for kind, entry in current.get("servers", {}).items():
        if entry.get("load", {}).get("mode", "closed") == "open":
            continue
        base = baseline.get("servers", {}).get(kind)
        if base is None:
            continue
        base_p99 = base.get("latency_ms", {}).get("p99", 0.0)
        cur_p99 = entry.get("latency_ms", {}).get("p99", 0.0)
        if base_p99 and cur_p99 > base_p99 * factor:
            problems.append(
                f"{kind}: p99 {cur_p99:.2f} ms vs baseline "
                f"{base_p99:.2f} ms (> {factor:g}x)"
            )
    return problems


# -- the baseline file ---------------------------------------------------------


def write_baseline(report: dict, path: str | Path) -> None:
    Path(path).write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def load_baseline(path: str | Path) -> dict | None:
    """The parsed baseline, or None when missing/unreadable/incompatible."""
    target = Path(path)
    if not target.is_file():
        return None
    try:
        report = json.loads(target.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    if report.get("schema") != SCHEMA_VERSION:
        return None
    return report


def format_report(report: dict) -> str:
    config = report["config"]
    lines = [
        f"bench-net: {config['connections']} connections × depth "
        f"{config['depth']}, {config['mode']} loop, "
        f"{config['duration_s']:g}s",
        f"{'server':<18} {'req/s':>12} {'txn/s':>10} "
        f"{'p50 ms':>8} {'p90 ms':>8} {'p99 ms':>8}",
    ]
    for kind, entry in report["servers"].items():
        lat = entry["latency_ms"]
        lines.append(
            f"{kind:<18} {entry['requests_per_s']:>12,.0f} "
            f"{entry['transactions_per_s']:>10,.0f} "
            f"{lat['p50']:>8.2f} {lat['p90']:>8.2f} {lat['p99']:>8.2f}"
        )
        cache_hits = entry.get("perf", {}).get("cache_hits", 0)
        if cache_hits:
            served = entry["perf"]
            total = cache_hits + served.get("cache_misses", 0) + served.get(
                "cache_fallbacks", 0
            )
            lines.append(
                f"{'':<18}   snapshot cache: {cache_hits:,} hits "
                f"({cache_hits / total:.0%} of eligible reads), "
                f"{served.get('cache_divergence_charged', 0.0):g} "
                "divergence charged"
            )
    if "speedup_requests_per_s" in report:
        lines.append(
            "async vs threaded baseline: "
            f"{report['speedup_requests_per_s']:.2f}x"
        )
    if "speedup_vs_threaded_pipelined" in report:
        lines.append(
            "async vs threaded-pipelined: "
            f"{report['speedup_vs_threaded_pipelined']:.2f}x"
        )
    if "speedup_cached_reads" in report:
        lines.append(
            "snapshot cache on vs off (read-heavy): "
            f"{report['speedup_cached_reads']:.2f}x"
        )
    if "speedup_sharded" in report:
        lines.append(
            "4 shards vs 1 (write-heavy, threaded): "
            f"{report['speedup_sharded']:.2f}x"
        )
    if "speedup_process_sharded" in report:
        suffix = ""
        if "process_sharding_degraded" in report:
            suffix = (
                " [degraded to threads: "
                f"{report['process_sharding_degraded']}]"
            )
        lines.append(
            "4 process shards vs 1 (write-heavy, threaded): "
            f"{report['speedup_process_sharded']:.2f}x{suffix}"
        )
    if "speedup_binary_codec" in report:
        lines.append(
            "binary codec vs JSON (async, pipelined): "
            f"{report['speedup_binary_codec']:.2f}x"
        )
    if "latency_vs_load" in report:
        lines.append("latency under offered load (open loop, binary codec):")
        lines.append(
            f"  {'row':<10} {'offered txn/s':>14} {'achieved':>10} "
            f"{'p50 ms':>8} {'p90 ms':>8} {'p99 ms':>8}"
        )
        for point in report["latency_vs_load"]:
            lines.append(
                f"  {point['row']:<10} {point['offered_rate_txn_s']:>14,.0f} "
                f"{point['achieved_txn_s']:>10,.0f} "
                f"{point['p50_ms']:>8.2f} {point['p90_ms']:>8.2f} "
                f"{point['p99_ms']:>8.2f}"
            )
    return "\n".join(lines)


def format_comparison(baseline: dict, current: dict) -> str:
    """Side-by-side requests/s and p99 per server kind vs. the baseline."""
    lines = [
        f"{'server':<18} {'baseline req/s':>15} {'current req/s':>15} "
        f"{'ratio':>7} {'base p99':>9} {'cur p99':>9}"
    ]
    for kind, entry in current["servers"].items():
        cur_p99 = entry.get("latency_ms", {}).get("p99", 0.0)
        base = baseline.get("servers", {}).get(kind)
        if base is None:
            lines.append(
                f"{kind:<18} {'—':>15} "
                f"{entry['requests_per_s']:>15,.0f} {'new':>7} "
                f"{'—':>9} {cur_p99:>9.2f}"
            )
            continue
        ratio = (
            entry["requests_per_s"] / base["requests_per_s"]
            if base["requests_per_s"]
            else 0.0
        )
        base_p99 = base.get("latency_ms", {}).get("p99", 0.0)
        lines.append(
            f"{kind:<18} {base['requests_per_s']:>15,.0f} "
            f"{entry['requests_per_s']:>15,.0f} {ratio:>6.2f}x "
            f"{base_p99:>9.2f} {cur_p99:>9.2f}"
        )
    return "\n".join(lines)


def _child_main(argv: list[str]) -> int:
    """Entry point for :func:`run_load_isolated` children."""
    host, port, payload = argv
    spec = json.loads(payload)
    config = LoadConfig(
        connections=int(spec["connections"]),
        depth=int(spec["depth"]),
        duration_s=float(spec["duration_s"]),
        objects=int(spec["objects"]),
        reads_per_txn=int(spec["reads_per_txn"]),
        mode=spec["mode"],
        rate=spec["rate"],
        discipline=spec.get("discipline", "pipelined"),
        codec=spec.get("codec", "json"),
        write_fraction=float(spec.get("write_fraction", 0.0)),
    )
    print(json.dumps(run_load(host, int(port), config)))
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(_child_main(sys.argv[1:]))
