"""Experiment configuration: bound levels, sweeps, defaults.

Section 7 of the paper fixes the study's parameters; this module encodes
them once so the figure definitions, the benchmarks and the CLI all agree:

* the epsilon levels table (high / medium / low / zero);
* the MPL range 1–10 (ten client workstations);
* the TIL sweep of Figure 11 and the OIL sweep (in units of the average
  write change ``w``) of Figures 12–13;
* measurement parameters: simulated duration, warm-up, repetitions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.bounds import STANDARD_LEVELS, EpsilonLevel
from repro.errors import ExperimentError
from repro.workload.spec import PAPER_WORKLOAD, WorkloadSpec

__all__ = [
    "MPL_RANGE",
    "TIL_SWEEP",
    "OIL_SWEEP_W",
    "bounds_table",
    "MeasurementPlan",
    "FAST_PLAN",
    "PAPER_PLAN",
]

#: Multiprogramming levels studied (the paper's LAN had 10 workstations).
MPL_RANGE = tuple(range(1, 11))

#: TIL values swept in Figure 11 (zero = the SR end of the axis).
TIL_SWEEP = (0.0, 5_000.0, 10_000.0, 25_000.0, 50_000.0, 75_000.0, 100_000.0, 150_000.0)

#: OIL values for Figures 12–13, in units of the average write change w.
OIL_SWEEP_W = (0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, math.inf)

#: The MPL the paper holds constant in Figures 11–13.
BOUND_STUDY_MPL = 4


def bounds_table(levels: tuple[EpsilonLevel, ...] = STANDARD_LEVELS) -> list[dict]:
    """The section 7 table as data (level name, TIL, TEL)."""
    return [
        {"level": level.name, "TIL": level.til, "TEL": level.tel}
        for level in levels
    ]


@dataclass(frozen=True)
class MeasurementPlan:
    """How long and how often to measure each configuration.

    ``max_workers`` and ``cell_timeout_s`` control the execution backend
    of :func:`~repro.experiments.runner.run_cells`: every ``(config,
    seed)`` repetition cell may run in a separate worker process.  Each
    cell is keyed by its explicit seed from :meth:`seeds` and results are
    reassembled in plan order, so the aggregated estimates are
    bit-identical regardless of the worker count.
    """

    duration_ms: float = 30_000.0
    warmup_ms: float = 3_000.0
    repetitions: int = 3
    base_seed: int = 1
    workload: WorkloadSpec = PAPER_WORKLOAD
    service_time_ms: float | None = None  # None = simulator default
    #: Worker processes for the cell executor; 1 = run in-process.
    max_workers: int = 1
    #: Upper bound on one cell's wall-clock time; None = no limit.
    cell_timeout_s: float | None = None

    def __post_init__(self) -> None:
        if self.repetitions < 1:
            raise ExperimentError("repetitions must be >= 1")
        if self.duration_ms <= self.warmup_ms:
            raise ExperimentError("duration_ms must exceed warmup_ms")
        if self.max_workers < 1:
            raise ExperimentError("max_workers must be >= 1")
        if self.cell_timeout_s is not None and self.cell_timeout_s <= 0:
            raise ExperimentError("cell_timeout_s must be positive")

    def seeds(self) -> tuple[int, ...]:
        return tuple(self.base_seed + i for i in range(self.repetitions))


#: Short plan for tests and smoke runs.
FAST_PLAN = MeasurementPlan(duration_ms=10_000.0, warmup_ms=1_000.0, repetitions=1)

#: The plan used to regenerate the paper's figures.
PAPER_PLAN = MeasurementPlan(duration_ms=30_000.0, warmup_ms=3_000.0, repetitions=3)
