"""The tokenizer."""

from __future__ import annotations

import pytest

from repro.errors import LexError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenType


def kinds(source: str) -> list[str]:
    return [t.type for t in tokenize(source)]


class TestTokenize:
    def test_begin_line(self):
        tokens = tokenize("BEGIN Query TIL = 100000")
        assert [t.type for t in tokens] == [
            TokenType.KEYWORD,
            TokenType.KEYWORD,
            TokenType.KEYWORD,
            TokenType.EQUALS,
            TokenType.NUMBER,
            TokenType.NEWLINE,
            TokenType.EOF,
        ]

    def test_keywords_case_insensitive(self):
        tokens = tokenize("begin QUERY til")
        assert all(t.type == TokenType.KEYWORD for t in tokens[:3])

    def test_identifiers_vs_keywords(self):
        tokens = tokenize("t1 = Read 1863")
        assert tokens[0].type == TokenType.IDENT
        assert tokens[2].type == TokenType.KEYWORD
        assert tokens[2].keyword == "read"

    def test_operators(self):
        assert kinds("a+b-c*d/e")[:9] == [
            TokenType.IDENT,
            TokenType.PLUS,
            TokenType.IDENT,
            TokenType.MINUS,
            TokenType.IDENT,
            TokenType.STAR,
            TokenType.IDENT,
            TokenType.SLASH,
            TokenType.IDENT,
        ]

    def test_string_literal(self):
        tokens = tokenize('output("Sum is: ", t1)')
        strings = [t for t in tokens if t.type == TokenType.STRING]
        assert strings[0].value == "Sum is: "

    def test_unterminated_string(self):
        with pytest.raises(LexError, match="unterminated"):
            tokenize('output("oops')

    def test_unexpected_character(self):
        with pytest.raises(LexError, match="unexpected character"):
            tokenize("t1 = Read @99")

    def test_error_carries_position(self):
        with pytest.raises(LexError) as info:
            tokenize("ok line\nbad @")
        assert info.value.line == 2

    def test_comments_skipped(self):
        tokens = tokenize("t1 = Read 1 # trailing comment\n# full line\nt2 = Read 2")
        assert sum(1 for t in tokens if t.type == TokenType.IDENT) == 2

    def test_float_numbers(self):
        tokens = tokenize("Write 1 , 2.5")
        numbers = [t.value for t in tokens if t.type == TokenType.NUMBER]
        assert numbers == ["1", "2.5"]

    def test_consecutive_newlines_collapse(self):
        tokens = tokenize("a\n\n\nb")
        newline_count = sum(1 for t in tokens if t.type == TokenType.NEWLINE)
        assert newline_count == 2  # one between, one trailing

    def test_empty_source(self):
        tokens = tokenize("")
        assert [t.type for t in tokens] == [TokenType.EOF]
