"""The program interpreter."""

from __future__ import annotations

import pytest

from repro.errors import EvaluationError
from repro.lang.ast import (
    AggregateCall,
    BinaryOp,
    Number,
    Variable,
)
from repro.lang.eval import evaluate_expr, execute
from repro.lang.parser import parse_program


class RecordingSession:
    """A fake session: reads return object_id * 10, writes are recorded."""

    def __init__(self):
        self.writes: list[tuple[int, float]] = []

    def read(self, object_id: int) -> float:
        return float(object_id) * 10.0

    def write(self, object_id: int, value: float) -> None:
        self.writes.append((object_id, value))


class TestEvaluateExpr:
    def test_arithmetic(self):
        env = {"a": 10.0, "b": 4.0}
        assert evaluate_expr(BinaryOp("+", Variable("a"), Variable("b")), env) == 14.0
        assert evaluate_expr(BinaryOp("-", Variable("a"), Variable("b")), env) == 6.0
        assert evaluate_expr(BinaryOp("*", Variable("a"), Variable("b")), env) == 40.0
        assert evaluate_expr(BinaryOp("/", Variable("a"), Variable("b")), env) == 2.5

    def test_division_by_zero(self):
        with pytest.raises(EvaluationError, match="division by zero"):
            evaluate_expr(BinaryOp("/", Number(1.0), Number(0.0)), {})

    def test_unbound_variable(self):
        with pytest.raises(EvaluationError, match="before being read"):
            evaluate_expr(Variable("ghost"), {})

    def test_aggregates(self):
        env = {"a": 2.0, "b": 4.0, "c": 9.0}
        args = (Variable("a"), Variable("b"), Variable("c"))
        assert evaluate_expr(AggregateCall("sum", args), env) == 15.0
        assert evaluate_expr(AggregateCall("avg", args), env) == 5.0
        assert evaluate_expr(AggregateCall("min", args), env) == 2.0
        assert evaluate_expr(AggregateCall("max", args), env) == 9.0


class TestExecute:
    def test_paper_update_flow(self):
        program = parse_program(
            "BEGIN Update TEL = 10000\n"
            "t1 = Read 1923\n"
            "t2 = Read 1644\n"
            "Write 1078 , t2+3000\n"
            "COMMIT\n"
        )
        session = RecordingSession()
        result = execute(program, session)
        assert result.reads == 2
        assert result.writes == 1
        assert session.writes == [(1078, 1644 * 10.0 + 3000)]
        assert result.environment == {"t1": 19230.0, "t2": 16440.0}

    def test_output_formatting(self):
        program = parse_program(
            'BEGIN Query TIL 1\nt1 = Read 5\noutput("Sum is: ", t1)\nCOMMIT\n'
        )
        result = execute(program, RecordingSession())
        assert result.outputs == ["Sum is: 50"]

    def test_output_callback(self):
        program = parse_program(
            'BEGIN Query TIL 1\nt1 = Read 5\noutput(t1)\nCOMMIT\n'
        )
        seen = []
        execute(program, RecordingSession(), on_output=seen.append)
        assert seen == ["50"]

    def test_abort_terminator_flagged(self):
        program = parse_program("BEGIN Query TIL 1\nt1 = Read 1\nABORT\n")
        result = execute(program, RecordingSession())
        assert result.aborted_by_program

    def test_bare_read_discards_value(self):
        program = parse_program("BEGIN Query TIL 1\nRead 7\nCOMMIT\n")
        result = execute(program, RecordingSession())
        assert result.reads == 1
        assert result.environment == {}

    def test_aggregate_guard_called_for_avg(self):
        program = parse_program(
            "BEGIN Query TIL 1\nt1 = Read 1\nt2 = Read 2\n"
            "output(avg(t1, t2))\nCOMMIT\n"
        )

        class GuardedSession(RecordingSession):
            def __init__(self):
                super().__init__()
                self.guarded = []

            def aggregate_guard(self, name, object_ids):
                self.guarded.append((name, tuple(object_ids)))

        session = GuardedSession()
        execute(program, session)
        assert session.guarded == [("avg", (1, 2))]

    def test_aggregate_guard_not_called_for_sum(self):
        program = parse_program(
            "BEGIN Query TIL 1\nt1 = Read 1\noutput(sum(t1))\nCOMMIT\n"
        )

        class GuardedSession(RecordingSession):
            def aggregate_guard(self, name, object_ids):  # pragma: no cover
                raise AssertionError("sum must not be guarded")

        execute(program, GuardedSession())

    def test_guard_rejection_propagates(self):
        program = parse_program(
            "BEGIN Query TIL 1\nt1 = Read 1\noutput(avg(t1))\nCOMMIT\n"
        )

        class RejectingSession(RecordingSession):
            def aggregate_guard(self, name, object_ids):
                raise EvaluationError("result inconsistency exceeds TIL")

        with pytest.raises(EvaluationError, match="result inconsistency"):
            execute(program, RejectingSession())
