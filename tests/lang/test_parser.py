"""The parser, exercised on the paper's own example programs."""

from __future__ import annotations

import pytest

from repro.errors import ParseError
from repro.lang.ast import (
    AggregateCall,
    BinaryOp,
    Number,
    OutputStmt,
    ReadStmt,
    Variable,
    WriteStmt,
)
from repro.lang.parser import parse_program, parse_script

PAPER_QUERY = """\
BEGIN Query TIL = 100000
t1 = Read 1863
t2 = Read 1427
t3 = Read 1912
t4 = Read 1543
t5 = Read 1657
t6 = Read 1138
t7 = Read 1729
t8 = Read 1336
output("Sum is: ", t1+t2+t3+t4+t5+t6+t7+t8)
COMMIT
"""

PAPER_UPDATE = """\
BEGIN Update TEL = 10000
t1 = Read 1923
t2 = Read 1644
Write 1078 , t2+3000
t3 = Read 1066
t4 = Read 1213
Write 1727 , t3-t4+4230
Write 1501 , t1+t4+7935
COMMIT
"""

PAPER_HIERARCHICAL = """\
BEGIN Query TIL 10000
LIMIT company 4000
LIMIT preferred 3000
LIMIT personal 3000
LIMIT com1 200
t1 = Read 2745
t2 = Read 4639
COMMIT
"""


class TestPaperPrograms:
    def test_query_example(self):
        program = parse_program(PAPER_QUERY)
        assert program.kind == "query"
        assert program.transaction_limit == 100_000
        assert program.read_count() == 8
        assert program.write_count() == 0
        output = program.body[-1]
        assert isinstance(output, OutputStmt)
        assert output.parts[0] == "Sum is: "

    def test_update_example(self):
        program = parse_program(PAPER_UPDATE)
        assert program.kind == "update"
        assert program.transaction_limit == 10_000
        assert program.read_count() == 4
        assert program.write_count() == 3
        write = program.body[2]
        assert isinstance(write, WriteStmt)
        assert write.object_id == 1078
        assert write.value == BinaryOp("+", Variable("t2"), Number(3000.0))

    def test_hierarchical_example(self):
        program = parse_program(PAPER_HIERARCHICAL)
        assert program.group_limits == {
            "company": 4_000.0,
            "preferred": 3_000.0,
            "personal": 3_000.0,
            "com1": 200.0,
        }

    def test_equals_sign_optional(self):
        with_eq = parse_program("BEGIN Query TIL = 5\nt1 = Read 1\nCOMMIT\n")
        without = parse_program("BEGIN Query TIL 5\nt1 = Read 1\nCOMMIT\n")
        assert with_eq.transaction_limit == without.transaction_limit


class TestGrammarDetails:
    def test_bare_read(self):
        program = parse_program("BEGIN Query TIL 1\nRead 7\nCOMMIT\n")
        assert program.body[0] == ReadStmt(object_id=7, target=None)

    def test_object_limit_declaration(self):
        program = parse_program(
            "BEGIN Query TIL 1\nLIMIT object 42 99\nt1 = Read 42\nCOMMIT\n"
        )
        assert program.object_limits == {42: 99.0}

    def test_end_is_commit(self):
        program = parse_program("BEGIN Query TIL 1\nt1 = Read 1\nEND\n")
        assert program.terminator == "commit"

    def test_abort_terminator(self):
        program = parse_program("BEGIN Update TEL 1\nWrite 1 , 5\nABORT\n")
        assert program.terminator == "abort"

    def test_precedence(self):
        program = parse_program(
            "BEGIN Update TEL 1\nWrite 1 , 2+3*4\nCOMMIT\n"
        )
        expr = program.body[0].value
        assert expr == BinaryOp(
            "+", Number(2.0), BinaryOp("*", Number(3.0), Number(4.0))
        )

    def test_parentheses(self):
        program = parse_program(
            "BEGIN Update TEL 1\nWrite 1 , (2+3)*4\nCOMMIT\n"
        )
        expr = program.body[0].value
        assert expr == BinaryOp(
            "*", BinaryOp("+", Number(2.0), Number(3.0)), Number(4.0)
        )

    def test_unary_minus(self):
        program = parse_program("BEGIN Update TEL 1\nWrite 1 , -5\nCOMMIT\n")
        assert program.body[0].value == BinaryOp("-", Number(0.0), Number(5.0))

    def test_aggregate_call(self):
        program = parse_program(
            "BEGIN Query TIL 1\nt1 = Read 1\nt2 = Read 2\n"
            "output(avg(t1, t2))\nCOMMIT\n"
        )
        call = program.body[-1].parts[0]
        assert call == AggregateCall(
            "avg", (Variable("t1"), Variable("t2"))
        )

    def test_kind_limit_mismatch_rejected(self):
        with pytest.raises(ParseError, match="declares TIL"):
            parse_program("BEGIN Query TEL 5\nt1 = Read 1\nCOMMIT\n")
        with pytest.raises(ParseError, match="declares TEL"):
            parse_program("BEGIN Update TIL 5\nWrite 1 , 2\nCOMMIT\n")

    def test_missing_commit_rejected(self):
        with pytest.raises(ParseError, match="missing COMMIT"):
            parse_program("BEGIN Query TIL 5\nt1 = Read 1\n")

    def test_bad_kind_rejected(self):
        with pytest.raises(ParseError, match="Query or Update"):
            parse_program("BEGIN Batch TIL 5\nCOMMIT\n")

    def test_garbage_statement_rejected(self):
        with pytest.raises(ParseError):
            parse_program("BEGIN Query TIL 5\n+ + +\nCOMMIT\n")

    def test_trailing_input_rejected(self):
        with pytest.raises(ParseError, match="trailing input"):
            parse_program("BEGIN Query TIL 5\nt1 = Read 1\nCOMMIT\nextra\n")


class TestParseScript:
    def test_multiple_programs(self):
        script = PAPER_QUERY + "\n" + PAPER_UPDATE
        programs = parse_script(script)
        assert [p.kind for p in programs] == ["query", "update"]

    def test_empty_script(self):
        assert parse_script("\n\n# just comments\n") == []
