"""Property test: format_program and parse_program are inverses."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.lang.ast import (
    AggregateCall,
    BinaryOp,
    LimitDecl,
    Number,
    OutputStmt,
    Program,
    ReadStmt,
    Variable,
    WriteStmt,
)
from repro.lang.compiler import format_program
from repro.lang.parser import parse_program
from repro.lang.tokens import KEYWORDS

_RESERVED = set(KEYWORDS) | {"object"}

identifiers = st.from_regex(r"[a-z_][a-z0-9_]{0,6}", fullmatch=True).filter(
    lambda name: name not in _RESERVED
)

numbers = st.integers(min_value=0, max_value=1_000_000).map(
    lambda n: Number(float(n))
)

object_ids = st.integers(min_value=0, max_value=9_999)


def expressions() -> st.SearchStrategy:
    leaves = st.one_of(numbers, identifiers.map(Variable))
    return st.recursive(
        leaves,
        lambda children: st.one_of(
            st.builds(
                BinaryOp,
                st.sampled_from(["+", "-", "*", "/"]),
                children,
                children,
            ),
            st.builds(
                AggregateCall,
                st.sampled_from(["sum", "avg", "min", "max"]),
                st.lists(children, min_size=1, max_size=3).map(tuple),
            ),
        ),
        max_leaves=8,
    )


read_stmts = st.builds(
    ReadStmt, object_id=object_ids, target=st.one_of(st.none(), identifiers)
)
write_stmts = st.builds(WriteStmt, object_id=object_ids, value=expressions())
output_parts = st.one_of(
    st.text(
        alphabet=st.characters(
            codec="ascii", exclude_characters='"\n\r', exclude_categories=("Cc",)
        ),
        max_size=20,
    ),
    expressions(),
)
output_stmts = st.builds(
    OutputStmt, parts=st.lists(output_parts, min_size=1, max_size=3).map(tuple)
)

group_limits = st.builds(
    LimitDecl,
    name=identifiers,
    value=st.integers(min_value=0, max_value=100_000).map(float),
)
object_limits = st.builds(
    LimitDecl,
    name=st.just("object"),
    value=st.integers(min_value=0, max_value=100_000).map(float),
    object_id=object_ids,
)


@st.composite
def programs(draw) -> Program:
    kind = draw(st.sampled_from(["query", "update"]))
    statements = st.one_of(read_stmts, output_stmts)
    if kind == "update":
        statements = st.one_of(read_stmts, write_stmts, output_stmts)
    return Program(
        kind=kind,
        transaction_limit=float(draw(st.integers(0, 1_000_000))),
        limits=tuple(
            draw(st.lists(st.one_of(group_limits, object_limits), max_size=4))
        ),
        body=tuple(draw(st.lists(statements, max_size=8))),
        terminator=draw(st.sampled_from(["commit", "abort"])),
    )


@settings(max_examples=200)
@given(programs())
def test_format_then_parse_is_identity(program: Program):
    source = format_program(program)
    assert parse_program(source) == program


@settings(max_examples=50)
@given(programs())
def test_formatting_is_stable(program: Program):
    once = format_program(program)
    twice = format_program(parse_program(once))
    assert once == twice
