"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.bounds import ObjectBounds
from repro.core.hierarchy import GroupCatalog
from repro.engine.database import Database
from repro.engine.manager import TransactionManager


@pytest.fixture
def small_db() -> Database:
    """Ten objects with ids 1..10 and value 1000*id, unbounded OIL/OEL."""
    db = Database()
    for object_id in range(1, 11):
        db.create_object(object_id, 1000.0 * object_id)
    return db


@pytest.fixture
def manager(small_db: Database) -> TransactionManager:
    """An ESR manager over the small database."""
    return TransactionManager(small_db)


@pytest.fixture
def sr_manager(small_db: Database) -> TransactionManager:
    """A plain-SR manager over the small database."""
    return TransactionManager(small_db, protocol="sr")


@pytest.fixture
def banking_db() -> Database:
    """The paper's Figure 1 shape: company/preferred/personal groups."""
    catalog = GroupCatalog()
    catalog.add_group("company")
    catalog.add_group("preferred")
    catalog.add_group("personal")
    catalog.add_group("com1", parent="company")
    catalog.add_group("com2", parent="company")
    db = Database(catalog=catalog)
    # Two accounts per leaf-ish group, modest OIL/OEL.
    bounds = ObjectBounds(import_limit=5_000.0, export_limit=5_000.0)
    layout = {
        "com1": (101, 102),
        "com2": (103, 104),
        "preferred": (201, 202),
        "personal": (301, 302),
    }
    for group, ids in layout.items():
        for object_id in ids:
            db.create_object(object_id, 4_000.0, bounds, group=group)
    return db
