"""The perf counters, the profiler wrapper, and the hot-path suite."""

from __future__ import annotations

from repro.core.hierarchy import GroupCatalog, HierarchyLedger
from repro.experiments import hotpath
from repro.perf import PerfCounters, counters, profile_call
from repro.sim.des import Engine, Timeout


class TestPerfCounters:
    def test_engine_feeds_global_counters(self):
        counters.reset()
        engine = Engine()

        def process():
            yield Timeout(1.0)
            yield Timeout(0.0)

        engine.spawn(process())
        engine.run()
        assert counters.events_dispatched == 3
        assert counters.heap_pushes == 1
        assert counters.heap_pushes_avoided == 2

    def test_ledger_walks_and_rejections(self):
        counters.reset()
        catalog = GroupCatalog()
        catalog.add_group("g")
        catalog.assign(1, "g")
        ledger = HierarchyLedger(catalog, 100.0, {"g": 50.0})
        assert ledger.try_charge(1, 40.0).admitted
        assert not ledger.try_charge(1, 40.0).admitted
        assert counters.ledger_walks == 2
        assert counters.ledger_rejections == 1

    def test_conflict_case_tally(self):
        tally = PerfCounters()
        tally.record_conflict_case("late-write")
        tally.record_conflict_case("late-write")
        tally.record_conflict_case("read-uncommitted")
        assert tally.conflict_cases == {"late-write": 2, "read-uncommitted": 1}

    def test_snapshot_and_table(self):
        tally = PerfCounters()
        tally.events_dispatched = 7
        tally.record_conflict_case("late-write")
        snapshot = tally.snapshot()
        assert snapshot["events_dispatched"] == 7
        assert snapshot["conflict_cases"] == {"late-write": 1}
        table = tally.format_table()
        assert "events dispatched" in table
        assert "late-write" in table

    def test_reset_zeroes_everything(self):
        tally = PerfCounters()
        tally.events_dispatched = 5
        tally.record_conflict_case("x")
        tally.reset()
        assert tally.events_dispatched == 0
        assert tally.conflict_cases == {}


class TestProfileCall:
    def test_returns_result_and_report(self):
        result, report = profile_call(lambda: sum(range(1000)), top_n=5)
        assert result == sum(range(1000))
        assert "cumulative" in report

    def test_exceptions_propagate(self):
        def boom():
            raise ValueError("boom")

        try:
            profile_call(boom)
        except ValueError as exc:
            assert "boom" in str(exc)
        else:  # pragma: no cover
            raise AssertionError("expected ValueError")


class TestHotpathSuite:
    def test_quick_suite_runs_and_reports(self):
        report = hotpath.run_suite(repeats=1, smoke_repeats=1)
        assert set(report["micro"]) == {b.name for b in hotpath.MICRO_BENCHES}
        for entry in report["micro"].values():
            assert entry["ops_per_s"] > 0
        assert report["smoke"]["wall_s"] > 0
        text = hotpath.format_report(report)
        assert "smoke_figure" in text

    def test_baseline_round_trip_and_comparison(self, tmp_path):
        report = hotpath.run_suite(repeats=1, smoke_repeats=1)
        path = tmp_path / "BENCH_hotpath.json"
        hotpath.write_baseline(report, path)
        loaded = hotpath.load_baseline(path)
        assert loaded == report
        comparison = hotpath.format_comparison(loaded, report)
        assert "1.00x" in comparison

    def test_missing_or_bad_baseline_is_none(self, tmp_path):
        assert hotpath.load_baseline(tmp_path / "nope.json") is None
        bad = tmp_path / "bad.json"
        bad.write_text("not json", encoding="utf-8")
        assert hotpath.load_baseline(bad) is None
        wrong_schema = tmp_path / "old.json"
        wrong_schema.write_text('{"schema": 0}', encoding="utf-8")
        assert hotpath.load_baseline(wrong_schema) is None
