"""The server's guard against vanished lock/wait holders."""

from __future__ import annotations

import pytest

from repro.core.bounds import TransactionBounds
from repro.engine.database import Database
from repro.errors import TransactionAborted
from repro.net.client import RemoteConnection
from repro.net.server import TransactionServer, serve_forever
import threading


@pytest.fixture
def server():
    db = Database()
    db.create_many((i, 100.0) for i in range(1, 4))
    srv = TransactionServer(db, wait_timeout=0.1)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()


class TestWaitTimeout:
    def test_waiter_aborted_when_blocker_never_finishes(self, server):
        with RemoteConnection("127.0.0.1", server.port, site=1) as writer_conn:
            writer = writer_conn.begin("update", TransactionBounds(0, 0))
            writer.write(1, 150.0)  # staged, never committed
            with RemoteConnection("127.0.0.1", server.port, site=2) as reader_conn:
                reader = reader_conn.begin("query", 0.0)
                with pytest.raises(TransactionAborted) as info:
                    reader.read(1)
                assert info.value.reason == "wait-timeout"
            writer.abort()

    def test_raw_abort_response_and_clean_registry(self, server):
        """The wire response on a timed-out wait, and no registry leak."""
        sessions = {}
        writer_id = server.dispatch(
            {"op": "begin", "kind": "update", "limit": 0.0}, sessions
        )["txn"]
        assert server.dispatch(
            {"op": "write", "txn": writer_id, "object": 1, "value": 150.0},
            sessions,
        )["ok"]
        reader_id = server.dispatch(
            {"op": "begin", "kind": "query", "limit": 0.0}, sessions
        )["txn"]
        response = server.dispatch(
            {"op": "read", "txn": reader_id, "object": 1}, sessions
        )
        assert response == {
            "ok": False,
            "error": "aborted",
            "reason": "wait-timeout",
        }
        # The aborted waiter must not linger in the wait-for relation.
        assert server.manager.waits.waiting_on(reader_id) is None
        server.manager.waits.assert_no_cycle()

    def test_wait_resolved_before_timeout_succeeds(self, server):
        import time

        with RemoteConnection("127.0.0.1", server.port, site=1) as writer_conn:
            writer = writer_conn.begin("update", TransactionBounds(0, 0))
            writer.write(1, 150.0)
            results = []

            def delayed_commit():
                time.sleep(0.03)  # well inside the 0.1 s timeout
                writer.commit()

            thread = threading.Thread(target=delayed_commit)
            thread.start()
            with RemoteConnection("127.0.0.1", server.port, site=2) as reader_conn:
                with reader_conn.begin("query", 0.0) as reader:
                    results.append(reader.read(1))
            thread.join()
        assert results == [150.0]


class TestServeForeverForwarding:
    """Regression: serve_forever used to drop every policy knob."""

    def _database(self) -> Database:
        db = Database()
        db.create_many((i, 100.0) for i in range(1, 4))
        return db

    def test_policies_reach_the_server_and_manager(self):
        srv = serve_forever(
            self._database(),
            export_policy="sum",
            wait_timeout=0.05,
            wait_policy="abort",
        )
        try:
            assert srv.wait_timeout == 0.05
            assert srv.manager.export_policy == "sum"
            assert srv.manager.wait_policy == "abort"
        finally:
            srv.shutdown()
            srv.server_close()

    def test_abort_wait_policy_is_honoured_end_to_end(self):
        srv = serve_forever(self._database(), wait_policy="abort")
        try:
            sessions = {}
            writer_id = srv.dispatch(
                {"op": "begin", "kind": "update", "limit": 0.0}, sessions
            )["txn"]
            srv.dispatch(
                {"op": "write", "txn": writer_id, "object": 1, "value": 150.0},
                sessions,
            )
            reader_id = srv.dispatch(
                {"op": "begin", "kind": "query", "limit": 0.0}, sessions
            )["txn"]
            # Under wait_policy="abort" the conflicting read aborts at
            # once rather than blocking until the wait timeout.
            response = srv.dispatch(
                {"op": "read", "txn": reader_id, "object": 1}, sessions
            )
            assert response["ok"] is False
            assert response["reason"] == "conflict-abort"
        finally:
            srv.shutdown()
            srv.server_close()
