"""The server's guard against vanished lock/wait holders."""

from __future__ import annotations

import pytest

from repro.core.bounds import TransactionBounds
from repro.engine.database import Database
from repro.errors import TransactionAborted
from repro.net.client import RemoteConnection
from repro.net.server import TransactionServer, serve_forever
import threading


@pytest.fixture
def server():
    db = Database()
    db.create_many((i, 100.0) for i in range(1, 4))
    srv = TransactionServer(db, wait_timeout=0.1)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()


class TestWaitTimeout:
    def test_waiter_aborted_when_blocker_never_finishes(self, server):
        with RemoteConnection("127.0.0.1", server.port, site=1) as writer_conn:
            writer = writer_conn.begin("update", TransactionBounds(0, 0))
            writer.write(1, 150.0)  # staged, never committed
            with RemoteConnection("127.0.0.1", server.port, site=2) as reader_conn:
                reader = reader_conn.begin("query", 0.0)
                with pytest.raises(TransactionAborted) as info:
                    reader.read(1)
                assert info.value.reason == "wait-timeout"
            writer.abort()

    def test_wait_resolved_before_timeout_succeeds(self, server):
        import time

        with RemoteConnection("127.0.0.1", server.port, site=1) as writer_conn:
            writer = writer_conn.begin("update", TransactionBounds(0, 0))
            writer.write(1, 150.0)
            results = []

            def delayed_commit():
                time.sleep(0.03)  # well inside the 0.1 s timeout
                writer.commit()

            thread = threading.Thread(target=delayed_commit)
            thread.start()
            with RemoteConnection("127.0.0.1", server.port, site=2) as reader_conn:
                with reader_conn.begin("query", 0.0) as reader:
                    results.append(reader.read(1))
            thread.join()
        assert results == [150.0]
