"""Wire-conformance suite: both servers must answer identical bytes.

``test_server.py`` already runs the client-level integration tests
against both servers; this module drives the wire directly — scripted
request sequences, malformed input, disconnect edge cases — and checks
the two implementations answer the same way, plus that the fast-path
codec in ``repro.net.protocol`` is byte-identical to the generic one.
"""

from __future__ import annotations

import json
import socket
import time

import pytest

from repro.engine.api import PROTOCOLS
from repro.engine.database import Database
from repro.errors import ProtocolError
from repro.net.aioserver import serve_in_thread as serve_async
from repro.net.protocol import (
    MAX_LINE_BYTES,
    decode_message,
    encode_message,
    encode_response,
)
from repro.net.server import serve_forever


def _database() -> Database:
    db = Database()
    db.create_many((i, float(i) * 100.0) for i in range(1, 11))
    return db


@pytest.fixture(
    params=["threaded", "async", "threaded-sharded", "async-sharded"]
)
def server(request):
    db = _database()
    shards = 3 if request.param.endswith("-sharded") else 1
    if request.param.startswith("threaded"):
        srv = serve_forever(db, shards=shards)
        yield srv
        srv.shutdown()
        srv.server_close()
    else:
        handle = serve_async(db, shards=shards)
        yield handle
        handle.shutdown()


def _connect(port: int) -> socket.socket:
    sock = socket.create_connection(("127.0.0.1", port), timeout=10.0)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock


def _read_lines(sock: socket.socket, count: int) -> list[bytes]:
    buffer = b""
    while buffer.count(b"\n") < count:
        chunk = sock.recv(65536)
        if not chunk:
            break  # EOF: return however many lines arrived
        buffer += chunk
    return buffer.split(b"\n")[:count]


def _run_script(port: int, script: list[dict]) -> list[dict]:
    sock = _connect(port)
    try:
        sock.sendall(b"".join(encode_message(m) for m in script))
        lines = _read_lines(sock, len(script))
        return [json.loads(line) for line in lines]
    finally:
        sock.close()


SCRIPT = [
    {"op": "begin", "kind": "update", "limit": 1e6, "id": 1},
    {"op": "read", "txn": 1, "object": 3, "id": 2},
    {"op": "write", "txn": 1, "object": 3, "value": 42.5, "id": 3},
    {"op": "write", "txn": 1, "object": 1, "id": 4},  # missing value
    {"op": "commit", "txn": 1, "id": 5},
    {"op": "begin", "kind": "query", "limit": 1e6, "id": 6},
    {"op": "read", "txn": 2, "object": 3, "id": 7},
    {"op": "abort", "txn": 2, "id": 8},
    {"op": "read", "txn": 999, "object": 1, "id": 9},  # unknown txn
    {"op": "frobnicate", "id": 10},  # unknown op
    {"op": "begin", "kind": "query", "limit": 0.0},  # untagged
]


def _assert_script_responses(responses: list[dict]) -> None:
    """The expected answers to ``SCRIPT`` — the same for every protocol
    (a single sequential client sees only zero-inconsistency grants)."""
    assert [r.get("id") for r in responses[:10]] == list(range(1, 11))
    assert responses[0] == {"ok": True, "txn": 1, "id": 1}
    assert responses[1]["ok"] and responses[1]["value"] == 300.0
    assert responses[2]["ok"]
    assert responses[3]["error"] == "bad-request"
    assert responses[4] == {"ok": True, "id": 5}
    assert responses[5] == {"ok": True, "txn": 2, "id": 6}
    assert responses[6]["ok"] and responses[6]["value"] == 42.5
    assert responses[7] == {"ok": True, "id": 8}
    assert responses[8]["error"] == "unknown-transaction"
    assert responses[9]["error"] == "unknown-op"
    assert responses[10] == {"ok": True, "txn": 3}  # untagged stays untagged


class TestScriptedConformance:
    def test_both_servers_answer_identically(self):
        """The same request script produces the same response sequence."""
        threaded = serve_forever(_database())
        try:
            threaded_responses = _run_script(threaded.port, SCRIPT)
        finally:
            threaded.shutdown()
            threaded.server_close()
        aio = serve_async(_database())
        try:
            async_responses = _run_script(aio.port, SCRIPT)
        finally:
            aio.shutdown()
        assert threaded_responses == async_responses

    def test_script_responses_are_correct(self, server):
        _assert_script_responses(_run_script(server.port, SCRIPT))

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_every_wire_protocol_answers_the_script(self, protocol):
        """All five registry protocols are servable by both servers, and
        both answer the conformance script identically and correctly."""
        threaded = serve_forever(_database(), protocol=protocol)
        try:
            threaded_responses = _run_script(threaded.port, SCRIPT)
        finally:
            threaded.shutdown()
            threaded.server_close()
        aio = serve_async(_database(), protocol=protocol)
        try:
            async_responses = _run_script(aio.port, SCRIPT)
        finally:
            aio.shutdown()
        assert threaded_responses == async_responses
        _assert_script_responses(threaded_responses)

    @pytest.mark.parametrize("shards", [1, 4])
    def test_sharded_server_matches_unsharded(self, shards):
        """Shard routing is unobservable on the wire."""
        srv = serve_forever(_database(), shards=shards)
        try:
            responses = _run_script(srv.port, SCRIPT)
        finally:
            srv.shutdown()
            srv.server_close()
        _assert_script_responses(responses)


class TestWireEdgeCases:
    def test_partial_line_then_disconnect(self, server):
        """EOF mid-line answers a structured protocol error, then closes."""
        sock = _connect(server.port)
        try:
            sock.sendall(b'{"op":"time"')
            sock.shutdown(socket.SHUT_WR)
            (line,) = _read_lines(sock, 1)
            response = json.loads(line)
            assert response["ok"] is False
            assert response["error"] == "protocol"
            assert "mid-line" in response["detail"]
            assert sock.recv(4096) == b""  # connection closed after the error
        finally:
            sock.close()

    def test_invalid_utf8_line(self, server):
        sock = _connect(server.port)
        try:
            sock.sendall(b'{"op": "\xff\xfe"}\n')
            (line,) = _read_lines(sock, 1)
            response = json.loads(line)
            assert response["ok"] is False
            assert response["error"] == "protocol"
        finally:
            sock.close()

    def test_oversized_line_answers_too_large(self, server):
        sock = _connect(server.port)
        try:
            sock.sendall(b"x" * (MAX_LINE_BYTES + 2))
            (line,) = _read_lines(sock, 1)
            response = json.loads(line)
            assert response["ok"] is False
            assert response["error"] == "too_large"
            assert str(MAX_LINE_BYTES) in response["detail"]
        finally:
            sock.close()

    def test_pipelined_requests_answer_in_order_on_threaded_server(self):
        """The threaded server must answer a burst strictly in order."""
        threaded = serve_forever(_database())
        sock = _connect(threaded.port)
        try:
            burst = [
                {"op": "begin", "kind": "query", "limit": 1e6, "id": 100}
            ] + [
                {"op": "read", "txn": 1, "object": (i % 10) + 1, "id": 101 + i}
                for i in range(20)
            ]
            sock.sendall(b"".join(encode_message(m) for m in burst))
            responses = [
                json.loads(line) for line in _read_lines(sock, len(burst))
            ]
            assert [r["id"] for r in responses] == list(range(100, 121))
            assert all(r["ok"] for r in responses)
        finally:
            sock.close()
            threaded.shutdown()
            threaded.server_close()

    def test_abandoned_connection_aborts_inflight_transaction(self, server):
        """Dropping a connection mid-transaction aborts it server-side."""
        sock = _connect(server.port)
        sock.sendall(
            encode_message({"op": "begin", "kind": "update", "limit": 1e6})
            + encode_message({"op": "write", "txn": 1, "object": 5, "value": 1.0})
        )
        assert len(_read_lines(sock, 2)) == 2  # both ops acknowledged
        sock.close()  # vanish without commit/abort
        deadline = time.time() + 5.0
        while time.time() < deadline:
            if not server.manager.active_transactions():
                break
            time.sleep(0.01)
        assert not server.manager.active_transactions()
        # The staged write never took effect.
        assert server.manager.database.get(5).committed_value == 500.0


class TestFastPathCodec:
    RESPONSES = [
        {"ok": True},
        {"ok": True, "id": 7},
        {"ok": True, "txn": 12},
        {"ok": True, "txn": 12, "id": 3},
        {"ok": True, "value": 300.0, "inconsistency": 0.0, "esr_case": None},
        {
            "ok": True,
            "value": -1.5e-3,
            "inconsistency": 12.25,
            "esr_case": None,
            "id": 41,
        },
        # Shapes that must fall back to the generic encoder:
        {"ok": True, "value": 1.0, "inconsistency": 0.0, "esr_case": "case2"},
        {"ok": True, "value": float("inf"), "inconsistency": 0.0, "esr_case": None},
        {"ok": True, "time": 123.25},
        {"ok": False, "error": "aborted", "reason": "wait-timeout"},
        {"ok": True, "txn": 12, "id": "weird-id"},
        {"ok": True, "id": True},  # bool is not an int for the fast path
    ]

    def test_encode_response_matches_generic_encoder(self):
        for response in self.RESPONSES:
            assert encode_response(response) == encode_message(response), response

    def test_decode_fast_paths_match_json(self):
        lines = [
            b'{"op":"read","txn":7,"object":3,"id":9}',
            b'{"op":"commit","txn":7,"id":10}',
            # near-misses that must take (and survive) the generic parser:
            b'{"op":"read","txn":7,"object":3}',
            b'{"op": "read","txn":7,"object":3,"id":9}',
            b'{"op":"commit","txn":7,"id":10,"extra":1}',
        ]
        for line in lines:
            assert decode_message(line) == json.loads(line), line

    def test_decode_fast_path_rejects_what_json_rejects(self):
        # Python's int() accepts underscores; JSON does not — the fast
        # path must not widen the accepted language.
        for line in (
            b'{"op":"read","txn":1_0,"object":3,"id":9}',
            b'{"op":"commit","txn":-,"id":10}',
        ):
            with pytest.raises(ProtocolError):
                decode_message(line)
