"""The negotiated binary wire codec (``binary-1``) end to end.

Codec-level round trips, ``hello`` negotiation in every mixed pairing
(binary client vs JSON-only server and vice versa), malformed binary
input answered before disconnect, shard routing under binary framing,
the snapshot-cache inline answer path, and byte-identical conformance
between the threaded and asyncio servers.  The JSON wire conformance
lives in ``test_conformance.py`` — everything here is the binary side.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct

import pytest

from repro import perf
from repro.core.bounds import HIGH_EPSILON
from repro.engine.database import Database
from repro.engine.timestamps import Timestamp
from repro.errors import ProtocolError
from repro.net.aioclient import connect
from repro.net.aioserver import serve_in_thread
from repro.net.client import RemoteConnection
from repro.net.protocol import (
    BINARY_CODEC,
    FRAME_JSON,
    JSON_CODEC,
    MAX_FRAME_BYTES,
    SUPPORTED_CODECS,
    negotiate_hello,
)
from repro.net.server import serve_forever


def _database() -> Database:
    db = Database()
    db.create_many((i, float(i) * 100.0) for i in range(1, 11))
    return db


REQUESTS = [
    {"op": "begin", "kind": "query", "limit": 1e6, "id": 1},
    {
        "op": "begin",
        "kind": "update",
        "limit": 0.0,
        "timestamp": [12.5, 3, 7],
        "id": 2,
    },
    {"op": "read", "txn": 4, "object": 9, "id": 3},
    {"op": "write", "txn": 4, "object": 9, "value": -2.5, "id": 4},
    {"op": "commit", "txn": 4, "id": 5},
    {"op": "abort", "txn": 5, "id": 6},
]

RESPONSES = [
    {"ok": True, "id": 7},
    {"ok": True, "txn": 12, "id": 8},
    {
        "ok": True,
        "value": 300.0,
        "inconsistency": 40.0,
        "esr_case": "late-read-committed",
        "id": 9,
    },
    {"ok": True, "inconsistency": 0.0, "esr_case": None, "id": 10},
]

#: Shapes the fixed layouts cannot carry — must travel as JSON frames.
FALLBACKS = [
    {"op": "time", "id": 11},
    {"op": "begin", "kind": "query", "limit": 1.0, "group_limits": {"a": 2.0}},
    {"op": "read", "txn": -1, "object": 3, "id": 12},  # negative txn
    {"ok": False, "error": "aborted", "reason": "wait-timeout", "id": 13},
    {"ok": True, "time": 123.25, "id": 14},
]


class TestCodecRoundTrips:
    def test_fixed_layouts_round_trip(self):
        for message in REQUESTS:
            wire = BINARY_CODEC.encode_request(message)
            assert wire[4] != FRAME_JSON, message  # took the fixed layout
            assert BINARY_CODEC.decode(wire[4:]) == message
        for response in RESPONSES:
            wire = BINARY_CODEC.encode_response(response)
            assert wire[4] != FRAME_JSON, response
            assert BINARY_CODEC.decode(wire[4:]) == response

    def test_size_prefix_counts_type_and_payload(self):
        for message in REQUESTS:
            wire = BINARY_CODEC.encode_request(message)
            size = int.from_bytes(wire[:4], "little")
            assert size == len(wire) - 4

    def test_correlation_id_is_the_last_eight_bytes(self):
        """Load generators pull the id without decoding the frame."""
        for message in REQUESTS + RESPONSES:
            wire = (
                BINARY_CODEC.encode_request(message)
                if "op" in message
                else BINARY_CODEC.encode_response(message)
            )
            assert int.from_bytes(wire[-8:], "little") == message["id"]

    def test_long_tail_shapes_fall_back_to_json_frames(self):
        before = perf.counters.net_codec_json_fallbacks
        for message in FALLBACKS:
            if "op" in message:
                wire = BINARY_CODEC.encode_request(message)
            else:
                wire = BINARY_CODEC.encode_response(message)
            assert wire[4] == FRAME_JSON, message
            assert BINARY_CODEC.decode(wire[4:]) == message
        # Each fallback ticks twice: once encoding, once decoding.
        assert (
            perf.counters.net_codec_json_fallbacks - before == 2 * len(FALLBACKS)
        )

    def test_counters_tick_per_frame(self):
        encoded = perf.counters.net_codec_binary_frames_encoded
        decoded = perf.counters.net_codec_binary_frames_decoded
        wire = BINARY_CODEC.encode_request(REQUESTS[2])
        BINARY_CODEC.decode(wire[4:])
        assert perf.counters.net_codec_binary_frames_encoded == encoded + 1
        assert perf.counters.net_codec_binary_frames_decoded == decoded + 1

    def test_decode_rejects_malformed_frames(self):
        for frame in (
            b"",  # empty
            bytes([0x7E]),  # unknown type
            bytes([0x02]) + b"\x00" * 23,  # read payload one byte short
            bytes([0x83]) + b"\x00" * 16 + b"\x09" + b"\x00" * 8,  # bad case
            bytes([FRAME_JSON]) + b"{not json",
            bytes([FRAME_JSON]) + b"[1, 2]",  # JSON but not an object
        ):
            with pytest.raises(ProtocolError):
                BINARY_CODEC.decode(frame)


class TestNegotiateHello:
    def test_client_preference_order_wins(self):
        codec, response = negotiate_hello(
            {"op": "hello", "codecs": ["binary-1", "json"]}, SUPPORTED_CODECS
        )
        assert codec is BINARY_CODEC
        assert response == {"ok": True, "codec": "binary-1", "version": 1}

    def test_unknown_codecs_settle_on_json(self):
        before = perf.counters.net_codec_negotiation_downgrades
        codec, response = negotiate_hello(
            {"op": "hello", "codecs": ["binary-99"]}, SUPPORTED_CODECS
        )
        assert codec is JSON_CODEC
        assert response["codec"] == "json"
        assert perf.counters.net_codec_negotiation_downgrades == before + 1

    def test_json_only_server_declines_binary(self):
        codec, response = negotiate_hello(
            {"op": "hello", "codecs": ["binary-1"]}, ("json",)
        )
        assert codec is JSON_CODEC
        assert response["codec"] == "json"


class TestSyncClientNegotiation:
    def _commit_one(self, conn: RemoteConnection) -> None:
        with conn.begin("update", HIGH_EPSILON) as txn:
            assert txn.read(5) == 500.0
            txn.write(5, 555.0)

    def test_binary_client_against_binary_server(self):
        server = serve_forever(_database())
        try:
            before = perf.counters.snapshot()
            with RemoteConnection(
                "127.0.0.1", server.port, codec="binary-1"
            ) as conn:
                assert conn.negotiated_codec == "binary-1"
                self._commit_one(conn)
            after = perf.counters.snapshot()
            assert after["net_codec_binary_frames_encoded"] > before[
                "net_codec_binary_frames_encoded"
            ]
            assert after["net_codec_binary_frames_decoded"] > before[
                "net_codec_binary_frames_decoded"
            ]
            assert server.manager.database.get(5).committed_value == 555.0
        finally:
            server.shutdown()
            server.server_close()

    def test_binary_client_against_pre_negotiation_server(self):
        """``codecs=None`` emulates an old server: hello earns
        ``unknown-op`` and the client silently stays on JSON."""
        server = serve_forever(_database(), codecs=None)
        try:
            with RemoteConnection(
                "127.0.0.1", server.port, codec="binary-1"
            ) as conn:
                assert conn.negotiated_codec == "json"
                self._commit_one(conn)
        finally:
            server.shutdown()
            server.server_close()

    def test_binary_client_against_json_only_server(self):
        server = serve_forever(_database(), codecs=("json",))
        try:
            with RemoteConnection(
                "127.0.0.1", server.port, codec="binary-1"
            ) as conn:
                assert conn.negotiated_codec == "json"
                self._commit_one(conn)
        finally:
            server.shutdown()
            server.server_close()

    def test_json_client_against_binary_server_unchanged(self):
        server = serve_forever(_database())
        try:
            with RemoteConnection("127.0.0.1", server.port) as conn:
                assert conn.negotiated_codec == "json"
                self._commit_one(conn)
        finally:
            server.shutdown()
            server.server_close()

    def test_unknown_codec_name_rejected_client_side(self):
        with pytest.raises(ValueError):
            RemoteConnection("127.0.0.1", 1, codec="binary-99")

    @pytest.mark.parametrize("shards,processes", [(3, False), (2, True)])
    def test_sharded_servers_over_binary(self, shards, processes):
        server = serve_forever(
            _database(), shards=shards, processes=processes
        )
        try:
            with RemoteConnection(
                "127.0.0.1", server.port, codec="binary-1"
            ) as conn:
                assert conn.negotiated_codec == "binary-1"
                with conn.begin("update", HIGH_EPSILON) as txn:
                    for obj in range(1, 7):  # spans every shard
                        txn.write(obj, float(obj))
            for obj in range(1, 7):
                committed = server.manager.database.get(obj).committed_value
                assert committed == float(obj)
        finally:
            server.shutdown()
            server.server_close()


class TestAsyncClientNegotiation:
    def test_pipelined_binary_reads(self):
        handle = serve_in_thread(_database())
        try:

            async def main():
                async with await connect(
                    "127.0.0.1", handle.port, codec="binary-1"
                ) as conn:
                    assert conn.negotiated_codec == "binary-1"
                    txn = await conn.begin("query", HIGH_EPSILON)
                    values = await asyncio.gather(
                        *(txn.read(i) for i in range(1, 11))
                    )
                    await txn.commit()
                    return values

            values = asyncio.run(main())
            assert values == [float(i) * 100.0 for i in range(1, 11)]
        finally:
            handle.shutdown()

    def test_binary_client_against_json_only_async_server(self):
        handle = serve_in_thread(_database(), codecs=("json",))
        try:

            async def main():
                async with await connect(
                    "127.0.0.1", handle.port, codec="binary-1"
                ) as conn:
                    assert conn.negotiated_codec == "json"
                    txn = await conn.begin("query", HIGH_EPSILON)
                    value = await txn.read(3)
                    await txn.commit()
                    return value

            assert asyncio.run(main()) == 300.0
        finally:
            handle.shutdown()

    def test_negotiation_requires_a_quiet_connection(self):
        handle = serve_in_thread(_database(), wait_timeout=10.0)
        try:

            async def main():
                async with await connect("127.0.0.1", handle.port) as conn:
                    txn = await conn.begin("query", HIGH_EPSILON)
                    pending = asyncio.ensure_future(txn.read(3))
                    await asyncio.sleep(0)  # let the request go out
                    try:
                        with pytest.raises(ProtocolError):
                            await conn.negotiate_codec("binary-1")
                    finally:
                        await pending
                    # After the pipeline drains, negotiation succeeds.
                    assert await conn.negotiate_codec("binary-1") == "binary-1"
                    assert await txn.read(4) == 400.0
                    await txn.commit()

            asyncio.run(main())
        finally:
            handle.shutdown()

    def test_snapshot_cache_answers_inline_on_binary(self):
        """The bounded-staleness read fast path works on binary frames
        and ticks the codec counters."""
        handle = serve_in_thread(_database(), snapshot_cache=True)
        try:

            async def main():
                async with await connect(
                    "127.0.0.1", handle.port, site=1, codec="binary-1"
                ) as qconn, await connect(
                    "127.0.0.1", handle.port, site=2, codec="binary-1"
                ) as wconn:
                    query = await qconn.begin(
                        "query", 1_000.0, timestamp=Timestamp(1.0, 1, 0)
                    )
                    writer = await wconn.begin(
                        "update", 1_000.0, timestamp=Timestamp(2.0, 2, 0)
                    )
                    await writer.write(3, 340.0)
                    await writer.commit()
                    value = await query.read(3)
                    await query.commit()
                    return value

            before = perf.counters.snapshot()
            assert asyncio.run(main()) == 340.0
            after = perf.counters.snapshot()
            assert handle.manager.snapshot.stats()["hits"] >= 1
            assert after["net_codec_binary_frames_decoded"] > before[
                "net_codec_binary_frames_decoded"
            ]
            assert after["net_codec_binary_frames_encoded"] > before[
                "net_codec_binary_frames_encoded"
            ]
        finally:
            handle.shutdown()


# -- raw wire: negotiation handoff, malformed frames, conformance --------------


def _connect(port: int) -> socket.socket:
    sock = socket.create_connection(("127.0.0.1", port), timeout=10.0)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock


def _negotiate_raw(sock: socket.socket) -> bytes:
    """Send a hello line; returns bytes already read past the response."""
    sock.sendall(b'{"op":"hello","codecs":["binary-1"]}\n')
    buffer = b""
    while b"\n" not in buffer:
        chunk = sock.recv(65536)
        assert chunk, "server closed during negotiation"
        buffer += chunk
    line, rest = buffer.split(b"\n", 1)
    response = json.loads(line)
    assert response["ok"] and response["codec"] == "binary-1"
    return rest


def _read_frames(
    sock: socket.socket, count: int, initial: bytes = b""
) -> list[bytes]:
    """Read ``count`` frame bodies (type byte + payload) off the wire."""
    buffer = initial
    frames: list[bytes] = []
    while len(frames) < count:
        if len(buffer) >= 4:
            size = int.from_bytes(buffer[:4], "little")
            if len(buffer) >= 4 + size:
                frames.append(buffer[4 : 4 + size])
                buffer = buffer[4 + size :]
                continue
        chunk = sock.recv(65536)
        if not chunk:
            break  # EOF: return what arrived
        buffer += chunk
    return frames


@pytest.fixture(params=["threaded", "async"])
def server(request):
    db = _database()
    if request.param == "threaded":
        srv = serve_forever(db)
        yield srv
        srv.shutdown()
        srv.server_close()
    else:
        handle = serve_in_thread(db)
        yield handle
        handle.shutdown()


BINARY_SCRIPT = (
    BINARY_CODEC.pack_begin(1, 1e6, 1)  # update
    + BINARY_CODEC.pack_read(1, 3, 2)
    + BINARY_CODEC.pack_write(1, 3, 42.5, 3)
    + BINARY_CODEC.pack_commit(1, 4)
    + BINARY_CODEC.pack_begin(0, 1e6, 5)  # query
    + BINARY_CODEC.pack_read(2, 3, 6)
    + BINARY_CODEC.pack_abort(2, 7)
)


def _run_binary_script(port: int) -> list[bytes]:
    sock = _connect(port)
    try:
        rest = _negotiate_raw(sock)
        sock.sendall(BINARY_SCRIPT)
        return _read_frames(sock, 7, rest)
    finally:
        sock.close()


class TestBinaryConformance:
    def test_script_responses_are_correct(self, server):
        frames = [BINARY_CODEC.decode(f) for f in _run_binary_script(server.port)]
        assert frames[0] == {"ok": True, "txn": 1, "id": 1}
        assert frames[1]["value"] == 300.0 and frames[1]["id"] == 2
        assert frames[2]["ok"] and frames[2]["id"] == 3
        assert frames[3] == {"ok": True, "id": 4}
        assert frames[4] == {"ok": True, "txn": 2, "id": 5}
        assert frames[5]["value"] == 42.5 and frames[5]["id"] == 6
        assert frames[6] == {"ok": True, "id": 7}

    def test_both_servers_answer_identical_bytes(self):
        threaded = serve_forever(_database())
        try:
            threaded_frames = _run_binary_script(threaded.port)
        finally:
            threaded.shutdown()
            threaded.server_close()
        handle = serve_in_thread(_database())
        try:
            async_frames = _run_binary_script(handle.port)
        finally:
            handle.shutdown()
        assert threaded_frames == async_frames

    def test_pipelined_burst_with_requests_behind_the_hello(self, server):
        """Binary frames sent in the same TCP segment as the hello line
        must survive the codec switch losslessly."""
        sock = _connect(server.port)
        try:
            sock.sendall(
                b'{"op":"hello","codecs":["binary-1"]}\n' + BINARY_SCRIPT
            )
            buffer = b""
            while b"\n" not in buffer:
                buffer += sock.recv(65536)
            line, rest = buffer.split(b"\n", 1)
            assert json.loads(line)["codec"] == "binary-1"
            frames = _read_frames(sock, 7, rest)
            assert BINARY_CODEC.decode(frames[0]) == {
                "ok": True,
                "txn": 1,
                "id": 1,
            }
            assert BINARY_CODEC.decode(frames[6]) == {"ok": True, "id": 7}
        finally:
            sock.close()


class TestBinaryWireEdgeCases:
    def test_oversized_frame_answers_too_large(self, server):
        sock = _connect(server.port)
        try:
            rest = _negotiate_raw(sock)
            sock.sendall(struct.pack("<I", MAX_FRAME_BYTES + 1))
            (frame,) = _read_frames(sock, 1, rest)
            response = BINARY_CODEC.decode(frame)
            assert response["ok"] is False
            assert response["error"] == "too_large"
            assert sock.recv(4096) == b""  # connection closed after
        finally:
            sock.close()

    def test_unknown_frame_type_answers_protocol_error(self, server):
        sock = _connect(server.port)
        try:
            rest = _negotiate_raw(sock)
            sock.sendall(struct.pack("<IB", 1, 0x7E))
            (frame,) = _read_frames(sock, 1, rest)
            response = BINARY_CODEC.decode(frame)
            assert response["ok"] is False
            assert response["error"] == "protocol"
            assert sock.recv(4096) == b""
        finally:
            sock.close()

    def test_garbage_payload_answers_protocol_error(self, server):
        sock = _connect(server.port)
        try:
            rest = _negotiate_raw(sock)
            # A read frame with a truncated payload (valid size prefix).
            sock.sendall(struct.pack("<IB", 11, 0x02) + b"\x00" * 10)
            (frame,) = _read_frames(sock, 1, rest)
            response = BINARY_CODEC.decode(frame)
            assert response["ok"] is False
            assert response["error"] == "protocol"
        finally:
            sock.close()

    def test_truncated_frame_then_eof(self, server):
        sock = _connect(server.port)
        try:
            rest = _negotiate_raw(sock)
            sock.sendall(BINARY_CODEC.pack_read(1, 1, 1)[:12])
            sock.shutdown(socket.SHUT_WR)
            (frame,) = _read_frames(sock, 1, rest)
            response = BINARY_CODEC.decode(frame)
            assert response["ok"] is False
            assert response["error"] == "protocol"
            assert "mid-frame" in response["detail"]
        finally:
            sock.close()
