"""Behaviour unique to the asyncio server: pipelining, out-of-order
responses, async wait-timeouts, batching and backpressure counters.

The cross-server conformance checks live in ``test_conformance.py`` and
``test_server.py``; this module exercises what only the asyncio server
promises — concurrency on one connection — using the pipelined
:mod:`repro.net.aioclient`.
"""

from __future__ import annotations

import asyncio
import json
import socket

import pytest

from repro import perf
from repro.core.bounds import HIGH_EPSILON, TransactionBounds
from repro.engine.database import Database
from repro.errors import TransactionAborted
from repro.net.aioclient import connect
from repro.net.aioserver import serve_in_thread, uvloop_available
from repro.net.client import RemoteConnection
from repro.net.protocol import encode_message


def _database() -> Database:
    db = Database()
    db.create_many((i, float(i) * 100.0) for i in range(1, 21))
    return db


def _serve(**kwargs):
    return serve_in_thread(_database(), **kwargs)


class TestPipelinedClient:
    def test_many_concurrent_requests_on_one_connection(self):
        server = _serve()
        try:

            async def main():
                async with await connect("127.0.0.1", server.port) as conn:
                    txn = await conn.begin("query", HIGH_EPSILON)
                    values = await asyncio.gather(
                        *(txn.read(i) for i in range(1, 21))
                    )
                    await txn.commit()
                    return values

            values = asyncio.run(main())
            assert values == [float(i) * 100.0 for i in range(1, 21)]
        finally:
            server.shutdown()

    def test_concurrent_transactions_on_one_connection(self):
        server = _serve()
        try:

            async def session(conn, site_object):
                txn = await conn.begin("update", HIGH_EPSILON)
                value = await txn.read(site_object)
                await txn.write(site_object, value + 1.0)
                await txn.commit()

            async def main():
                async with await connect("127.0.0.1", server.port) as conn:
                    await asyncio.gather(
                        *(session(conn, obj) for obj in range(1, 9))
                    )

            asyncio.run(main())
            for obj in range(1, 9):
                committed = server.manager.database.get(obj).committed_value
                assert committed == obj * 100.0 + 1.0
        finally:
            server.shutdown()

    def test_parked_wait_does_not_block_independent_requests(self):
        """A strict-ordering wait delays only its own response: other
        transactions on the same connection keep being answered."""
        server = _serve(wait_timeout=10.0)
        try:

            async def main():
                async with await connect("127.0.0.1", server.port, site=1) as writer_conn:
                    writer = await writer_conn.begin(
                        "update", TransactionBounds(0, 0)
                    )
                    await writer.write(9, 950.0)  # uncommitted
                    async with await connect(
                        "127.0.0.1", server.port, site=2
                    ) as reader_conn:
                        blocked = await reader_conn.begin("query", 0.0)
                        parked = asyncio.ensure_future(blocked.read(9))
                        # Give the server time to park the read.
                        await asyncio.sleep(0.1)
                        assert not parked.done()
                        # An independent transaction on the SAME connection
                        # overtakes the parked response.
                        other = await reader_conn.begin("query", HIGH_EPSILON)
                        assert await other.read(3) == 300.0
                        await other.commit()
                        assert not parked.done()
                        # Unblock: the parked read resolves with the
                        # now-committed value.
                        await writer.commit()
                        assert await parked == 950.0
                        await blocked.commit()

            asyncio.run(main())
        finally:
            server.shutdown()

    def test_wait_timeout_aborts_parked_operation(self):
        server = _serve(wait_timeout=0.2)
        try:

            async def main():
                async with await connect("127.0.0.1", server.port, site=1) as writer_conn:
                    writer = await writer_conn.begin(
                        "update", TransactionBounds(0, 0)
                    )
                    await writer.write(9, 950.0)
                    async with await connect(
                        "127.0.0.1", server.port, site=2
                    ) as reader_conn:
                        blocked = await reader_conn.begin("query", 0.0)
                        with pytest.raises(TransactionAborted) as exc_info:
                            await blocked.read(9)
                        assert exc_info.value.reason == "wait-timeout"
                    await writer.commit()

            asyncio.run(main())
            assert server.manager.database.get(9).committed_value == 950.0
        finally:
            server.shutdown()


class TestSyncClientInterop:
    def test_untagged_sync_client_works_unchanged(self):
        """The strict request/response sync client needs no ``id``s."""
        server = _serve()
        try:
            with RemoteConnection("127.0.0.1", server.port, site=1) as conn:
                with conn.begin("update", HIGH_EPSILON) as txn:
                    assert txn.read(5) == 500.0
                    txn.write(5, 555.0)
            assert server.manager.database.get(5).committed_value == 555.0
        finally:
            server.shutdown()


class TestBatchingAndBackpressure:
    def _burst(self, port: int, count: int) -> list[dict]:
        sock = socket.create_connection(("127.0.0.1", port), timeout=10.0)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        try:
            sock.sendall(
                b"".join(
                    encode_message({"op": "time", "id": i}) for i in range(count)
                )
            )
            buffer = b""
            while buffer.count(b"\n") < count:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                buffer += chunk
            return [json.loads(line) for line in buffer.split(b"\n")[:count]]
        finally:
            sock.close()

    def test_burst_is_batched_and_counted(self):
        server = _serve()
        try:
            before = perf.counters.snapshot()
            responses = self._burst(server.port, 50)
            assert [r["id"] for r in responses] == list(range(50))
            after = perf.counters.snapshot()
            batched = (
                after["net_requests_batched"] - before["net_requests_batched"]
            )
            drained = (
                after["net_batches_drained"] - before["net_batches_drained"]
            )
            assert batched >= 50
            # Batching means strictly fewer dispatch ticks than requests.
            assert 0 < drained < 50
        finally:
            server.shutdown()

    def test_small_inflight_window_triggers_backpressure(self):
        server = _serve(max_inflight=4)
        try:
            before = perf.counters.net_backpressure_stalls
            responses = self._burst(server.port, 64)
            assert [r["id"] for r in responses] == list(range(64))
            assert perf.counters.net_backpressure_stalls > before
        finally:
            server.shutdown()


class TestUvloop:
    """uvloop is an optional extra; the server must be identical without it."""

    def _roundtrip(self, **kwargs) -> None:
        server = _serve(**kwargs)
        try:
            assert server.loop_implementation in ("asyncio", "uvloop")
            with RemoteConnection("127.0.0.1", server.port) as conn:
                with conn.begin("update", HIGH_EPSILON) as txn:
                    assert txn.read(5) == 500.0
                    txn.write(5, 555.0)
            assert server.manager.database.get(5).committed_value == 555.0
        finally:
            server.shutdown()
        return server.loop_implementation

    def test_auto_detection_serves_either_way(self):
        implementation = self._roundtrip()  # use_uvloop=None: auto
        if not uvloop_available():
            assert implementation == "asyncio"

    def test_requesting_uvloop_degrades_gracefully(self):
        """``use_uvloop=True`` without the package falls back to asyncio
        instead of failing — same wire behaviour either way."""
        implementation = self._roundtrip(use_uvloop=True)
        if not uvloop_available():
            assert implementation == "asyncio"

    def test_uvloop_disabled_explicitly(self):
        assert self._roundtrip(use_uvloop=False) == "asyncio"


class TestLifecycle:
    """Serve/close cycles must return the process to its thread baseline.

    ``aclose`` used to shut the shard dispatch lanes down with
    ``wait=False``, so a lane worker still finishing an engine call
    outlived its server — and every serve/close cycle in one process
    (tests, the bench suite, notebook experimentation) accumulated
    stranded threads.  The lanes are joined now; ten full cycles must
    not grow the thread count.
    """

    def _cycle(self) -> None:
        server = _serve(shards=2)
        try:
            with RemoteConnection("127.0.0.1", server.port) as conn:
                txn = conn.begin("update", 0.0)
                # One write per shard so both lanes actually spin up a
                # worker thread before the server closes.
                txn.write(1, 111.0)
                txn.write(2, 222.0)
                txn.commit()
        finally:
            server.shutdown()

    @staticmethod
    def _lane_threads():
        import threading

        return [
            thread
            for thread in threading.enumerate()
            if thread.name.startswith("aio-shard-") and thread.is_alive()
        ]

    def test_repeated_serve_close_cycles_do_not_leak_threads(self):
        import threading

        self._cycle()  # warm-up: lazy imports, executor internals
        baseline = threading.active_count()
        for _ in range(10):
            self._cycle()
            # shutdown() joins the loop thread, whose aclose joins the
            # lanes — so by the time it returns, no lane thread may
            # survive, not even "about to exit".
            assert self._lane_threads() == []
        # And the overall census is back where it started (the old
        # wait=False teardown left a window where cycles stacked up).
        assert threading.active_count() <= baseline + 1
