"""Fuzzing the wire protocol and the server dispatcher.

Whatever bytes arrive, the protocol layer must either produce a message
or raise :class:`ProtocolError` — never anything else — and the server
dispatcher must answer every conceivable request object with a response
dict instead of crashing the connection thread.  The binary-1 framing
gets the same treatment: truncated, padded and oversized frames —
including the 0x0F tagged-JSON frame — must decode or raise, and a live
server (threaded and async alike) must answer them with a protocol
error and keep serving fresh connections.
"""

from __future__ import annotations

import json
import socket

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.database import Database
from repro.errors import ProtocolError
from repro.net.aioserver import serve_in_thread
from repro.net.protocol import (
    BINARY_CODEC,
    FRAME_JSON,
    MAX_FRAME_BYTES,
    decode_message,
    encode_message,
)
from repro.net.server import TransactionServer, serve_forever


class TestDecodeFuzz:
    @given(st.binary(max_size=200))
    def test_arbitrary_bytes_never_crash(self, payload):
        try:
            message = decode_message(payload)
        except ProtocolError:
            return
        assert isinstance(message, dict)

    @given(
        st.dictionaries(
            st.text(max_size=10),
            st.one_of(
                st.integers(min_value=-(10**9), max_value=10**9),
                st.floats(allow_nan=False, allow_infinity=False),
                st.text(max_size=20),
                st.booleans(),
                st.none(),
            ),
            max_size=6,
        )
    )
    def test_json_dicts_round_trip(self, message):
        assert decode_message(encode_message(message).strip()) == message


@pytest.fixture(scope="module")
def server():
    db = Database()
    db.create_many((i, 100.0) for i in range(1, 4))
    srv = TransactionServer(db)
    yield srv
    srv.server_close()


message_values = st.one_of(
    st.integers(min_value=-(10**6), max_value=10**6),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=10),
    st.booleans(),
    st.none(),
    st.lists(st.integers(0, 100), max_size=3),
)


class TestDispatchFuzz:
    @settings(max_examples=150, deadline=None)
    @given(
        st.dictionaries(
            st.sampled_from(
                ["op", "kind", "limit", "txn", "object", "value", "timestamp"]
            ),
            message_values,
            max_size=5,
        )
    )
    def test_dispatch_always_answers(self, server, message):
        response = server.dispatch(message, sessions={})
        assert isinstance(response, dict)
        assert "ok" in response

    @settings(max_examples=60, deadline=None)
    @given(st.sampled_from(["read", "write", "commit", "abort"]), message_values)
    def test_operations_without_begin_are_refused(self, server, op, txn_id):
        message = {"op": op, "txn": txn_id, "object": 1, "value": 1.0}
        response = server.dispatch(message, sessions={})
        assert response["ok"] is False

    def test_well_formed_begin_still_works_after_fuzzing(self, server):
        sessions = {}
        response = server.dispatch(
            {"op": "begin", "kind": "query", "limit": 10.0}, sessions
        )
        assert response["ok"] is True
        txn_id = response["txn"]
        read = server.dispatch(
            {"op": "read", "txn": txn_id, "object": 1}, sessions
        )
        assert read["ok"] is True and read["value"] == 100.0
        assert server.dispatch({"op": "commit", "txn": txn_id}, sessions)["ok"]


# -- binary-1 frame fuzzing (codec level) -------------------------------------

#: One well-formed frame body of every fixed layout, plus the 0x0F
#: tagged-JSON frame (frame body = type byte + payload, no size prefix).
_VALID_FRAME_BODIES = [
    BINARY_CODEC.pack_begin(1, 10.0, 1)[4:],
    BINARY_CODEC.pack_read(1, 2, 3)[4:],
    BINARY_CODEC.pack_write(1, 2, 4.5, 6)[4:],
    BINARY_CODEC.pack_commit(1, 7)[4:],
    BINARY_CODEC.pack_abort(1, 8)[4:],
    BINARY_CODEC.encode_request({"op": "time", "id": 9})[4:],  # 0x0F
]


class TestBinaryFrameFuzz:
    @given(st.binary(min_size=0, max_size=64))
    def test_arbitrary_frame_bodies_decode_or_raise(self, body):
        try:
            message = BINARY_CODEC.decode(body)
        except ProtocolError:
            return
        assert isinstance(message, dict)

    @settings(max_examples=200)
    @given(
        st.sampled_from(_VALID_FRAME_BODIES),
        st.integers(min_value=1, max_value=40),
    )
    def test_truncated_frames_raise(self, body, cut):
        if cut >= len(body):
            return
        truncated = body[:cut]
        if truncated[0] == FRAME_JSON:
            return  # a JSON prefix may still parse; covered below
        with pytest.raises(ProtocolError):
            BINARY_CODEC.decode(truncated)

    @settings(max_examples=200)
    @given(
        st.sampled_from(_VALID_FRAME_BODIES[:5]),
        st.binary(min_size=1, max_size=16),
    )
    def test_oversized_fixed_frames_raise(self, body, padding):
        # Fixed layouts declare exact payload sizes; trailing bytes in
        # the frame body must be rejected, not silently ignored.
        with pytest.raises(ProtocolError):
            BINARY_CODEC.decode(body + padding)

    @given(st.binary(min_size=0, max_size=64))
    def test_json_frame_garbage_payload_decodes_or_raises(self, payload):
        try:
            message = BINARY_CODEC.decode(bytes((FRAME_JSON,)) + payload)
        except ProtocolError:
            return
        assert isinstance(message, dict)

    def test_json_frame_non_object_payload_raises(self):
        for payload in (b"[1,2]", b'"text"', b"42", b"null"):
            with pytest.raises(ProtocolError):
                BINARY_CODEC.decode(bytes((FRAME_JSON,)) + payload)

    def test_json_frame_roundtrip(self):
        message = {"op": "time", "id": 3}
        body = BINARY_CODEC.encode_request(message)[4:]
        assert body[0] == FRAME_JSON
        assert BINARY_CODEC.decode(body) == message


# -- binary-1 frame fuzzing (live servers) ------------------------------------


def _connect(port: int) -> socket.socket:
    sock = socket.create_connection(("127.0.0.1", port), timeout=10.0)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock


def _negotiate_binary(sock: socket.socket) -> bytes:
    sock.sendall(b'{"op":"hello","codecs":["binary-1"]}\n')
    buffer = b""
    while b"\n" not in buffer:
        chunk = sock.recv(65536)
        assert chunk, "server closed during negotiation"
        buffer += chunk
    line, rest = buffer.split(b"\n", 1)
    response = json.loads(line)
    assert response["ok"] and response["codec"] == "binary-1"
    return rest


def _drain(sock: socket.socket) -> bytes:
    data = b""
    try:
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                return data
            data += chunk
    except OSError:
        return data


@pytest.fixture(params=["threaded", "async"])
def live_server(request):
    db = Database()
    db.create_many((i, 100.0) for i in range(1, 4))
    if request.param == "threaded":
        srv = serve_forever(db)
        yield srv
        srv.shutdown()
        srv.server_close()
    else:
        handle = serve_in_thread(db)
        yield handle
        handle.shutdown()


def _assert_still_serving(port: int) -> None:
    """A fresh binary connection completes a full transaction."""
    from repro.net.client import RemoteConnection

    with RemoteConnection("127.0.0.1", port, codec="binary-1") as conn:
        assert conn.negotiated_codec == "binary-1"
        txn = conn.begin("query", 1e6)
        assert txn.read(1) == 100.0
        txn.commit()


class TestLiveBinaryFrameFuzz:
    def test_oversize_declared_frame_is_refused(self, live_server):
        sock = _connect(live_server.port)
        try:
            _negotiate_binary(sock)
            sock.sendall((MAX_FRAME_BYTES + 1).to_bytes(4, "little"))
            answer = _drain(sock)
            assert b"too_large" in answer
        finally:
            sock.close()
        _assert_still_serving(live_server.port)

    def test_truncated_frame_then_disconnect(self, live_server):
        frame = BINARY_CODEC.pack_read(1, 2, 3)
        sock = _connect(live_server.port)
        try:
            _negotiate_binary(sock)
            sock.sendall(frame[: len(frame) // 2])
        finally:
            sock.close()
        _assert_still_serving(live_server.port)

    def test_padded_fixed_frame_is_refused(self, live_server):
        # A read frame body padded with trailing bytes, with the size
        # prefix matching the padded length: framing accepts it, the
        # decoder must reject it.
        body = BINARY_CODEC.pack_read(1, 2, 3)[4:] + b"\x00\x00"
        sock = _connect(live_server.port)
        try:
            _negotiate_binary(sock)
            sock.sendall(len(body).to_bytes(4, "little") + body)
            answer = _drain(sock)
            assert b"protocol" in answer
        finally:
            sock.close()
        _assert_still_serving(live_server.port)

    def test_malformed_tagged_json_frame_is_refused(self, live_server):
        payload = b"{not json"
        body = bytes((FRAME_JSON,)) + payload
        sock = _connect(live_server.port)
        try:
            _negotiate_binary(sock)
            sock.sendall(len(body).to_bytes(4, "little") + body)
            answer = _drain(sock)
            assert b"protocol" in answer
        finally:
            sock.close()
        _assert_still_serving(live_server.port)

    def test_unknown_frame_type_is_refused(self, live_server):
        body = bytes((0x7E,)) + b"\x00" * 8
        sock = _connect(live_server.port)
        try:
            _negotiate_binary(sock)
            sock.sendall(len(body).to_bytes(4, "little") + body)
            answer = _drain(sock)
            assert b"protocol" in answer
        finally:
            sock.close()
        _assert_still_serving(live_server.port)

    def test_zero_size_frame_is_refused(self, live_server):
        sock = _connect(live_server.port)
        try:
            _negotiate_binary(sock)
            sock.sendall((0).to_bytes(4, "little"))
            answer = _drain(sock)
            assert b"too_large" in answer or answer == b""
        finally:
            sock.close()
        _assert_still_serving(live_server.port)
