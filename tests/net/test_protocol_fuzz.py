"""Fuzzing the wire protocol and the server dispatcher.

Whatever bytes arrive, the protocol layer must either produce a message
or raise :class:`ProtocolError` — never anything else — and the server
dispatcher must answer every conceivable request object with a response
dict instead of crashing the connection thread.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.database import Database
from repro.errors import ProtocolError
from repro.net.protocol import decode_message, encode_message
from repro.net.server import TransactionServer


class TestDecodeFuzz:
    @given(st.binary(max_size=200))
    def test_arbitrary_bytes_never_crash(self, payload):
        try:
            message = decode_message(payload)
        except ProtocolError:
            return
        assert isinstance(message, dict)

    @given(
        st.dictionaries(
            st.text(max_size=10),
            st.one_of(
                st.integers(min_value=-(10**9), max_value=10**9),
                st.floats(allow_nan=False, allow_infinity=False),
                st.text(max_size=20),
                st.booleans(),
                st.none(),
            ),
            max_size=6,
        )
    )
    def test_json_dicts_round_trip(self, message):
        assert decode_message(encode_message(message).strip()) == message


@pytest.fixture(scope="module")
def server():
    db = Database()
    db.create_many((i, 100.0) for i in range(1, 4))
    srv = TransactionServer(db)
    yield srv
    srv.server_close()


message_values = st.one_of(
    st.integers(min_value=-(10**6), max_value=10**6),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=10),
    st.booleans(),
    st.none(),
    st.lists(st.integers(0, 100), max_size=3),
)


class TestDispatchFuzz:
    @settings(max_examples=150, deadline=None)
    @given(
        st.dictionaries(
            st.sampled_from(
                ["op", "kind", "limit", "txn", "object", "value", "timestamp"]
            ),
            message_values,
            max_size=5,
        )
    )
    def test_dispatch_always_answers(self, server, message):
        response = server.dispatch(message, sessions={})
        assert isinstance(response, dict)
        assert "ok" in response

    @settings(max_examples=60, deadline=None)
    @given(st.sampled_from(["read", "write", "commit", "abort"]), message_values)
    def test_operations_without_begin_are_refused(self, server, op, txn_id):
        message = {"op": op, "txn": txn_id, "object": 1, "value": 1.0}
        response = server.dispatch(message, sessions={})
        assert response["ok"] is False

    def test_well_formed_begin_still_works_after_fuzzing(self, server):
        sessions = {}
        response = server.dispatch(
            {"op": "begin", "kind": "query", "limit": 10.0}, sessions
        )
        assert response["ok"] is True
        txn_id = response["txn"]
        read = server.dispatch(
            {"op": "read", "txn": txn_id, "object": 1}, sessions
        )
        assert read["ok"] is True and read["value"] == 100.0
        assert server.dispatch({"op": "commit", "txn": txn_id}, sessions)["ok"]
