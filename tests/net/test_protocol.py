"""The JSON-line wire protocol."""

from __future__ import annotations

import socket
import threading

import pytest

from repro.errors import ProtocolError
from repro.net.protocol import (
    LineReader,
    decode_message,
    encode_message,
    recv_message,
    send_message,
)


class TestEncoding:
    def test_round_trip(self):
        message = {"op": "read", "txn": 3, "object": 1863}
        assert decode_message(encode_message(message).strip()) == message

    def test_encoded_form_is_one_line(self):
        data = encode_message({"op": "time"})
        assert data.endswith(b"\n")
        assert data.count(b"\n") == 1

    def test_unencodable_message(self):
        with pytest.raises(ProtocolError):
            encode_message({"bad": object()})

    def test_malformed_json(self):
        with pytest.raises(ProtocolError, match="malformed"):
            decode_message(b"{nope")

    def test_non_object_payload(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_message(b"[1, 2, 3]")


def socket_pair():
    a, b = socket.socketpair()
    return a, b


class TestLineReader:
    def test_reads_messages_across_chunks(self):
        a, b = socket_pair()
        reader = LineReader(b)
        payload = encode_message({"op": "ping", "n": 1}) + encode_message(
            {"op": "ping", "n": 2}
        )
        # Deliver in awkward chunks from another thread.
        def feed():
            for i in range(0, len(payload), 7):
                a.sendall(payload[i : i + 7])
            a.close()

        thread = threading.Thread(target=feed)
        thread.start()
        first = recv_message(reader)
        second = recv_message(reader)
        third = recv_message(reader)
        thread.join()
        assert first == {"op": "ping", "n": 1}
        assert second == {"op": "ping", "n": 2}
        assert third is None
        b.close()

    def test_eof_mid_line_is_error(self):
        a, b = socket_pair()
        reader = LineReader(b)
        a.sendall(b'{"op": "tr')
        a.close()
        with pytest.raises(ProtocolError, match="mid-line"):
            reader.read_line()
        b.close()

    def test_send_recv_pair(self):
        a, b = socket_pair()
        send_message(a, {"op": "time"})
        assert recv_message(LineReader(b)) == {"op": "time"}
        a.close()
        b.close()
