"""Smoke tests for the bench-net load generator and baseline plumbing.

These run tiny in-process loads (no subprocess isolation, fractions of a
second) — they check the machinery works end to end, not performance.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.experiments import netbench
from repro.net.aioserver import serve_in_thread
from repro.net.server import serve_forever

TINY = replace(netbench.QUICK_CONFIG, connections=2, depth=2, duration_s=0.2)


@pytest.mark.parametrize("discipline", ["serial", "pipelined"])
@pytest.mark.parametrize("kind", ["threaded", "async"])
def test_run_load_both_servers_both_disciplines(kind, discipline):
    database = netbench.build_bench_database(TINY.objects)
    if kind == "threaded":
        server = serve_forever(database)
        stop = lambda: (server.shutdown(), server.server_close())
    else:
        server = serve_in_thread(database)
        stop = server.shutdown
    try:
        metrics = netbench.run_load(
            "127.0.0.1", server.port, replace(TINY, discipline=discipline)
        )
    finally:
        stop()
    assert metrics["errors"] == 0
    assert metrics["transactions"] > 0
    assert metrics["requests"] >= metrics["transactions"]
    assert metrics["requests_per_s"] > 0
    assert metrics["latency_ms"]["p50"] >= 0


def test_suite_report_shape_and_formatting(tmp_path):
    report = netbench.run_suite(
        TINY, servers=("threaded", "async"), isolate_client=False
    )
    assert set(report["servers"]) == {"threaded", "async"}
    assert "speedup_requests_per_s" in report
    assert "perf" in report["servers"]["async"]
    text = netbench.format_report(report)
    assert "async" in text and "req/s" in text
    path = tmp_path / "BENCH_net.json"
    netbench.write_baseline(report, path)
    loaded = netbench.load_baseline(path)
    assert loaded == report  # round-trips through JSON unchanged
    assert "ratio" in netbench.format_comparison(loaded, report)


def test_is_writer_matches_write_fraction():
    config = replace(TINY, write_fraction=1 / 4)
    flags = [config.is_writer(i) for i in range(64)]
    assert sum(flags) == 16  # exactly one writer per stride of 4
    assert flags[0] and not any(flags[1:4])
    read_only = replace(TINY, write_fraction=0.0)
    assert not any(read_only.is_writer(i) for i in range(16))


def test_suite_rows_cover_the_cache_comparison():
    rows = netbench.SUITE_ROWS
    assert set(netbench.DEFAULT_SERVERS) == set(rows)
    cached = rows["read-heavy-cached"]
    nocache = rows["read-heavy-nocache"]
    assert cached.snapshot_cache and not nocache.snapshot_cache
    # Same workload shape on both sides of the comparison, and the shape
    # is genuinely read-heavy (>= 80% of requests are query reads).
    assert cached.overrides == nocache.overrides
    shape = dict(cached.overrides)
    reads = shape["reads_per_txn"]
    stride = round(1.0 / shape["write_fraction"])
    queries = stride - 1
    total = stride * 2 + queries * reads  # begin+commit each, reads per query
    assert queries * reads / total >= 0.80
    assert not rows["threaded"].snapshot_cache


def test_read_heavy_rows_exercise_the_cache():
    # Doubles as the CI cache smoke: the cached row must actually hit.
    report = netbench.run_suite(
        replace(TINY, duration_s=0.4),
        servers=("read-heavy-nocache", "read-heavy-cached"),
        isolate_client=False,
    )
    cached = report["servers"]["read-heavy-cached"]
    nocache = report["servers"]["read-heavy-nocache"]
    assert cached["perf"]["cache_hits"] > 0
    assert nocache["perf"]["cache_hits"] == 0
    assert cached["row"]["snapshot_cache"] is True
    assert "speedup_cached_reads" in report
    text = netbench.format_report(report)
    assert "snapshot cache" in text


def test_load_baseline_rejects_bad_files(tmp_path):
    missing = tmp_path / "missing.json"
    assert netbench.load_baseline(missing) is None
    garbage = tmp_path / "garbage.json"
    garbage.write_text("{not json", encoding="utf-8")
    assert netbench.load_baseline(garbage) is None
    stale = tmp_path / "stale.json"
    stale.write_text('{"schema": -1}', encoding="utf-8")
    assert netbench.load_baseline(stale) is None


def test_config_validation():
    with pytest.raises(ValueError):
        replace(TINY, rate=100.0)  # rate without open-loop mode
    with pytest.raises(ValueError):
        replace(TINY, mode="half-open")
    with pytest.raises(ValueError):
        replace(TINY, codec="binary-2")
    replace(TINY, mode="open", rate=100.0)  # valid together


def test_binary_codec_row_beats_counters():
    report = netbench.run_suite(
        TINY, servers=("async", "async-binary"), isolate_client=False
    )
    binary = report["servers"]["async-binary"]
    assert binary["load"]["codec"] == "binary-1"
    assert binary["perf"]["net_codec_binary_frames_encoded"] > 0
    assert binary["perf"]["net_codec_binary_frames_decoded"] > 0
    assert binary["perf"]["net_codec_json_fallbacks"] == 0
    assert report["servers"]["async"]["load"]["codec"] == "json"
    assert "speedup_binary_codec" in report
    assert "binary codec" in netbench.format_report(report)


def test_open_loop_row_reports_latency_vs_load():
    report = netbench.run_suite(
        replace(TINY, duration_s=0.4),
        servers=("open-1k",),
        isolate_client=False,
    )
    entry = report["servers"]["open-1k"]
    assert entry["load"]["mode"] == "open"
    assert entry["load"]["rate"] == 1000.0
    assert entry["transactions"] > 0
    (point,) = report["latency_vs_load"]
    assert point["offered_rate_txn_s"] == 1000.0
    assert point["achieved_txn_s"] == entry["transactions_per_s"]
    assert point["p99_ms"] >= point["p50_ms"] >= 0
    assert "latency under offered load" in netbench.format_report(report)


def test_soak_row_scales_duration():
    row = netbench.SUITE_ROWS["soak-8k"]
    assert row.duration_scale == 4.0
    assert dict(row.overrides)["mode"] == "open"


def _fake_report(rows: dict) -> dict:
    return {
        "schema": netbench.SCHEMA_VERSION,
        "servers": {
            kind: {
                "latency_ms": {"p99": p99},
                "load": {"mode": mode},
            }
            for kind, (p99, mode) in rows.items()
        },
    }


def test_check_p99_regression():
    baseline = _fake_report(
        {"async": (2.0, "closed"), "open-8k": (10.0, "open")}
    )
    fine = _fake_report({"async": (5.0, "closed"), "open-8k": (500.0, "open")})
    assert netbench.check_p99_regression(baseline, fine, factor=3.0) == []
    bad = _fake_report({"async": (6.1, "closed")})
    problems = netbench.check_p99_regression(baseline, bad, factor=3.0)
    assert len(problems) == 1 and "async" in problems[0]
    # Open-loop rows never gate, however bad the tail looks; rows
    # missing from the baseline are skipped.
    saturated = _fake_report(
        {"open-8k": (9999.0, "open"), "brand-new": (50.0, "closed")}
    )
    assert netbench.check_p99_regression(baseline, saturated) == []
