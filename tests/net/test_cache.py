"""The snapshot read cache at the serving layer, on both servers.

The engine-level semantics live in ``tests/engine/test_snapshot.py``;
this module checks the wire behaviour: cached reads answered before the
threaded server's mutex / inline in the asyncio server's
``data_received``, the byte-level fast path's responses, the
per-transaction ordering guard, and the perf counters the bench rows
report.
"""

from __future__ import annotations

import json
import socket

from repro import perf
from repro.engine.database import Database
from repro.engine.timestamps import Timestamp
from repro.net.aioserver import serve_in_thread
from repro.net.client import RemoteConnection
from repro.net.server import serve_forever


def _database() -> Database:
    db = Database()
    db.create_many((i, float(i) * 100.0) for i in range(1, 9))
    return db


def _threaded(**kwargs):
    server = serve_forever(_database(), snapshot_cache=True, **kwargs)

    def stop() -> None:
        server.shutdown()
        server.server_close()

    return server, server.port, stop


def _async(**kwargs):
    handle = serve_in_thread(_database(), snapshot_cache=True, **kwargs)
    return handle, handle.port, handle.shutdown


class TestCachedReadsOverTheWire:
    def _stale_read_flow(self, port: int) -> tuple[float, float]:
        """begin query → later-ts committed write → query reads object 3."""
        qconn = RemoteConnection("127.0.0.1", port)
        wconn = RemoteConnection("127.0.0.1", port)
        try:
            query = qconn.begin("query", 1_000.0, timestamp=Timestamp(1.0, 1, 0))
            writer = wconn.begin(
                "update", 1_000.0, timestamp=Timestamp(2.0, 2, 0)
            )
            writer.write(3, 340.0)  # committed 300 -> 340
            writer.commit()
            value = query.read(3)
            query.commit()
            return value, query.inconsistency
        finally:
            qconn.close()
            wconn.close()

    def test_threaded_server_serves_and_charges(self):
        server, port, stop = _threaded()
        try:
            value, inconsistency = self._stale_read_flow(port)
            assert value == 340.0
            assert inconsistency == 40.0
            stats = server.manager.snapshot.stats()
            assert stats["hits"] >= 1
            assert stats["divergence_charged"] >= 40.0
        finally:
            stop()

    def test_async_server_serves_and_charges(self):
        handle, port, stop = _async()
        try:
            value, inconsistency = self._stale_read_flow(port)
            assert value == 340.0
            assert inconsistency == 40.0
            stats = handle.manager.snapshot.stats()
            assert stats["hits"] >= 1
            assert stats["divergence_charged"] >= 40.0
        finally:
            stop()

    def test_bound_overflow_falls_back_to_engine_rejection(self):
        # A read past every bound must still produce the engine's
        # Rejected answer — the cache downgrades, it never rejects.
        handle, port, stop = _async()
        try:
            qconn = RemoteConnection("127.0.0.1", port)
            wconn = RemoteConnection("127.0.0.1", port)
            try:
                query = qconn.begin(
                    "query", 10.0, timestamp=Timestamp(1.0, 1, 0)
                )
                writer = wconn.begin(
                    "update", 1_000.0, timestamp=Timestamp(2.0, 2, 0)
                )
                writer.write(3, 340.0)
                writer.commit()
                try:
                    query.read(3)  # staleness 40 > TIL 10
                except Exception as exc:  # aborted through the engine
                    assert "past the" in str(exc) and "limit" in str(exc)
                else:  # pragma: no cover - engine must not admit this
                    raise AssertionError("read past TIL was admitted")
                assert handle.manager.snapshot.stats()["fallbacks"] >= 1
            finally:
                qconn.close()
                wconn.close()
        finally:
            stop()

    def test_perf_counters_account_for_hits(self):
        before = perf.counters.snapshot()
        _, port, stop = _async()
        try:
            conn = RemoteConnection("127.0.0.1", port)
            try:
                txn = conn.begin("query", 0.0)
                for object_id in (1, 2, 3):
                    txn.read(object_id)
                txn.commit()
            finally:
                conn.close()
        finally:
            stop()
        after = perf.counters.snapshot()
        assert after["cache_hits"] - before["cache_hits"] >= 3


class _RawClient:
    """A socket speaking raw wire bytes; sessions are per-connection, so
    the begin and the reads it tests must share this one socket."""

    def __init__(self, port: int):
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=5.0)

    def exchange(self, payload: bytes, answers: int) -> list[dict]:
        self.sock.sendall(payload)
        data = b""
        while data.count(b"\n") < answers:
            chunk = self.sock.recv(65536)
            assert chunk, "server closed early"
            data += chunk
        return [json.loads(line) for line in data.splitlines()]

    def begin_query(self) -> int:
        [begin] = self.exchange(
            b'{"op":"begin","kind":"query","limit":1000.0,"id":1}\n', 1
        )
        assert begin["ok"] and begin["id"] == 1
        return begin["txn"]

    def close(self) -> None:
        self.sock.close()


class TestAsyncByteFastPath:
    """The asyncio server's JSON-free lane for canonical read lines."""

    def test_canonical_read_line_is_served_with_id_echo(self):
        handle, port, stop = _async()
        client = _RawClient(port)
        try:
            txn = client.begin_query()
            responses = {
                r["id"]: r
                for r in client.exchange(
                    b'{"op":"read","txn":%d,"object":2,"id":7}\n'
                    b'{"op":"read","txn":%d,"object":3,"id":8}\n' % (txn, txn),
                    2,
                )
            }
            assert responses[7] == {
                "ok": True,
                "value": 200.0,
                "inconsistency": 0.0,
                "esr_case": None,
                "id": 7,
            }
            assert responses[8]["value"] == 300.0
            assert handle.manager.snapshot.stats()["hits"] == 2
        finally:
            client.close()
            stop()

    def test_other_key_order_still_hits_through_decode(self):
        handle, port, stop = _async()
        client = _RawClient(port)
        try:
            txn = client.begin_query()
            [response] = client.exchange(
                b'{"object":2,"op":"read","txn":%d,"id":9}\n' % txn, 1
            )
            assert response["ok"] and response["value"] == 200.0
            assert handle.manager.snapshot.stats()["hits"] == 1
        finally:
            client.close()
            stop()

    def test_read_does_not_overtake_queued_op_of_same_transaction(self):
        # A commit and a read of the same transaction pipelined together:
        # the read must not be answered from the cache ahead of the
        # commit (per-transaction order), so it reaches the engine after
        # the transaction finished and is answered with an error.
        handle, port, stop = _async()
        client = _RawClient(port)
        try:
            txn = client.begin_query()
            by_id = {
                r["id"]: r
                for r in client.exchange(
                    b'{"op":"commit","txn":%d,"id":2}\n'
                    b'{"op":"read","txn":%d,"object":2,"id":3}\n' % (txn, txn),
                    2,
                )
            }
            assert by_id[2]["ok"] is True
            assert by_id[3]["ok"] is False  # not served from the cache
            assert handle.manager.snapshot.stats()["hits"] == 0
        finally:
            client.close()
            stop()
