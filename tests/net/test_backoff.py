"""Retry backoff behaviour of :meth:`RemoteConnection.run_program`.

Aborted program attempts must back off with capped exponential delays
and deterministic seeded jitter — resubmitting in a tight loop is how
the original prototype livelocked under contention.  These tests drive
a real connection against a live server but stub the program executor
to force aborts and record the sleeps, so they are fast and exact.
"""

from __future__ import annotations

import random

import pytest

import repro.net.client as client_module
from repro.engine.database import Database
from repro.errors import TransactionAborted
from repro.lang.parser import parse_program
from repro.net.client import RemoteConnection
from repro.net.server import serve_forever

PROGRAM = parse_program(
    "BEGIN Query TIL = 100000\nt1 = Read 1\nCOMMIT\n"
)


@pytest.fixture
def server():
    db = Database()
    db.create_many((i, float(i) * 100.0) for i in range(1, 6))
    srv = serve_forever(db)
    yield srv
    srv.shutdown()
    srv.server_close()


@pytest.fixture
def always_abort(monkeypatch):
    """Force every attempt to abort; record the backoff sleeps."""
    delays: list[float] = []

    def failing_execute(program, session):
        session.abort()  # release the server-side transaction
        raise TransactionAborted("forced", transaction_id=session.txn_id)

    monkeypatch.setattr(client_module, "execute", failing_execute)
    monkeypatch.setattr(client_module.time, "sleep", delays.append)
    return delays


def _expected_delays(
    seed: int, count: int, base: float = 0.001, cap: float = 0.25
) -> list[float]:
    jitter = random.Random(seed)
    return [
        min(cap, base * 2.0 ** attempt) * (0.5 + 0.5 * jitter.random())
        for attempt in range(count)
    ]


class TestBackoff:
    def test_delays_are_capped_exponential_with_seeded_jitter(
        self, server, always_abort
    ):
        with RemoteConnection("127.0.0.1", server.port, site=1) as conn:
            with pytest.raises(TransactionAborted):
                conn.run_program(PROGRAM, max_retries=12, backoff_seed=42)
        assert always_abort == _expected_delays(42, 12)
        # The cap binds: base * 2**attempt exceeds 0.25 from attempt 8
        # on, so the raw delay (before jitter) is clamped there.
        assert all(delay <= 0.25 for delay in always_abort)
        assert always_abort[-1] > 0.25 * 0.5  # jittered off the cap

    def test_jitter_defaults_to_site_seed(self, server, always_abort):
        with RemoteConnection("127.0.0.1", server.port, site=7) as conn:
            with pytest.raises(TransactionAborted):
                conn.run_program(PROGRAM, max_retries=5)
        assert always_abort == _expected_delays(7, 5)

    def test_same_seed_same_delays(self, server, always_abort):
        with RemoteConnection("127.0.0.1", server.port, site=1) as conn:
            with pytest.raises(TransactionAborted):
                conn.run_program(PROGRAM, max_retries=4, backoff_seed=99)
        first = list(always_abort)
        always_abort.clear()
        with RemoteConnection("127.0.0.1", server.port, site=2) as conn:
            with pytest.raises(TransactionAborted):
                conn.run_program(PROGRAM, max_retries=4, backoff_seed=99)
        assert always_abort == first

    def test_retry_exhausted_raises_with_reason(self, server, always_abort):
        with RemoteConnection("127.0.0.1", server.port, site=1) as conn:
            with pytest.raises(TransactionAborted) as exc_info:
                conn.run_program(PROGRAM, max_retries=3)
        assert exc_info.value.reason == "retry-exhausted"
        # max_retries aborted attempts backed off; the final one raised.
        assert len(always_abort) == 3

    def test_successful_program_sleeps_nowhere(self, server, monkeypatch):
        delays: list[float] = []
        monkeypatch.setattr(client_module.time, "sleep", delays.append)
        with RemoteConnection("127.0.0.1", server.port, site=1) as conn:
            result, restarts = conn.run_program(PROGRAM)
        assert restarts == 0
        assert delays == []
