"""Virtual clock synchronisation."""

from __future__ import annotations

import pytest

from repro.net.clock import VirtualClock, synchronized_generator


class TestVirtualClock:
    def test_unsynchronized_passthrough(self):
        clock = VirtualClock(local_clock=lambda: 100.0)
        assert clock.now() == 100.0
        assert not clock.synchronized

    def test_correction_factor_applied(self):
        # Local clock is 120 s ahead of the server (the paper's two-minute
        # skew): local reads 1120/1122 around a server reading of 1001.
        clock = VirtualClock(local_clock=lambda: 1130.0)
        offset = clock.synchronize(1001.0, request_sent_at=1120.0, response_at=1122.0)
        assert offset == pytest.approx(-120.0)
        assert clock.now() == pytest.approx(1010.0)
        assert clock.synchronized

    def test_symmetric_latency_cancels(self):
        clock = VirtualClock(local_clock=lambda: 50.0)
        # Request took 10 units round trip; server read halfway through.
        clock.synchronize(45.0, 40.0, 50.0)
        assert clock.offset == pytest.approx(0.0)

    def test_repr(self):
        clock = VirtualClock(local_clock=lambda: 0.0)
        assert "unsynchronized" in repr(clock)
        clock.synchronize(1.0, 0.0, 0.0)
        assert "offset" in repr(clock)


class TestSynchronizedGenerator:
    def test_generator_uses_corrected_time(self):
        clock = VirtualClock(local_clock=lambda: 11.0)
        clock.synchronize(110.0, 10.0, 10.0)  # offset +100
        gen = synchronized_generator(site=4, clock=clock)
        stamp = gen.next()
        assert stamp.site == 4
        assert stamp.ticks == pytest.approx(111.0)

    def test_two_skewed_sites_order_correctly(self):
        # Site A's clock is 120 s ahead, site B's is exact.  After
        # synchronisation their corrected stamps interleave properly.
        clock_a = VirtualClock(local_clock=lambda: 1120.0)
        clock_a.synchronize(1000.0, 1120.0, 1120.0)
        clock_b = VirtualClock(local_clock=lambda: 1005.0)
        clock_b.synchronize(1005.0, 1005.0, 1005.0)
        gen_a = synchronized_generator(1, clock_a)
        gen_b = synchronized_generator(2, clock_b)
        stamp_a = gen_a.next()  # corrected to ~1000
        stamp_b = gen_b.next()  # ~1005
        assert stamp_a < stamp_b
