"""Integration tests for the networked prototype over localhost.

The ``server`` fixture is parameterized over both server
implementations — every test here is part of the wire-conformance
suite: the threaded and asyncio servers must behave identically under
the same client traffic.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.bounds import HIGH_EPSILON, TransactionBounds
from repro.engine.api import PROTOCOLS
from repro.engine.database import Database
from repro.errors import ProtocolError, TransactionAborted
from repro.lang.parser import parse_program
from repro.net.aioserver import serve_in_thread as serve_async
from repro.net.client import RemoteConnection
from repro.net.server import serve_forever


def _database() -> Database:
    db = Database()
    db.create_many((i, float(i) * 100.0) for i in range(1, 21))
    return db


@pytest.fixture(
    params=["threaded", "async", "threaded-sharded", "async-sharded"]
)
def server(request):
    db = _database()
    shards = 4 if request.param.endswith("-sharded") else 1
    if request.param.startswith("threaded"):
        srv = serve_forever(db, shards=shards)
        yield srv
        srv.shutdown()
        srv.server_close()
    else:
        handle = serve_async(db, shards=shards)
        yield handle
        handle.shutdown()


@pytest.fixture
def connection(server):
    with RemoteConnection("127.0.0.1", server.port, site=1) as conn:
        yield conn


class TestBasicOperations:
    def test_read_write_commit(self, server, connection):
        with connection.begin("update", HIGH_EPSILON) as txn:
            value = txn.read(5)
            assert value == 500.0
            txn.write(5, 555.0)
        assert server.manager.database.get(5).committed_value == 555.0

    def test_context_manager_aborts_on_error(self, server, connection):
        with pytest.raises(RuntimeError):
            with connection.begin("update", HIGH_EPSILON) as txn:
                txn.write(5, 1.0)
                raise RuntimeError("client bug")
        assert server.manager.database.get(5).committed_value == 500.0

    def test_query_sees_committed_data(self, connection):
        with connection.begin("query", HIGH_EPSILON) as query:
            assert query.read(7) == 700.0

    def test_rejection_raises_transaction_aborted(self, server, connection):
        # A second connection's query (still uncommitted) has read the
        # object with a newer timestamp, so the stale write is a case-3
        # conflict, and with TEL=0 its export cannot be admitted.  The
        # timestamps are pinned explicitly: the two connections' clocks
        # are synchronized independently, and millisecond skew between
        # them must not be allowed to invert the conflict order.
        from repro.engine.timestamps import Timestamp

        with RemoteConnection("127.0.0.1", server.port, site=2) as other:
            stale = connection.begin(
                "update", TransactionBounds(0, 0), timestamp=Timestamp(1.0, 1, 0)
            )
            query = other.begin("query", 0.0, timestamp=Timestamp(2.0, 2, 0))
            query.read(3)
            with pytest.raises(TransactionAborted):
                stale.write(3, 1.0)
            query.commit()

    def test_unknown_transaction_id(self, server, connection):
        from repro.net.protocol import recv_message, send_message

        send_message(connection._sock, {"op": "read", "txn": 999, "object": 1})
        response = recv_message(connection._reader)
        assert not response["ok"]
        assert response["error"] == "unknown-transaction"

    def test_unknown_op(self, connection):
        response = connection._request({"op": "frobnicate"})
        assert response["error"] == "unknown-op"

    def test_clock_synchronised_at_connect(self, connection):
        assert connection.clock.synchronized


class TestProgramExecution:
    def test_run_program(self, connection):
        program = parse_program(
            "BEGIN Query TIL = 100000\n"
            "t1 = Read 1\n"
            "t2 = Read 2\n"
            'output("Sum is: ", t1+t2)\n'
            "COMMIT\n"
        )
        result, restarts = connection.run_program(program)
        assert result.outputs == ["Sum is: 300"]
        assert restarts == 0

    def test_program_with_abort_terminator(self, server, connection):
        program = parse_program(
            "BEGIN Update TEL = 1000\nWrite 4 , 9\nABORT\n"
        )
        connection.run_program(program)
        assert server.manager.database.get(4).committed_value == 400.0


class TestEveryProtocolServed:
    """Every protocol in the registry is wire-servable by both servers."""

    @pytest.mark.parametrize("kind", ["threaded", "async"])
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_read_write_commit(self, kind, protocol):
        db = _database()
        if kind == "threaded":
            srv = serve_forever(db, protocol=protocol)
            shutdown = lambda: (srv.shutdown(), srv.server_close())  # noqa: E731
        else:
            srv = serve_async(db, protocol=protocol)
            shutdown = srv.shutdown
        try:
            with RemoteConnection("127.0.0.1", srv.port, site=1) as conn:
                with conn.begin("update", HIGH_EPSILON) as txn:
                    assert txn.read(5) == 500.0
                    txn.write(5, 555.0)
                with conn.begin("query", HIGH_EPSILON) as query:
                    assert query.read(5) == 555.0
            assert db.get(5).committed_value == 555.0
        finally:
            shutdown()

    @pytest.mark.parametrize("kind", ["threaded", "async"])
    def test_invalid_combination_rejected_before_serving(self, kind):
        from repro.errors import SpecificationError

        start = serve_forever if kind == "threaded" else serve_async
        with pytest.raises(SpecificationError):
            start(_database(), protocol="strict-3pl")
        with pytest.raises(SpecificationError):
            start(_database(), protocol="mvto", snapshot_cache=True)


class TestConcurrentClients:
    def test_esr_query_reads_uncommitted(self, server):
        with RemoteConnection("127.0.0.1", server.port, site=1) as writer_conn:
            writer = writer_conn.begin("update", HIGH_EPSILON)
            writer.write(9, 950.0)  # uncommitted
            with RemoteConnection("127.0.0.1", server.port, site=2) as reader_conn:
                with reader_conn.begin("query", HIGH_EPSILON) as query:
                    # ESR case 2: sees the uncommitted 950 immediately.
                    assert query.read(9) == 950.0
                    assert query.inconsistency == 50.0
            writer.commit()

    def test_sr_reader_waits_for_writer(self, server):
        with RemoteConnection("127.0.0.1", server.port, site=1) as writer_conn:
            writer = writer_conn.begin("update", TransactionBounds(0, 0))
            writer.write(9, 950.0)
            results = []

            def read_with_zero_bounds():
                with RemoteConnection(
                    "127.0.0.1", server.port, site=2
                ) as reader_conn:
                    with reader_conn.begin("query", 0.0) as query:
                        results.append(query.read(9))

            thread = threading.Thread(target=read_with_zero_bounds)
            thread.start()
            thread.join(timeout=0.5)
            assert thread.is_alive(), "reader should be blocked on the writer"
            writer.commit()
            thread.join(timeout=5.0)
            assert results == [950.0]

    def test_many_parallel_clients(self, server):
        errors = []

        def hammer(site):
            try:
                with RemoteConnection("127.0.0.1", server.port, site=site) as conn:
                    for _ in range(5):
                        program = parse_program(
                            "BEGIN Update TEL = 10000\n"
                            f"t1 = Read {site}\n"
                            f"Write {site} , t1+1\n"
                            "COMMIT\n"
                        )
                        conn.run_program(program)
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(s,)) for s in range(1, 7)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors
        # Each site incremented its own object five times.
        for site in range(1, 7):
            assert (
                server.manager.database.get(site).committed_value
                == site * 100.0 + 5
            )
