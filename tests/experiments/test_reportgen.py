"""The EXPERIMENTS.md generator, on a micro measurement plan."""

from __future__ import annotations

import pytest

from repro.experiments.config import MeasurementPlan
from repro.experiments.reportgen import (
    PAPER_EXPECTATIONS,
    generate_experiments_markdown,
)
from repro.workload.spec import WorkloadSpec

MICRO_PLAN = MeasurementPlan(
    duration_ms=1_200.0,
    warmup_ms=0.0,
    repetitions=1,
    workload=WorkloadSpec(n_objects=30, hot_set_size=6, n_partitions=3),
)


class TestExpectations:
    def test_every_figure_has_an_expectation(self):
        assert set(PAPER_EXPECTATIONS) == {
            f"fig{n}" for n in range(7, 14)
        }

    def test_expectations_quote_the_claims(self):
        assert "thrashing point" in PAPER_EXPECTATIONS["fig7"]
        assert "intermediate OIL" in PAPER_EXPECTATIONS["fig12"]


@pytest.mark.slow
class TestGeneration:
    def test_full_document_structure(self):
        progress: list[str] = []
        text = generate_experiments_markdown(MICRO_PLAN, progress=progress.append)
        # Every section present.
        assert "# EXPERIMENTS — paper vs. measured" in text
        assert "## Table 1" in text
        for figure_id in PAPER_EXPECTATIONS:
            assert f"### {figure_id}" in text
        assert "### ext_hierarchy" in text
        assert "Engine comparison" in text
        assert "MVTO" in text
        # Progress callbacks fired for the long phases.
        assert any("MPL study" in line for line in progress)
        # No placeholder markers leaked.
        assert "None" not in text.split("## Figures")[0]
