"""Figure definitions: structure and wiring (tiny measurement plans)."""

from __future__ import annotations

import math

import pytest

from repro.core.bounds import HIGH_EPSILON, ZERO_EPSILON
from repro.experiments.config import MeasurementPlan
from repro.experiments.figures import (
    ALL_FIGURES,
    fig7,
    fig8,
    fig11,
    fig12,
    fig13,
    mpl_study,
    oil_study,
    table1,
)
from repro.workload.spec import WorkloadSpec

TINY_PLAN = MeasurementPlan(
    duration_ms=1_500.0,
    warmup_ms=0.0,
    repetitions=1,
    workload=WorkloadSpec(n_objects=40, hot_set_size=8, n_partitions=4),
)


@pytest.fixture(scope="module")
def tiny_mpl_study():
    return mpl_study(
        TINY_PLAN, levels=(ZERO_EPSILON, HIGH_EPSILON), mpls=(1, 2, 3)
    )


class TestMplStudy:
    def test_structure(self, tiny_mpl_study):
        assert set(tiny_mpl_study) == {"zero-epsilon", "high-epsilon"}
        assert set(tiny_mpl_study["zero-epsilon"]) == {1, 2, 3}

    def test_fig7_view(self, tiny_mpl_study):
        figure = fig7(TINY_PLAN, study=tiny_mpl_study)
        assert figure.figure_id == "fig7"
        assert [s.label for s in figure.series] == [
            "zero-epsilon",
            "high-epsilon",
        ]
        assert figure.series[0].x == (1.0, 2.0, 3.0)
        assert all(e.mean >= 0 for s in figure.series for e in s.y)

    def test_fig8_omits_zero_epsilon(self, tiny_mpl_study):
        figure = fig8(TINY_PLAN, study=tiny_mpl_study)
        assert "zero-epsilon" not in [s.label for s in figure.series]


class TestOilStudy:
    def test_fig12_and_fig13_share_a_study(self):
        study = oil_study(
            TINY_PLAN,
            levels=(HIGH_EPSILON,),
            oil_sweep_w=(0.0, 1.0, math.inf),
            mpl=2,
        )
        twelve = fig12(TINY_PLAN, study=study)
        thirteen = fig13(TINY_PLAN, study=study)
        assert twelve.series[0].x == (0.0, 1.0, math.inf)
        assert thirteen.series[0].x == (0.0, 1.0, math.inf)
        assert twelve.series[0].label == "TIL=100000"

    def test_oil_axis_scaled_by_w(self):
        study = oil_study(
            TINY_PLAN, levels=(HIGH_EPSILON,), oil_sweep_w=(2.0,), mpl=1
        )
        measurement = study["high-epsilon"][2.0]
        expected = 2.0 * TINY_PLAN.workload.mean_write_change
        assert measurement.config.oil == expected


class TestFig11:
    def test_series_per_tel(self):
        figure = fig11(
            TINY_PLAN, til_sweep=(0.0, 10_000.0), tels=(1_000.0,), mpl=2
        )
        assert [s.label for s in figure.series] == ["TEL=1000"]
        assert figure.series[0].x == (0.0, 10_000.0)


class TestRegistry:
    def test_all_figures_registered(self):
        assert set(ALL_FIGURES) == {
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "ext_hierarchy",
            "ext_cache",
        }

    def test_table1(self):
        rows = table1()
        assert [row["level"] for row in rows] == [
            "zero-epsilon",
            "low-epsilon",
            "medium-epsilon",
            "high-epsilon",
        ]
