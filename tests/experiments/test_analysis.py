"""Shape-analysis helpers, exercised on synthetic curves."""

from __future__ import annotations

import pytest

from repro.experiments.analysis import (
    dominates,
    peak_x,
    thrashing_point,
)
from repro.experiments.figures import FigureResult, Series
from repro.experiments.runner import Estimate


def series(label: str, xs, ys) -> Series:
    return Series(
        label=label,
        x=tuple(float(x) for x in xs),
        y=tuple(Estimate.from_samples([y]) for y in ys),
    )


class TestThrashingPoint:
    def test_clean_peak(self):
        s = series("s", range(1, 8), [2, 4, 6, 8, 7, 6, 5])
        assert thrashing_point(s) == 4.0

    def test_plateau_means_no_thrashing(self):
        s = series("s", range(1, 8), [2, 4, 6, 8, 8, 8, 8])
        assert thrashing_point(s) is None

    def test_knee_within_tolerance_counts(self):
        s = series("s", range(1, 6), [2, 4, 7.8, 8, 7])
        assert thrashing_point(s, tolerance=0.05) == 3.0

    def test_monotone_curve_never_thrashes(self):
        s = series("s", range(1, 6), [1, 2, 3, 4, 5])
        assert thrashing_point(s, tolerance=0.0) is None

    def test_small_dip_within_tolerance_is_not_thrashing(self):
        s = series("s", range(1, 6), [2, 6, 10, 9.8, 9.9])
        assert thrashing_point(s, tolerance=0.05) is None


class TestPeakX:
    def test_interior_peak(self):
        s = series("s", [0, 1, 2, 4, 8], [3, 5, 9, 7, 6])
        assert peak_x(s) == 2.0

    def test_first_of_ties(self):
        s = series("s", [0, 1, 2], [5, 9, 9])
        assert peak_x(s) == 1.0


class TestDominates:
    def test_strict_domination(self):
        upper = series("u", [1, 2, 3], [10, 12, 14])
        lower = series("l", [1, 2, 3], [5, 6, 7])
        assert dominates(upper, lower)
        assert not dominates(lower, upper)

    def test_slack_allows_small_dips(self):
        upper = series("u", [1, 2, 3], [10, 9.7, 10])
        lower = series("l", [1, 2, 3], [10, 10, 10])
        assert dominates(upper, lower, slack=0.05)
        assert not dominates(upper, lower, slack=0.01)

    def test_from_x_ignores_warmup_region(self):
        upper = series("u", [1, 2, 3], [1, 12, 14])
        lower = series("l", [1, 2, 3], [5, 6, 7])
        assert not dominates(upper, lower)
        assert dominates(upper, lower, from_x=2.0)


class TestFigureResult:
    def test_series_lookup(self):
        figure = FigureResult(
            figure_id="figX",
            title="t",
            x_label="x",
            y_label="y",
            series=(series("a", [1], [1]), series("b", [1], [2])),
        )
        assert figure.series_by_label("b").means() == (2.0,)
        with pytest.raises(KeyError):
            figure.series_by_label("c")
